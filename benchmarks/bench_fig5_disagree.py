"""E3 — Figure 5 / Example A.1: DISAGREE's model-dependent divergence.

The paper's separation: DISAGREE can oscillate in R1O (and every model
realizing it) but cannot oscillate in REO, REF, R1A, RMA, or REA.  The
benchmark settles the verdict for *all 24 models* by exhaustive bounded
model checking and also times one concrete R1O oscillation replay.
"""

from repro.analysis.experiments import (
    DISAGREE_OSCILLATING_MODELS,
    DISAGREE_SAFE_MODELS,
    experiment_disagree,
)
from repro.core.instances import disagree
from repro.engine.execution import Execution
from repro.engine.explorer import can_oscillate
from repro.models.taxonomy import ALL_MODELS, model

from conftest import once


def test_fig5_verdicts_across_models(benchmark):
    result = once(benchmark, experiment_disagree)
    assert result.correct
    for name in DISAGREE_OSCILLATING_MODELS:
        assert result.results[name].oscillates
    for name in DISAGREE_SAFE_MODELS:
        assert not result.results[name].oscillates
        assert result.results[name].complete
    print()
    print(result.summary)


def test_fig5_all_24_models(benchmark):
    """Beyond the paper: settle every model, including the blank cells
    (UEO, UEF, U1A, UMA, UEA — none can oscillate on DISAGREE)."""

    def sweep():
        return {
            m.name: can_oscillate(disagree(), m, queue_bound=3)
            for m in ALL_MODELS
        }

    results = once(benchmark, sweep)
    safe = {name for name, r in results.items() if not r.oscillates}
    assert safe == {
        "REO", "REF", "R1A", "RMA", "REA",
        "UEO", "UEF", "U1A", "UMA", "UEA",
    }
    # Safety verdicts are complete searches; oscillation verdicts carry
    # concrete witnesses (for U models, via the drop-free subgraph).
    assert all(r.conclusive for r in results.values())
    assert all(results[name].complete for name in safe)


def test_fig5_oscillation_replay(benchmark):
    """Time the concrete Ex. A.1 oscillation (one full period)."""
    instance = disagree()
    explorer_result = can_oscillate(instance, model("R1O"), queue_bound=3)
    witness = explorer_result.witness
    assert witness is not None

    def replay():
        execution = Execution(instance)
        for entry in witness.prefix:
            execution.step(entry)
        for entry in witness.cycle:
            execution.step(entry)
        return execution.trace

    trace = benchmark(replay)
    assert len(set(trace.pi_sequence)) >= 2
