"""E13 — message overhead across deployment styles (Sec. 4 trade-offs).

The paper notes that how updates are batched and waited-on changes how
many "spurious or transient announcements" a BGP deployment emits.
This benchmark runs the same convergent instance to a fixed point under
polling, message-passing, and queueing models with a shared scheduler
seed and compares message accounting.
"""

from repro.analysis.experiments import experiment_message_overhead
from repro.core.gao_rexford import gao_rexford_instance, random_as_graph

from conftest import once


def test_overhead_on_fig7(benchmark):
    result = once(benchmark, experiment_message_overhead, seed=0)
    print()
    print(result.summary)
    for name, (converged, _, _) in result.rows.items():
        assert converged, name
    # Polling converges in no more steps than event-driven processing
    # here (it acts on current state rather than stale backlog).
    assert result.rows["REA"][1] <= result.rows["R1O"][1]


def test_overhead_on_gao_rexford(benchmark):
    instance = gao_rexford_instance(random_as_graph(5, n_nodes=6))
    result = once(
        benchmark,
        experiment_message_overhead,
        instance=instance,
        model_names=("R1O", "REA", "RMS", "UMS"),
        seed=1,
    )
    print()
    print(result.summary)
    for name, (converged, _, metrics) in result.rows.items():
        assert converged, name
        # Announcement volume stays linear-ish in the instance size for
        # a convergent run: no model should emit unbounded chatter.
        assert metrics.announcements < 400, name


def test_unreliable_overhead_includes_drops(benchmark):
    result = once(
        benchmark,
        experiment_message_overhead,
        model_names=("UMS",),
        seed=3,
        drop_prob=0.5,
    )
    converged, _, metrics = result.rows["UMS"]
    assert converged
    assert metrics.delivery_ratio <= 1.0
