"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures (see
the experiment index in DESIGN.md) and *asserts* the reproduced shape
before reporting timing.  Heavyweight exhaustive searches run a single
round via ``benchmark.pedantic``.
"""

from __future__ import annotations


def once(benchmark, function, *args, **kwargs):
    """Run a benchmark exactly once (for minutes-long verifications)."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
