"""Ablations: queue-bound sensitivity and instance scaling (DESIGN.md §2).

Every impossibility claim in this repository is proved relative to a
channel queue bound; these benchmarks demonstrate the verdicts are
bound-insensitive on the paper's gadgets and characterize how the
explorer's cost scales with both the bound and the instance size.
"""

from repro.analysis.ablation import (
    format_rows,
    grid_scaling_sweep,
    queue_bound_sweep,
    verdicts_are_stable,
)
from repro.core.instances import disagree

from conftest import once


def test_queue_bound_ablation_r1o(benchmark):
    """The Ex. A.1 oscillation needs two queued messages on (x, y), so
    bound 1 is too tight — and from bound 2 on the verdict is stable.
    This is exactly why impossibility claims report ``complete`` and why
    positive claims, once found, hold for every larger bound."""
    rows = once(benchmark, queue_bound_sweep, disagree(), "R1O", (1, 2, 3, 4, 5))
    print()
    print(format_rows(rows, "DISAGREE / R1O"))
    assert not rows[0].oscillates and not rows[0].complete  # bound too tight
    assert all(row.oscillates for row in rows[1:])
    assert verdicts_are_stable(rows[1:])
    states = [row.states for row in rows[1:]]
    assert states == sorted(states)  # monotone growth with the bound


def test_queue_bound_ablation_rma(benchmark):
    """Safety in RMA holds at every bound with complete searches —
    the cap is not load-bearing for the impossibility claim."""
    rows = once(benchmark, queue_bound_sweep, disagree(), "RMA", (1, 2, 3, 4, 5))
    print()
    print(format_rows(rows, "DISAGREE / RMA"))
    assert verdicts_are_stable(rows)
    assert all(not row.oscillates for row in rows)
    assert all(row.complete for row in rows)


def test_grid_scaling_r1a(benchmark):
    """Safe-model exploration cost vs instance size (polling collapse
    keeps the per-copy factor modest)."""
    rows = once(benchmark, grid_scaling_sweep, "R1A", (1, 2, 3))
    print()
    print(format_rows(rows, "DISAGREE-GRID / R1A"))
    assert all(not row.oscillates for row in rows)
    assert all(row.complete for row in rows)
    assert rows[0].states < rows[1].states < rows[2].states


def test_grid_scaling_r1o_finds_oscillation(benchmark):
    rows = once(benchmark, grid_scaling_sweep, "R1O", (1, 2))
    print()
    print(format_rows(rows, "DISAGREE-GRID / R1O"))
    assert all(row.oscillates for row in rows)
