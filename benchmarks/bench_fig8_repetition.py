"""E6 — Figure 8 / Example A.4: REA ⊀ R1O under realization-with-repetition.

Checks both directions of the example: the 6-step REA execution cannot
be realized with repetition in R1O (exhaustive proof), yet *is*
realizable as a subsequence — including via the paper's own explicit
witness schedule, which interleaves the extra ``suad`` state.
"""

from repro.analysis.experiments import (
    FIG8_REA_EXPECTED,
    FIG8_REA_SCHEDULE,
    experiment_fig8,
)
from repro.analysis.traces import matches_paper_trace
from repro.core.instances import fig8_gadget
from repro.engine.execution import Execution

from conftest import once


def test_fig8_scripted_rea_trace(benchmark):
    def run():
        execution = Execution(fig8_gadget())
        execution.run_nodes(FIG8_REA_SCHEDULE, kind="poll")
        return execution.trace

    trace = benchmark(run)
    assert matches_paper_trace(trace, FIG8_REA_EXPECTED)
    # Before the last step the channel (u, s) holds [uad, ubd] — the
    # stale uad is what blocks realization-with-repetition in R1O.
    states = trace.states
    assert states[-2].channel_contents(("u", "s")) == (
        ("u", "a", "d"),
        ("u", "b", "d"),
    )


def test_fig8_repetition_impossible_subsequence_possible(benchmark):
    result = once(benchmark, experiment_fig8)
    assert result.trace_matches
    assert result.impossible_proved  # no R1O realization with repetition
    assert result.possible_schedule is not None  # subsequence exists
    print()
    print(result.summary)
