"""E11 — dispute wheels versus convergence guarantees (Sec. 4, Ex. A.1).

"The absence of a dispute wheel is the broadest-known sufficient
condition for convergence … the existence of a dispute wheel does not
imply divergence."  The benchmark reproduces the full table: wheel
presence, stable-solution count, and model-checked oscillation verdict
for each gadget, plus detection throughput on random instances.
"""

from repro.analysis.experiments import experiment_dispute_wheels
from repro.core.dispute import find_dispute_wheel, has_dispute_wheel
from repro.core.generators import instance_family
from repro.core.instances import bad_gadget, disagree

from conftest import once


def test_dispute_wheel_table(benchmark):
    result = once(benchmark, experiment_dispute_wheels)
    rows = {name: (wheel, sols, osc) for name, wheel, sols, osc in result.rows}
    # DISAGREE: wheel, 2 solutions, oscillation possible (in RMS).
    assert rows["DISAGREE"] == (True, 2, True)
    # BAD GADGET: wheel, no solution, necessarily divergent.
    assert rows["BAD-GADGET"] == (True, 0, True)
    # GOOD GADGET / shortest paths: wheel-free, unique solution, safe.
    assert rows["GOOD-GADGET"] == (False, 1, False)
    assert rows["SHORTEST-RING-3"] == (False, 1, False)
    print()
    print(result.summary)


def test_wheel_detection_throughput(benchmark):
    instances = list(instance_family(20, base_seed=21, n_nodes=5))

    def sweep():
        return [has_dispute_wheel(instance) for instance in instances]

    verdicts = benchmark(sweep)
    assert len(verdicts) == 20


def test_wheel_reconstruction(benchmark):
    wheel = benchmark(find_dispute_wheel, bad_gadget())
    assert wheel is not None
    assert set(wheel.pivots) == {"1", "2", "3"}
