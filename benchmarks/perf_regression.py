"""Benchmark regression harness — writes ``BENCH_engine.json`` and
``BENCH_matrix.json``.

Runs the engine-throughput workloads that gate performance work (the
fig6/REA explorer search, the Def. 2.3 step loop, and the 24-model
matrix certification) under both execution cores and records absolute
numbers plus the compiled-over-reference speedups::

    PYTHONPATH=src python benchmarks/perf_regression.py \
        [--out BENCH_engine.json] [--matrix-out BENCH_matrix.json]

``BENCH_engine.json`` pins the compiled-over-reference comparison on
the *unreduced* search (the PR-1 workload, unchanged for continuity);
``speedup.explorer_states`` must stay ≥ 3×.

``BENCH_matrix.json`` pins the partial-order reducer, the verdict
cache, and the packed engine on the matrix workload — the 24-model
certification of the Fig. 7 gadget, whose interleaving explosion is
what the reducer exists for (DISAGREE is recorded alongside but is too
small to gate on).  Five numbers are gated: the cold reduction speedup
(reduced vs unreduced search, ≥ 3×), the warm cache speedup (second
run against a populated cache, ≥ 20×), the packed-engine cold speedup
(``engine="packed"`` vs the compiled cold reduced certification,
≥ 10×, with every state/pruned/complete count bit-identical), the
packed stdlib speedup (same workload with ``REPRO_NO_NUMPY=1``, ≥ 3×),
and the telemetry overhead (the ``repro.obs``
instrumentation enabled vs disabled on the cold reduced certification,
≤ 5% — its span-level breakdown is recorded under ``"telemetry"``;
``--telemetry-only``/``--telemetry-out`` run just this gate for the CI
observability job), and the disarmed fault-injection layer
(:mod:`repro.faults` sites stubbed out vs present-but-disarmed on the
same certification, ≤ 2% under ``"faults"``; ``--faults-only`` /
``--skip-faults`` for the CI chaos job).  Verdict equality between
every configuration is asserted before any number is reported.

The JSONs are committed alongside performance PRs so a regression
shows up as a diff.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import statistics
import subprocess
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.analysis.experiments import matrix_certification
from repro.config import RunConfig
from repro.core.instances import fig6_gadget, fig7_gadget
from repro.engine.compiled import replay_schedule
from repro.engine.execution import Execution
from repro.engine.explorer import Explorer
from repro.engine.schedulers import RandomScheduler
from repro.models.taxonomy import model

MIN_EXPLORER_SPEEDUP = 3.0
MIN_REDUCTION_SPEEDUP = 3.0
MIN_WARM_CACHE_SPEEDUP = 20.0
MIN_PACKED_SPEEDUP = 10.0
MIN_PACKED_STDLIB_SPEEDUP = 3.0
MAX_TELEMETRY_OVERHEAD_PCT = 5.0
MAX_FAULTS_OVERHEAD_PCT = 2.0

#: Modules that bind ``fault_point`` at import time; the faults gate
#: swaps their reference for a bare passthrough to measure what the
#: disarmed layer costs beyond an unavoidable function call.
_FAULT_POINT_CONSUMERS = (
    "repro.fsutil",
    "repro.engine.cache",
    "repro.engine.parallel",
    "repro.campaign.runner",
    "repro.obs.telemetry",
)


def _best_of(runs: int, fn):
    """Best wall time over ``runs`` calls; returns (seconds, result)."""
    best = None
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def bench_explorer(engine: str, runs: int = 3) -> dict:
    def explore():
        # reduction="none" keeps this the exact PR-1 workload: the
        # compiled-vs-reference ratio is measured on the full search
        # (the reducer has its own gates in BENCH_matrix.json).
        return Explorer(
            fig6_gadget(),
            model("REA"),
            queue_bound=2,
            max_states=100_000,
            engine=engine,
            reduction="none",
        ).explore()

    seconds, result = _best_of(runs, explore)
    assert not result.oscillates and result.complete
    return {
        "engine": engine,
        "states": result.states_explored,
        "seconds": round(seconds, 4),
        "states_per_sec": round(result.states_explored / seconds, 1),
    }


def bench_steps(runs: int = 3) -> dict:
    instance = fig6_gadget()
    scheduler = RandomScheduler(instance, model("UMS"), seed=1, drop_prob=0.3)
    execution = Execution(instance)
    schedule = []
    for _ in range(1000):
        entry = scheduler.next_entry(execution.state)
        schedule.append(entry)
        execution.step(entry)

    ref_seconds, _ = _best_of(runs, lambda: Execution(instance).run(schedule))
    cmp_seconds, states = _best_of(
        runs, lambda: replay_schedule(instance, schedule)
    )
    assert states == execution.trace.states
    return {
        "steps": len(schedule),
        "reference_steps_per_sec": round(len(schedule) / ref_seconds, 1),
        "compiled_steps_per_sec": round(len(schedule) / cmp_seconds, 1),
    }


def bench_matrix(runs: int = 3) -> dict:
    seconds, cert = _best_of(
        runs,
        lambda: matrix_certification(config=RunConfig(workers=1, reduction="none")),
    )
    oscillating = sum(1 for result in cert.values() if result.oscillates)
    assert oscillating == 14 and len(cert) == 24
    return {
        "models": len(cert),
        "oscillating": oscillating,
        "seconds": round(seconds, 4),
    }


def _timed_certification(
    instance, reduction: str, cache_dir=None, engine: str = "compiled"
) -> dict:
    start = time.perf_counter()
    cert = matrix_certification(
        instance=instance,
        config=RunConfig(
            workers=1, queue_bound=2, reduction=reduction,
            cache_dir=cache_dir, engine=engine,
        ),
    )
    seconds = time.perf_counter() - start
    return {
        "seconds": round(seconds, 4),
        "states": sum(r.states_explored for r in cert.values()),
        "pruned": sum(r.states_pruned for r in cert.values()),
        "complete": sum(1 for r in cert.values() if r.complete),
        "verdicts": {name: cert[name].oscillates for name in sorted(cert)},
        "_raw_seconds": seconds,
    }


def _strip(entry: dict) -> dict:
    return {k: v for k, v in entry.items() if not k.startswith("_")}


def bench_matrix_workload() -> dict:
    """The reducer/cache gates: 24-model certification of Fig. 7.

    Single-shot timings (the unreduced baseline alone runs for minutes;
    best-of-N would triple that for no extra signal on 10×-class gaps).
    """
    fig7 = fig7_gadget()
    with tempfile.TemporaryDirectory() as cache_dir:
        unreduced = _timed_certification(fig7, "none")
        cold = _timed_certification(fig7, "ample", cache_dir=cache_dir)
        warm = _timed_certification(fig7, "ample", cache_dir=cache_dir)

    # The reduction and the cache must change *performance only*.
    assert cold["verdicts"] == unreduced["verdicts"]
    assert warm["verdicts"] == cold["verdicts"]
    assert warm["states"] == cold["states"]
    assert cold["complete"] >= unreduced["complete"]  # monotone coverage

    # The packed engine on the same certification: cold against a fresh
    # cache, warm against the store the cold run populated (cache keys
    # carry no engine tag, so packed and compiled share entries), and
    # cold again with the numpy/scipy path disabled.  Fig. 7's
    # automorphism group is trivial, so every count must be
    # bit-identical to the compiled cold run, not merely the verdicts.
    import os

    with tempfile.TemporaryDirectory() as packed_cache:
        packed_cold = _timed_certification(
            fig7, "ample", cache_dir=packed_cache, engine="packed"
        )
        packed_warm = _timed_certification(
            fig7, "ample", cache_dir=packed_cache, engine="packed"
        )
    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        packed_stdlib = _timed_certification(fig7, "ample", engine="packed")
    finally:
        del os.environ["REPRO_NO_NUMPY"]
    for packed_run in (packed_cold, packed_warm, packed_stdlib):
        assert packed_run["verdicts"] == cold["verdicts"]
        assert packed_run["states"] == cold["states"]
        assert packed_run["pruned"] == cold["pruned"]
        assert packed_run["complete"] == cold["complete"]

    # DISAGREE is recorded for context (too small for the reducer to
    # win — table builds dominate its sub-millisecond searches).
    disagree_base = _timed_certification(None, "none")
    disagree_reduced = _timed_certification(None, "ample")
    assert disagree_reduced["verdicts"] == disagree_base["verdicts"]
    assert sum(disagree_base["verdicts"].values()) == 14

    reduction_speedup = round(
        unreduced["_raw_seconds"] / cold["_raw_seconds"], 2
    )
    warm_cache_speedup = round(cold["_raw_seconds"] / warm["_raw_seconds"], 2)
    packed_speedup = round(
        cold["_raw_seconds"] / packed_cold["_raw_seconds"], 2
    )
    packed_stdlib_speedup = round(
        cold["_raw_seconds"] / packed_stdlib["_raw_seconds"], 2
    )
    packed_warm_speedup = round(
        packed_cold["_raw_seconds"] / packed_warm["_raw_seconds"], 2
    )
    return {
        "workload": "fig7_gadget all 24 models queue_bound=2 "
        "(reduced vs unreduced, cold vs warm cache, packed vs "
        "compiled); DISAGREE recorded for context",
        "python": platform.python_version(),
        "fig7": {
            "unreduced": _strip(unreduced),
            "cold_reduced": _strip(cold),
            "warm_cache": _strip(warm),
            "packed_cold": _strip(packed_cold),
            "packed_warm": _strip(packed_warm),
            "packed_cold_stdlib": _strip(packed_stdlib),
        },
        "disagree": {
            "unreduced": _strip(disagree_base),
            "reduced": _strip(disagree_reduced),
        },
        "speedup": {
            "reduction_cold": reduction_speedup,
            "cache_warm": warm_cache_speedup,
            "packed_cold": packed_speedup,
            "packed_cold_stdlib": packed_stdlib_speedup,
            "packed_warm": packed_warm_speedup,
        },
        "passes_min_reduction_speedup": (
            reduction_speedup >= MIN_REDUCTION_SPEEDUP
        ),
        "passes_min_warm_cache_speedup": (
            warm_cache_speedup >= MIN_WARM_CACHE_SPEEDUP
        ),
        "passes_min_packed_speedup": packed_speedup >= MIN_PACKED_SPEEDUP,
        "passes_min_packed_stdlib_speedup": (
            packed_stdlib_speedup >= MIN_PACKED_STDLIB_SPEEDUP
        ),
    }


def bench_telemetry_overhead(
    telemetry_out: "Path | None" = None, runs: int = 2
) -> dict:
    """The observability gate: instrumentation must stay below
    :data:`MAX_TELEMETRY_OVERHEAD_PCT` on the cold reduced Fig. 7
    certification (the longest single-process search in the suite, so
    per-state costs have nowhere to hide).  Disabled and enabled runs
    are *interleaved* (off/on pairs, best of each) so slow machine
    drift cancels instead of biasing whichever side runs last.
    Verdict equality between the disabled and enabled runs is asserted
    — telemetry observes only — and the enabled runs' span breakdown
    is recorded so the committed JSON shows where certification time
    goes.

    The instrumented side runs with *tracing armed*: the certification
    executes inside a root trace span, so every per-exploration
    ``worker.run`` span record and histogram observation is part of
    the measured cost.  The gate therefore bounds the full
    observability stack — registries, JSONL events, trace spans, and
    histogram feeds together.
    """
    from repro.obs import tracing

    fig7 = fig7_gadget()

    def certify():
        return matrix_certification(
            instance=fig7,
            config=RunConfig(workers=1, queue_bound=2, reduction="ample"),
        )

    def certify_instrumented():
        telemetry = obs.Telemetry(
            telemetry_out, run={"command": "bench-telemetry"}
        )
        previous = obs.install(telemetry)
        try:
            with tracing.trace_span("bench.certify", timing=True):
                return certify(), telemetry.summary
        finally:
            obs.install(previous)
            telemetry.close()

    off_seconds = on_seconds = None
    summary: dict = {}
    for _ in range(runs):
        start = time.perf_counter()
        baseline = certify()
        elapsed = time.perf_counter() - start
        if off_seconds is None or elapsed < off_seconds:
            off_seconds = elapsed

        start = time.perf_counter()
        instrumented, summarize = certify_instrumented()
        elapsed = time.perf_counter() - start
        if on_seconds is None or elapsed < on_seconds:
            on_seconds = elapsed
            summary = summarize()

        assert {name: baseline[name].oscillates for name in baseline} == {
            name: instrumented[name].oscillates for name in instrumented
        }

    overhead_pct = round((on_seconds / off_seconds - 1.0) * 100.0, 2)
    return {
        "workload": "fig7_gadget all 24 models queue_bound=2, cold "
        "reduced, telemetry disabled vs enabled (best of "
        f"{runs})",
        "seconds_disabled": round(off_seconds, 4),
        "seconds_enabled": round(on_seconds, 4),
        "overhead_pct": overhead_pct,
        "spans": summary.get("spans", {}),
        "counters": summary.get("counters", {}),
        "passes_max_telemetry_overhead": (
            overhead_pct <= MAX_TELEMETRY_OVERHEAD_PCT
        ),
    }


def bench_faults_overhead(runs: int = 9, calibration_calls: int = 2_000_000) -> dict:
    """The robustness gate: disarmed fault points must stay below
    :data:`MAX_FAULTS_OVERHEAD_PCT` of the workload they sit in.

    The true disarmed cost — one module-global ``None`` check per
    crossing, a few dozen crossings per certification — is orders of
    magnitude below what interleaved differential timing can resolve on
    a shared machine (run-to-run scheduler noise alone is several
    percent).  So the gate measures the two factors directly and takes
    their product, each side of which is individually stable:

    * **crossings** — every consumer's ``fault_point`` binding is
      patched with a counting wrapper for one cold cache-enabled
      DISAGREE certification (the workload where the sites' relative
      share is largest: ``cache.read``/``cache.write`` per verdict,
      fan-out entry per task, the checkpointless minimum of writes);
    * **cost per disarmed crossing** — the real ``fault_point`` in a
      tight loop of ``calibration_calls`` (amortizing the loop itself
      would *under*-count, so the loop overhead is deliberately left
      in: the reported per-call cost is an upper bound);
    * **workload seconds** — the median certification wall time over
      ``runs`` repetitions with the layer in place, tempdir churn kept
      outside the timed region.

    ``overhead_pct = crossings × per-call / median seconds`` is then an
    upper bound on the disarmed layer's share of the gated workload.
    """
    import importlib

    from repro import faults
    from repro.faults import fault_point as real_fault_point

    assert faults.active_plan() is None, "faults gate requires a disarmed run"

    def timed_certify():
        # The tempdir setup/teardown stays *outside* the timed region:
        # filesystem variance there would swamp the signal.
        with tempfile.TemporaryDirectory() as cache_dir:
            config = RunConfig(
                workers=1, queue_bound=2, reduction="ample",
                cache_dir=cache_dir,
            )
            start = time.perf_counter()
            cert = matrix_certification(config=config)
            return time.perf_counter() - start, cert

    modules = [importlib.import_module(name) for name in _FAULT_POINT_CONSUMERS]

    # 1. Crossings per certification.
    crossings = 0

    def counting(site, payload=None):
        nonlocal crossings
        crossings += 1
        return real_fault_point(site, payload)

    timed_certify()  # warm imports, tables, and the allocator once
    originals = [module.fault_point for module in modules]
    for module in modules:
        module.fault_point = counting
    try:
        _, counted_cert = timed_certify()
    finally:
        for module, original in zip(modules, originals):
            module.fault_point = original
    assert sum(r.oscillates for r in counted_cert.values()) == 14

    # 2. Cost per disarmed crossing (upper bound: loop overhead included).
    payload = "x" * 4096  # a representative checkpoint-sized payload
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        for _ in range(calibration_calls):
            real_fault_point("cache.read", payload)
        per_call = (time.perf_counter() - start) / calibration_calls

        # 3. Workload seconds with the layer in place.
        samples = []
        for _ in range(runs):
            elapsed, cert = timed_certify()
            samples.append(elapsed)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    assert {name: counted_cert[name].oscillates for name in counted_cert} == {
        name: cert[name].oscillates for name in cert
    }

    seconds = statistics.median(samples)
    overhead_pct = round(crossings * per_call / seconds * 100.0, 4)
    return {
        "workload": "DISAGREE all 24 models queue_bound=2, cold reduced "
        "+ cache; disarmed overhead = crossings x per-call cost "
        f"/ median-of-{runs} wall time",
        "crossings": crossings,
        "ns_per_disarmed_call": round(per_call * 1e9, 2),
        "seconds": round(seconds, 4),
        "overhead_pct": overhead_pct,
        "passes_max_faults_overhead": overhead_pct <= MAX_FAULTS_OVERHEAD_PCT,
    }


def run(out_path: Path) -> dict:
    compiled = bench_explorer("compiled")
    reference = bench_explorer("reference")
    steps = bench_steps()
    matrix = bench_matrix()
    explorer_speedup = round(
        compiled["states_per_sec"] / reference["states_per_sec"], 2
    )
    step_speedup = round(
        steps["compiled_steps_per_sec"] / steps["reference_steps_per_sec"], 2
    )
    report = {
        "workload": "fig6_gadget REA queue_bound=2 (explorer), "
        "fig6_gadget UMS 1000-step schedule (steps), "
        "DISAGREE all 24 models (matrix)",
        "python": platform.python_version(),
        "explorer": {"compiled": compiled, "reference": reference},
        "steps": steps,
        "matrix_certification": matrix,
        "speedup": {
            "explorer_states": explorer_speedup,
            "replay_steps": step_speedup,
        },
        "passes_min_speedup": explorer_speedup >= MIN_EXPLORER_SPEEDUP,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _git_rev(repo: Path) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo, capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _append_history(out_path: Path, report: dict) -> None:
    """Carry forward and extend the perf trajectory across PRs.

    Earlier revisions overwrote ``BENCH_matrix.json`` wholesale, so the
    committed file only ever showed the latest numbers and the history
    lived (unreadably) in git.  Each run now appends one timestamped
    entry — git revision, python, and the headline workload seconds —
    to a ``history`` list preserved from the previous file.
    """
    history = []
    if out_path.exists():
        try:
            history = json.loads(out_path.read_text()).get("history", [])
        except (json.JSONDecodeError, OSError):
            history = []
    seconds = {
        name: entry["seconds"]
        for name, entry in report.get("fig7", {}).items()
    }
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "git_rev": _git_rev(out_path.resolve().parent),
            "python": platform.python_version(),
            "seconds": seconds,
            "speedup": dict(report.get("speedup", {})),
        }
    )
    report["history"] = history


def run_matrix(
    out_path: Path,
    telemetry_out: "Path | None" = None,
    skip_telemetry: bool = False,
    skip_faults: bool = False,
) -> dict:
    report = bench_matrix_workload()
    if not skip_telemetry:
        report["telemetry"] = bench_telemetry_overhead(telemetry_out)
    if not skip_faults:
        report["faults"] = bench_faults_overhead()
    _append_history(out_path, report)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _check_telemetry(report: dict) -> bool:
    """Print the overhead verdict; ``True`` when the gate fails."""
    if not report["passes_max_telemetry_overhead"]:
        print(
            f"FAIL: telemetry overhead {report['overhead_pct']}% "
            f"> allowed {MAX_TELEMETRY_OVERHEAD_PCT}%"
        )
        return True
    return False


def _check_faults(report: dict) -> bool:
    """Print the disarmed-faults verdict; ``True`` when the gate fails."""
    if not report["passes_max_faults_overhead"]:
        print(
            f"FAIL: disarmed fault-point overhead {report['overhead_pct']}% "
            f"> allowed {MAX_FAULTS_OVERHEAD_PCT}%"
        )
        return True
    return False


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(repo / "BENCH_engine.json"))
    parser.add_argument(
        "--matrix-out", default=str(repo / "BENCH_matrix.json")
    )
    parser.add_argument(
        "--skip-matrix",
        action="store_true",
        help="skip the minutes-long reducer/cache workload",
    )
    parser.add_argument(
        "--telemetry-only",
        action="store_true",
        help="run only the telemetry overhead gate (CI observability job)",
    )
    parser.add_argument(
        "--skip-telemetry",
        action="store_true",
        help="omit the telemetry overhead gate (it has its own CI job)",
    )
    parser.add_argument(
        "--faults-only",
        action="store_true",
        help="run only the disarmed fault-point overhead gate "
        "(CI chaos-smoke job)",
    )
    parser.add_argument(
        "--skip-faults",
        action="store_true",
        help="omit the disarmed fault-point overhead gate "
        "(it has its own CI job)",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="write the instrumented runs' JSONL event stream to PATH",
    )
    args = parser.parse_args()
    telemetry_out = Path(args.telemetry_out) if args.telemetry_out else None
    if args.telemetry_only:
        report = bench_telemetry_overhead(telemetry_out)
        print(json.dumps(report, indent=2))
        return 1 if _check_telemetry(report) else 0
    if args.faults_only:
        report = bench_faults_overhead()
        print(json.dumps(report, indent=2))
        return 1 if _check_faults(report) else 0
    report = run(Path(args.out))
    print(json.dumps(report, indent=2))
    failed = False
    if not report["passes_min_speedup"]:
        print(
            f"FAIL: explorer speedup {report['speedup']['explorer_states']}x "
            f"< required {MIN_EXPLORER_SPEEDUP}x"
        )
        failed = True
    if not args.skip_matrix:
        matrix_report = run_matrix(
            Path(args.matrix_out),
            telemetry_out,
            args.skip_telemetry,
            args.skip_faults,
        )
        print(json.dumps(matrix_report, indent=2))
        if not matrix_report["passes_min_reduction_speedup"]:
            print(
                "FAIL: cold reduction speedup "
                f"{matrix_report['speedup']['reduction_cold']}x "
                f"< required {MIN_REDUCTION_SPEEDUP}x"
            )
            failed = True
        if not matrix_report["passes_min_warm_cache_speedup"]:
            print(
                "FAIL: warm cache speedup "
                f"{matrix_report['speedup']['cache_warm']}x "
                f"< required {MIN_WARM_CACHE_SPEEDUP}x"
            )
            failed = True
        if not matrix_report["passes_min_packed_speedup"]:
            print(
                "FAIL: packed cold speedup "
                f"{matrix_report['speedup']['packed_cold']}x "
                f"< required {MIN_PACKED_SPEEDUP}x"
            )
            failed = True
        if not matrix_report["passes_min_packed_stdlib_speedup"]:
            print(
                "FAIL: packed stdlib (numpy off) speedup "
                f"{matrix_report['speedup']['packed_cold_stdlib']}x "
                f"< required {MIN_PACKED_STDLIB_SPEEDUP}x"
            )
            failed = True
        if "telemetry" in matrix_report and _check_telemetry(
            matrix_report["telemetry"]
        ):
            failed = True
        if "faults" in matrix_report and _check_faults(
            matrix_report["faults"]
        ):
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
