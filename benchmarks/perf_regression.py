"""Benchmark regression harness — writes ``BENCH_engine.json``.

Runs the engine-throughput workloads that gate performance work (the
fig6/REA explorer search, the Def. 2.3 step loop, and the 24-model
matrix certification) under both execution cores and records absolute
numbers plus the compiled-over-reference speedups::

    PYTHONPATH=src python benchmarks/perf_regression.py [--out BENCH_engine.json]

The JSON is committed alongside performance PRs so a regression shows
up as a diff.  ``speedup.explorer_states`` is the headline number; the
compiled engine must stay ≥ 3× the reference on the explorer workload.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.analysis.experiments import matrix_certification
from repro.core.instances import fig6_gadget
from repro.engine.compiled import replay_schedule
from repro.engine.execution import Execution
from repro.engine.explorer import Explorer
from repro.engine.schedulers import RandomScheduler
from repro.models.taxonomy import model

MIN_EXPLORER_SPEEDUP = 3.0


def _best_of(runs: int, fn):
    """Best wall time over ``runs`` calls; returns (seconds, result)."""
    best = None
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def bench_explorer(engine: str, runs: int = 3) -> dict:
    def explore():
        return Explorer(
            fig6_gadget(),
            model("REA"),
            queue_bound=2,
            max_states=100_000,
            engine=engine,
        ).explore()

    seconds, result = _best_of(runs, explore)
    assert not result.oscillates and result.complete
    return {
        "engine": engine,
        "states": result.states_explored,
        "seconds": round(seconds, 4),
        "states_per_sec": round(result.states_explored / seconds, 1),
    }


def bench_steps(runs: int = 3) -> dict:
    instance = fig6_gadget()
    scheduler = RandomScheduler(instance, model("UMS"), seed=1, drop_prob=0.3)
    execution = Execution(instance)
    schedule = []
    for _ in range(1000):
        entry = scheduler.next_entry(execution.state)
        schedule.append(entry)
        execution.step(entry)

    ref_seconds, _ = _best_of(runs, lambda: Execution(instance).run(schedule))
    cmp_seconds, states = _best_of(
        runs, lambda: replay_schedule(instance, schedule)
    )
    assert states == execution.trace.states
    return {
        "steps": len(schedule),
        "reference_steps_per_sec": round(len(schedule) / ref_seconds, 1),
        "compiled_steps_per_sec": round(len(schedule) / cmp_seconds, 1),
    }


def bench_matrix(runs: int = 3) -> dict:
    seconds, cert = _best_of(runs, lambda: matrix_certification(workers=1))
    oscillating = sum(1 for result in cert.values() if result.oscillates)
    assert oscillating == 14 and len(cert) == 24
    return {
        "models": len(cert),
        "oscillating": oscillating,
        "seconds": round(seconds, 4),
    }


def run(out_path: Path) -> dict:
    compiled = bench_explorer("compiled")
    reference = bench_explorer("reference")
    steps = bench_steps()
    matrix = bench_matrix()
    explorer_speedup = round(
        compiled["states_per_sec"] / reference["states_per_sec"], 2
    )
    step_speedup = round(
        steps["compiled_steps_per_sec"] / steps["reference_steps_per_sec"], 2
    )
    report = {
        "workload": "fig6_gadget REA queue_bound=2 (explorer), "
        "fig6_gadget UMS 1000-step schedule (steps), "
        "DISAGREE all 24 models (matrix)",
        "python": platform.python_version(),
        "explorer": {"compiled": compiled, "reference": reference},
        "steps": steps,
        "matrix_certification": matrix,
        "speedup": {
            "explorer_states": explorer_speedup,
            "replay_steps": step_speedup,
        },
        "passes_min_speedup": explorer_speedup >= MIN_EXPLORER_SPEEDUP,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
    )
    args = parser.parse_args()
    report = run(Path(args.out))
    print(json.dumps(report, indent=2))
    if not report["passes_min_speedup"]:
        print(
            f"FAIL: explorer speedup {report['speedup']['explorer_states']}x "
            f"< required {MIN_EXPLORER_SPEEDUP}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
