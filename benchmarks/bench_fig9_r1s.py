"""E7 — Figure 9 / Example A.5: REA (and REO) ⊀ R1S under exact realization.

The 8-step REA execution (ending with s switching to sxd) is verified
against the paper's table; exhaustive search then proves no fair R1S
sequence induces it exactly, while realization *with repetition*
remains possible (Figure 3's REA row, R1S column reads "3").
"""

from repro.analysis.experiments import (
    FIG9_REA_EXPECTED,
    FIG9_REA_SCHEDULE,
    experiment_fig9,
)
from repro.analysis.traces import matches_paper_trace
from repro.core.instances import fig9_gadget
from repro.engine.execution import Execution
from repro.models.taxonomy import model
from repro.realization.search import RealizationSearch

from conftest import once


def test_fig9_scripted_rea_trace(benchmark):
    def run():
        execution = Execution(fig9_gadget())
        execution.run_nodes(FIG9_REA_SCHEDULE, kind="poll")
        return execution.trace

    trace = benchmark(run)
    assert matches_paper_trace(trace, FIG9_REA_EXPECTED)


def test_fig9_no_exact_r1s_realization(benchmark):
    result = once(benchmark, experiment_fig9)
    assert result.trace_matches
    assert result.impossible_proved
    print()
    print(result.summary)


def test_fig9_repetition_in_r1s_is_possible(benchmark):
    instance = fig9_gadget()
    execution = Execution(instance)
    execution.run_nodes(FIG9_REA_SCHEDULE, kind="poll")
    target = execution.trace.pi_sequence

    def search():
        return RealizationSearch(
            instance, model("R1S"), queue_bound=4
        ).find_with_repetition(target)

    outcome = once(benchmark, search)
    assert outcome.realizable
