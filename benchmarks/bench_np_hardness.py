"""E15 — the NP-completeness context ([9]): SAT as routing policies.

Griffin–Shepherd–Wilfong proved SPP solvability NP-complete; this
benchmark exercises our executable reduction: formulas become policy
configurations whose stable solutions are exactly the satisfying
assignments, unsatisfiable cores become networks that oscillate under
every communication model, and brute-force solvability cost grows with
formula size while the reduction itself stays linear.
"""

import pytest

from repro.core.sat import dpll, random_formula
from repro.core.satgadgets import (
    assignment_from_solution,
    formula_to_spp,
    solution_from_assignment,
)
from repro.core.solutions import enumerate_stable_solutions
from repro.engine.explorer import can_oscillate
from repro.models.taxonomy import model

from conftest import once


def test_reduction_construction_speed(benchmark):
    formula = random_formula(3, n_vars=8, n_clauses=20)

    def build():
        return formula_to_spp(formula)

    instance = benchmark(build)
    assert len(instance.nodes) == 8 * 2 + 20 * 3 + 1


def test_equivalence_sweep(benchmark):
    """Solvability ⟺ satisfiability across a seed sweep."""

    def sweep():
        agreements = 0
        for seed in range(25):
            formula = random_formula(seed, n_vars=3, n_clauses=3, width=3)
            satisfiable = dpll(formula) is not None
            solvable = (
                next(iter(enumerate_stable_solutions(formula_to_spp(formula))), None)
                is not None
            )
            assert satisfiable == solvable, (seed, formula)
            agreements += 1
        return agreements

    assert once(benchmark, sweep) == 25


def test_unsat_core_oscillates_under_every_model_family(benchmark):
    instance = formula_to_spp(((1,), (-1,)))

    def verify():
        return {
            name: can_oscillate(instance, model(name), queue_bound=2)
            for name in ("R1O", "REO", "RMS", "REA", "UMS")
        }

    results = once(benchmark, verify)
    assert all(result.oscillates for result in results.values())


def test_translation_roundtrip_speed(benchmark):
    formula = random_formula(11, n_vars=6, n_clauses=10)
    model_ = dpll(formula)
    assert model_ is not None

    def roundtrip():
        solution = solution_from_assignment(formula, model_)
        return assignment_from_solution(formula, solution)

    decoded = benchmark(roundtrip)
    assert decoded == {k: model_[k] for k in decoded}
