"""E8 — Example A.6: multi-node polling can oscillate on DISAGREE.

With one node updating per step, polling models cannot oscillate on
DISAGREE (E3).  Activating x and y *simultaneously* — each polling one
channel with f = ∞ — restores the oscillation; the benchmark replays
the paper's schedule and certifies a state recurrence with two distinct
assignments, and also confirms the paper's modified-fairness remark
(staggered activations converge).
"""

from repro.analysis.experiments import experiment_multinode
from repro.core.instances import disagree
from repro.engine.activation import INFINITY, ActivationEntry
from repro.engine.convergence import is_fixed_point
from repro.engine.execution import Execution

from conftest import once


def test_exa6_simultaneous_polling_oscillates(benchmark):
    result = once(benchmark, experiment_multinode)
    assert result.oscillates
    print()
    print(result.summary)


def test_exa6_exhaustive_multinode_verification(benchmark):
    """Beyond replay: complete bounded search over the multi-node state
    graph proves both halves of Ex. A.6 — simultaneous R1A oscillates,
    and the modified fairness (solo activations required infinitely
    often) removes every oscillation."""
    from repro.engine.multinode import can_oscillate_multinode
    from repro.models.taxonomy import model

    def verify():
        lockstep = can_oscillate_multinode(
            disagree(), model("R1A"), queue_bound=2
        )
        staggered = can_oscillate_multinode(
            disagree(),
            model("R1A"),
            queue_bound=2,
            require_solo_activations=True,
        )
        return lockstep, staggered

    lockstep, staggered = once(benchmark, verify)
    assert lockstep.oscillates and lockstep.complete
    assert not staggered.oscillates and staggered.complete


def test_exa6_simultaneity_defeats_every_safe_model(benchmark):
    """New result: with unrestricted simultaneous activation, DISAGREE
    oscillates under *every* model — including REO/REF/REA, which are
    provably safe in the paper's one-node-per-step setting."""
    from repro.engine.multinode import can_oscillate_multinode
    from repro.models.taxonomy import model

    def sweep():
        return {
            name: can_oscillate_multinode(
                disagree(), model(name), queue_bound=2
            )
            for name in ("REA", "RMA", "R1A", "REO", "REF", "R1O", "RMS")
        }

    results = once(benchmark, sweep)
    assert all(result.oscillates for result in results.values())


def test_exa6_staggered_activations_converge(benchmark):
    """If x and y are also activated separately (the paper's modified
    fairness), the Ex. A.1 argument kicks back in and the run settles."""

    def run():
        instance = disagree()
        execution = Execution(instance)
        execution.step(ActivationEntry.single("d", ("x", "d"), count=INFINITY))
        # Simultaneous rounds first…
        for _ in range(3):
            execution.step(
                ActivationEntry(
                    nodes=["x", "y"],
                    channels=[("d", "x"), ("d", "y")],
                    reads={("d", "x"): INFINITY, ("d", "y"): INFINITY},
                )
            )
            execution.step(
                ActivationEntry(
                    nodes=["x", "y"],
                    channels=[("y", "x"), ("x", "y")],
                    reads={("y", "x"): INFINITY, ("x", "y"): INFINITY},
                )
            )
        # …then individual ones: x polls y, then y polls x, then drain.
        for node, channel in (
            ("x", ("y", "x")), ("y", ("x", "y")),
            ("x", ("y", "x")), ("y", ("x", "y")),
            ("x", ("d", "x")), ("y", ("d", "y")),
            ("d", ("x", "d")), ("d", ("y", "d")),
            ("x", ("y", "x")), ("y", ("x", "y")),
            ("d", ("x", "d")), ("d", ("y", "d")),
        ):
            execution.step(
                ActivationEntry.single(node, channel, count=INFINITY)
            )
        return execution

    execution = benchmark(run)
    assert is_fixed_point(execution.instance, execution.state)
