"""E9 — the constructive realization results (Props. 3.3/3.4/3.6, Thms 3.5/3.7).

Each benchmark records a fair random execution in the source model,
applies the proof's transformation, re-executes in the target model,
and asserts the claimed π-sequence relation — then reports how fast the
construction runs.
"""

import pytest

from repro.core.instances import fig6_gadget
from repro.engine.activation import INFINITY
from repro.engine.execution import Execution
from repro.engine.schedulers import RandomScheduler
from repro.models.taxonomy import model
from repro.realization.transforms import (
    batch_u1o_to_r1s,
    expand_r1s_to_r1o,
    expand_u1s_to_u1o,
    pad_to_every_scope,
    split_multi_scope,
)
from repro.realization.verify import is_exact, is_repetition, is_subsequence

STEPS = 150


def record(instance, model_name, seed=0, drop_prob=0.2):
    execution = Execution(instance)
    scheduler = RandomScheduler(
        instance, model(model_name), seed=seed, drop_prob=drop_prob
    )
    schedule = []
    for _ in range(STEPS):
        entry = scheduler.next_entry(execution.state)
        schedule.append(entry)
        execution.step(entry)
    return tuple(schedule), execution.trace.pi_sequence


def replay(instance, schedule):
    return Execution(instance).run(schedule).pi_sequence


def test_prop34_pad_rms_to_res(benchmark):
    instance = fig6_gadget()
    schedule, source_pi = record(instance, "RMS")
    padded = benchmark(pad_to_every_scope, instance, schedule)
    assert is_exact(source_pi, replay(instance, padded))


@pytest.mark.parametrize(
    "source, padding", [("RMS", 1), ("RMA", INFINITY), ("UMF", 1)]
)
def test_thm35_split_multi(benchmark, source, padding):
    instance = fig6_gadget()
    schedule, source_pi = record(instance, source)
    split = benchmark(
        split_multi_scope, instance, schedule, padding_count=padding
    )
    assert is_repetition(source_pi, replay(instance, split))


def test_prop36_r1s_to_r1o(benchmark):
    instance = fig6_gadget()
    schedule, source_pi = record(instance, "R1S", drop_prob=0)
    expanded = benchmark(expand_r1s_to_r1o, instance, schedule)
    assert is_subsequence(source_pi, replay(instance, expanded))


def test_prop36_u1s_to_u1o(benchmark):
    instance = fig6_gadget()
    schedule, source_pi = record(instance, "U1S", drop_prob=0.3)
    expanded = benchmark(expand_u1s_to_u1o, instance, schedule)
    assert is_repetition(source_pi, replay(instance, expanded))


def test_thm37_u1o_to_r1s(benchmark):
    instance = fig6_gadget()
    schedule, source_pi = record(instance, "U1O", drop_prob=0.3)
    batched = benchmark(batch_u1o_to_r1s, instance, schedule)
    assert is_exact(source_pi, replay(instance, batched))
