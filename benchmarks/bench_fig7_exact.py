"""E5 — Figure 7 / Example A.3: REO ⊀ R1O under exact realization.

The scripted 10-step REO execution is re-run and checked against the
paper's table, then an exhaustive search proves that no fair R1O
activation sequence induces the same π-sequence exactly — the stale
``vbd`` message forces any fair continuation through ``svbd``.
"""

from repro.analysis.experiments import (
    FIG7_REO_EXPECTED,
    FIG7_REO_SCHEDULE,
    experiment_fig7,
)
from repro.analysis.traces import matches_paper_trace
from repro.core.instances import fig7_gadget
from repro.engine.execution import Execution

from conftest import once


def test_fig7_scripted_reo_trace(benchmark):
    def run():
        execution = Execution(fig7_gadget())
        execution.run_nodes(FIG7_REO_SCHEDULE, kind="one-each")
        return execution.trace

    trace = benchmark(run)
    assert matches_paper_trace(trace, FIG7_REO_EXPECTED)


def test_fig7_no_exact_r1o_realization(benchmark):
    result = once(benchmark, experiment_fig7)
    assert result.trace_matches
    assert result.impossible_proved
    print()
    print(result.summary)
