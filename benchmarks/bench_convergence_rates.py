"""E10 — convergence-rate survey across models (Sec. 5 shape).

The paper's qualitative conclusions: polling models are "safer" (they
rule out some oscillations), queueing models admit every behaviour, and
reliability alone buys little.  The sweep runs fair random executions
on random policy instances and on the gadgets and checks the ordering
of convergence rates.
"""

from repro.analysis.experiments import experiment_convergence_rates
from repro.analysis.stats import survey_convergence
from repro.core import instances as canonical
from repro.core.generators import instance_family
from repro.models.taxonomy import model

from conftest import once


def test_random_instance_survey(benchmark):
    survey = once(
        benchmark,
        experiment_convergence_rates,
        n_instances=8,
        seeds_per_instance=4,
        model_names=("R1O", "REO", "RMS", "REA", "U1O", "UMS"),
        max_steps=400,
    )
    print()
    print(survey.format_table())
    # Shape: polling (REA) must do at least as well as the queueing and
    # message-passing models — it rules out some oscillations.
    assert survey.rate("REA") >= survey.rate("RMS")
    assert survey.rate("REA") >= survey.rate("R1O")
    # Reliability alone buys little: R/U twins behave comparably.
    assert abs(survey.rate("R1O") - survey.rate("U1O")) <= 0.25
    assert abs(survey.rate("RMS") - survey.rate("UMS")) <= 0.25


def test_disagree_rates_separate_models(benchmark):
    survey = once(
        benchmark,
        survey_convergence,
        [canonical.disagree()],
        [model("RMA"), model("REO"), model("R1O"), model("RMS")],
        seeds_per_instance=10,
        max_steps=150,
    )
    print()
    print(survey.format_table())
    # The models that provably cannot oscillate on DISAGREE always
    # converge; the others may burn the budget oscillating.
    assert survey.rate("RMA") == 1.0
    assert survey.rate("REO") == 1.0
    assert survey.rate("R1O") <= 1.0
    assert survey.rate("RMS") <= 1.0


def test_safe_family_always_converges(benchmark):
    instances = list(
        instance_family(6, base_seed=3, n_nodes=4, policy="shortest")
    )
    survey = once(
        benchmark,
        survey_convergence,
        instances,
        [model("R1O"), model("UMS"), model("REA")],
        seeds_per_instance=3,
        max_steps=600,
    )
    for stats in survey.per_model.values():
        assert stats.convergence_rate == 1.0, stats.model_name
