"""E1 — regenerate Figure 3 (realization by reliable-channel models).

The paper's Figure 3 reports, for every model A (rows) and reliable
model B (columns), the strongest proved sense in which B realizes A.
The benchmark derives the matrix by running the Sec. 3.4 transitivity
rules to fixpoint over the foundational results and compares every cell
with the published table.
"""

from repro.analysis.experiments import experiment_figure3
from repro.realization.closure import derive_matrix


def test_fig3_closure_derivation(benchmark):
    matrix = benchmark(derive_matrix)
    assert matrix.get  # matrix materialized


def test_fig3_matches_published_table(benchmark):
    result = benchmark(experiment_figure3)
    # 288 published cells: 284 byte-identical, 4 strictly tighter
    # (legitimate derivations of cells the paper printed as bounds),
    # zero contradictions/looser entries.
    assert result.matches == 284
    assert result.tighter == 4
    assert not result.problems
    print()
    print(result.matrix_text)
    print(result.summary)
