"""E4 — Figure 6 / Example A.2: the REO/REF versus polling separation.

Two halves:

* the scripted 13-step REO execution from the paper (verified step by
  step against its table) extended to a *provable oscillation* (a full
  network state recurs with ≥ 2 assignments in the loop); and
* exhaustive verification that none of the polling models R1A, RMA, REA
  can oscillate on the gadget (Thm. 3.9) — a complete bounded search of
  up to ~90k states per model.
"""

from repro.analysis.experiments import experiment_fig6, run_fig6_reo_trace
from repro.core.instances import fig6_gadget
from repro.engine.explorer import can_oscillate
from repro.models.taxonomy import model

from conftest import once


def test_fig6_reo_scripted_oscillation(benchmark):
    trace, matched, recurrence = benchmark(run_fig6_reo_trace)
    assert matched, "scripted REO prefix diverged from the paper's table"
    assert recurrence is not None, "no oscillation evidence found"


def test_fig6_reo_explorer_witness(benchmark):
    """Independent of the scripted trace, the model checker finds an
    REO oscillation witness on the gadget."""
    result = once(
        benchmark,
        can_oscillate,
        fig6_gadget(),
        model("REO"),
        queue_bound=3,
        max_states=500_000,
    )
    assert result.oscillates


def test_fig6_ref_explorer_witness(benchmark):
    result = once(
        benchmark,
        can_oscillate,
        fig6_gadget(),
        model("REF"),
        queue_bound=3,
        max_states=500_000,
    )
    assert result.oscillates


def test_fig6_rea_polling_cannot_oscillate(benchmark):
    result = once(
        benchmark,
        can_oscillate,
        fig6_gadget(),
        model("REA"),
        queue_bound=2,
        max_states=2_000_000,
    )
    assert not result.oscillates
    assert result.complete


def test_fig6_r1a_polling_cannot_oscillate(benchmark):
    result = once(
        benchmark,
        can_oscillate,
        fig6_gadget(),
        model("R1A"),
        queue_bound=2,
        max_states=2_000_000,
    )
    assert not result.oscillates
    assert result.complete


def test_fig6_rma_polling_cannot_oscillate(benchmark):
    result = once(
        benchmark,
        can_oscillate,
        fig6_gadget(),
        model("RMA"),
        queue_bound=2,
        max_states=2_000_000,
    )
    assert not result.oscillates
    assert result.complete


def test_fig6_experiment_summary(benchmark):
    result = once(benchmark, experiment_fig6, polling_models=("REA",))
    assert result.oscillates_in_reo
    assert result.polling_safe
    print()
    print(result.summary)
