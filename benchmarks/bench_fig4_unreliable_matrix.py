"""E2 — regenerate Figure 4 (realization by unreliable-channel models).

Same derivation as E1, compared against the unreliable-realizer
columns: all 288 published cells must match exactly, including the
headline result that UMS exactly realizes every model in the taxonomy.
"""

from repro.analysis.experiments import experiment_figure4
from repro.models.taxonomy import ALL_MODELS, model
from repro.realization.closure import derive_matrix
from repro.realization.relations import Level


def test_fig4_matches_published_table(benchmark):
    result = benchmark(experiment_figure4)
    assert result.matches == 288
    assert result.tighter == 0
    assert not result.problems
    print()
    print(result.matrix_text)


def test_fig4_ums_is_universal_exact_realizer(benchmark):
    def derive_and_check():
        matrix = derive_matrix()
        ums = model("UMS")
        return all(
            matrix.get(m, ums).lo == Level.EXACT for m in ALL_MODELS
        )

    assert benchmark(derive_and_check)
