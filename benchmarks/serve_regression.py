"""Serving-tier regression harness — writes ``BENCH_serve.json``.

Benchmarks the ``repro serve`` daemon end to end over HTTP and gates
the four properties the serving tier exists for::

    PYTHONPATH=src python benchmarks/serve_regression.py \
        [--out BENCH_serve.json]

* **Hot-hit latency** — a repeat byte-identical query is answered from
  the serve-level response tier without parsing or recomputation; the
  p50 round trip over a keep-alive connection must stay under
  :data:`MAX_HOT_P50_MS` (the warm CLI path pays ~9 ms just reading
  and checksumming disk entries, before interpreter startup).
* **Amortization vs the CLI** — the served hot hit must beat a warm
  ``python -c`` run of the same fig7 24-model certification (cache
  fully populated, interpreter startup included, the honest
  "shell out to the library" alternative) by
  :data:`MIN_WARM_CLI_SPEEDUP`.
* **Singleflight** — 16 concurrent identical cold queries cost exactly
  one exploration (``explore.runs == 1``, ``computed == 1``).
* **Micro-batching** — one cold 24-model query builds the instance's
  reduction tables exactly once (``reduction.table_builds == 1``).

Before any number is reported, the served fig7 verdicts are asserted
bit-identical (witnesses included) to a direct, cache-free
``matrix_certification`` of the same workload.

The JSON is committed alongside serving PRs so a regression shows up
as a diff; each run appends one timestamped entry to its ``history``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro import obs
from repro.analysis.experiments import matrix_certification
from repro.config import RunConfig
from repro.core.instances import disagree, fig7_gadget
from repro.engine.cache import result_from_payload
from repro.obs.telemetry import Telemetry
from repro.serve import ReproServer, ServeConfig, VerdictService
from repro.serve.client import ServeClient, build_query_body

MAX_HOT_P50_MS = 1.0
MIN_WARM_CLI_SPEEDUP = 5.0

#: The packed core keeps the cold fig7 certification at ~2 s instead
#: of ~18 s; the serving-tier properties under test are engine-blind.
ENGINE = "packed"
HOT_REQUESTS = 200

_WARM_CLI_SNIPPET = """\
from repro.analysis.experiments import matrix_certification
from repro.config import RunConfig
from repro.core.instances import fig7_gadget

cert = matrix_certification(
    instance=fig7_gadget(),
    config=RunConfig(
        queue_bound=2, workers=1, cache_dir={cache_dir!r}, engine={engine!r}
    ),
)
assert len(cert) == 24
"""


def bench_served_fig7(cache_dir: str) -> dict:
    """Cold + hot fig7 24-model certification through a live server.

    Returns the cold/hot numbers plus the served results for the
    differential assertion; leaves ``cache_dir`` fully populated for
    the warm-CLI comparison.
    """
    telemetry = Telemetry(None)
    previous = obs.install(telemetry)
    try:
        service = VerdictService(
            ServeConfig(cache_dir=cache_dir, engine=ENGINE, queue_cap=8)
        )
        with ReproServer(service) as server:
            with ServeClient(server.url) as client:
                body = build_query_body(fig7_gadget(), queue_bound=2)
                start = time.perf_counter()
                cold = client.query_raw(body)
                cold_seconds = time.perf_counter() - start
                assert cold.hot is False and len(cold.data["results"]) == 24

                client.query_raw(body)  # prime keep-alive + response tier
                samples = []
                for _ in range(HOT_REQUESTS):
                    start = time.perf_counter()
                    hot = client.query_raw(body)
                    samples.append(time.perf_counter() - start)
                    assert hot.hot is True
    finally:
        obs.install(previous)

    samples.sort()
    p50_ms = statistics.median(samples) * 1000.0
    p99_ms = samples[int(len(samples) * 0.99) - 1] * 1000.0
    return {
        "cold": {
            "seconds": round(cold_seconds, 4),
            "models": len(cold.data["results"]),
            "explore_runs": telemetry.counters.get("explore.runs", 0),
            "table_builds": telemetry.counters.get(
                "reduction.table_builds", 0
            ),
        },
        "hot": {
            "requests": HOT_REQUESTS,
            "p50_ms": round(p50_ms, 3),
            "p99_ms": round(p99_ms, 3),
        },
        "_results": cold.data["results"],
        "_hot_seconds": statistics.median(samples),
    }


def assert_differential(results: dict) -> None:
    """Served verdicts must be bit-identical to the direct library
    path — witnesses included, caches out of the loop."""
    instance = fig7_gadget()
    direct = matrix_certification(
        instance=instance,
        config=RunConfig(queue_bound=2, cache=False, workers=1, engine=ENGINE),
    )
    assert set(results) == set(direct)
    for name, payload in results.items():
        served = result_from_payload(payload, instance)
        assert dataclasses.replace(served, cache_hit=False) == (
            dataclasses.replace(direct[name], cache_hit=False)
        ), f"served {name} differs from direct certification"


def bench_warm_cli(cache_dir: str) -> dict:
    """The alternative the daemon replaces: a fresh interpreter running
    the same certification against the already-populated cache."""
    snippet = _WARM_CLI_SNIPPET.format(cache_dir=cache_dir, engine=ENGINE)
    repo = Path(__file__).resolve().parent.parent
    best = None
    for _ in range(3):
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-c", snippet],
            cwd=repo,
            env={"PYTHONPATH": str(repo / "src")},
            capture_output=True,
            text=True,
        )
        elapsed = time.perf_counter() - start
        assert proc.returncode == 0, proc.stderr
        if best is None or elapsed < best:
            best = elapsed
    return {"seconds": round(best, 4), "_raw_seconds": best}


def bench_singleflight(cache_dir: str) -> dict:
    """16 racing identical cold queries must cost one exploration."""
    telemetry = Telemetry(None)
    previous = obs.install(telemetry)
    try:
        service = VerdictService(
            ServeConfig(
                cache_dir=cache_dir, queue_cap=8, response_cache_entries=0
            )
        )
        body = build_query_body(disagree(), ["R1O"], queue_bound=2)
        barrier = threading.Barrier(16)
        outcomes = []

        def fire():
            barrier.wait()
            outcomes.append(service.handle_query(body))

        threads = [threading.Thread(target=fire) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.close()
    finally:
        obs.install(previous)
    assert len(outcomes) == 16
    return {
        "threads": 16,
        "explore_runs": telemetry.counters.get("explore.runs", 0),
        "computed": service.statz()["serve"]["computed"],
    }


def run(out_path: Path) -> dict:
    with tempfile.TemporaryDirectory() as served_cache:
        served = bench_served_fig7(served_cache)
        assert_differential(served.pop("_results"))
        warm_cli = bench_warm_cli(served_cache)
    with tempfile.TemporaryDirectory() as race_cache:
        singleflight = bench_singleflight(race_cache)

    hot_seconds = served.pop("_hot_seconds")
    warm_cli_speedup = round(warm_cli.pop("_raw_seconds") / hot_seconds, 1)
    report = {
        "workload": "fig7_gadget all 24 models queue_bound=2 over HTTP "
        f"(engine={ENGINE}): cold then {HOT_REQUESTS} hot hits vs a warm "
        "python -c certification; DISAGREE R1O x16 for singleflight",
        "python": platform.python_version(),
        "serve": served,
        "warm_cli": warm_cli,
        "singleflight": singleflight,
        "speedup": {"hot_vs_warm_cli": warm_cli_speedup},
        "passes_max_hot_p50_ms": served["hot"]["p50_ms"] < MAX_HOT_P50_MS,
        "passes_min_warm_cli_speedup": (
            warm_cli_speedup >= MIN_WARM_CLI_SPEEDUP
        ),
        "passes_singleflight": (
            singleflight["explore_runs"] == 1
            and singleflight["computed"] == 1
        ),
        "passes_batch_table_builds": served["cold"]["table_builds"] == 1,
    }
    _append_history(out_path, report)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _git_rev(repo: Path) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo, capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _append_history(out_path: Path, report: dict) -> None:
    """One timestamped trajectory entry per run, like BENCH_matrix."""
    history = []
    if out_path.exists():
        try:
            history = json.loads(out_path.read_text()).get("history", [])
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "git_rev": _git_rev(out_path.resolve().parent),
            "python": platform.python_version(),
            "hot_p50_ms": report["serve"]["hot"]["p50_ms"],
            "cold_seconds": report["serve"]["cold"]["seconds"],
            "warm_cli_seconds": report["warm_cli"]["seconds"],
            "speedup": dict(report["speedup"]),
        }
    )
    report["history"] = history


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(repo / "BENCH_serve.json"))
    args = parser.parse_args()
    report = run(Path(args.out))
    print(json.dumps(report, indent=2))
    failed = False
    if not report["passes_max_hot_p50_ms"]:
        print(
            f"FAIL: hot-hit p50 {report['serve']['hot']['p50_ms']} ms "
            f">= allowed {MAX_HOT_P50_MS} ms"
        )
        failed = True
    if not report["passes_min_warm_cli_speedup"]:
        print(
            f"FAIL: hot-hit speedup {report['speedup']['hot_vs_warm_cli']}x "
            f"over the warm CLI path < required {MIN_WARM_CLI_SPEEDUP}x"
        )
        failed = True
    if not report["passes_singleflight"]:
        print(
            "FAIL: 16 racing identical cold queries cost "
            f"{report['singleflight']['explore_runs']} explorations "
            "(expected exactly 1)"
        )
        failed = True
    if not report["passes_batch_table_builds"]:
        print(
            "FAIL: batched 24-model certification built reduction tables "
            f"{report['serve']['cold']['table_builds']} times "
            "(expected exactly 1)"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
