"""E12 — infrastructure throughput: simulator steps and explorer states.

Not a paper artifact, but the knob that sizes every other experiment:
how many Def. 2.3 steps per second the engine executes and how fast the
bounded model checker enumerates states.
"""

from repro.core.instances import disagree, fig6_gadget
from repro.engine.convergence import simulate
from repro.engine.execution import Execution
from repro.engine.explorer import Explorer
from repro.engine.schedulers import RandomScheduler
from repro.models.taxonomy import model


def test_engine_step_throughput(benchmark):
    instance = fig6_gadget()
    scheduler = RandomScheduler(instance, model("UMS"), seed=1, drop_prob=0.3)

    def run_block():
        execution = Execution(instance)
        for _ in range(1000):
            execution.step(scheduler.next_entry(execution.state))
        return execution

    execution = benchmark(run_block)
    assert len(execution.trace) == 1000


def test_explorer_state_throughput(benchmark):
    def explore():
        return Explorer(
            fig6_gadget(), model("REA"), queue_bound=2, max_states=100_000
        ).explore()

    result = benchmark(explore)
    assert result.states_explored > 1000
    assert not result.oscillates


def test_explorer_state_throughput_reference(benchmark):
    """The didactic engine on the same search — the speedup denominator."""

    def explore():
        return Explorer(
            fig6_gadget(),
            model("REA"),
            queue_bound=2,
            max_states=100_000,
            engine="reference",
        ).explore()

    result = benchmark(explore)
    assert result.states_explored > 1000
    assert not result.oscillates


def test_compiled_replay_throughput(benchmark):
    """The compiled Def. 2.3 step on a fixed recorded schedule."""
    from repro.engine.compiled import replay_schedule

    instance = fig6_gadget()
    scheduler = RandomScheduler(instance, model("UMS"), seed=1, drop_prob=0.3)
    execution = Execution(instance)
    schedule = []
    for _ in range(1000):
        entry = scheduler.next_entry(execution.state)
        schedule.append(entry)
        execution.step(entry)

    states = benchmark(replay_schedule, instance, schedule)
    assert states == execution.trace.states


def test_matrix_certification_speed(benchmark):
    """All 24 models certified on DISAGREE — the matrix cross-check."""
    from repro.analysis.experiments import (
        MATRIX_CERTIFIED_SAFE,
        matrix_certification,
    )

    from repro.config import RunConfig

    cert = benchmark(matrix_certification, config=RunConfig(workers=1))
    safe = frozenset(
        name
        for name, result in cert.items()
        if not result.oscillates and result.complete
    )
    assert safe == MATRIX_CERTIFIED_SAFE


def test_simulation_to_fixed_point(benchmark):
    def run():
        return simulate(fig6_gadget(), model("RMS"), seed=2, max_steps=4000)

    result = benchmark(run)
    assert result.converged


def test_disagree_full_sweep_speed(benchmark):
    """The E3 sweep is the most repeated operation in the suite."""

    def sweep():
        from repro.engine.explorer import can_oscillate
        from repro.models.taxonomy import ALL_MODELS

        return [
            can_oscillate(disagree(), m, queue_bound=3).oscillates
            for m in ALL_MODELS
        ]

    verdicts = benchmark(sweep)
    assert sum(verdicts) == 14  # 24 models, 10 cannot oscillate
