"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands
-----------

* ``list`` — the taxonomy and the canonical instances.
* ``matrix`` — print the derived Figure 3/4 matrices and the comparison
  against the paper's published entries.
* ``simulate`` — run one fair random execution of an instance under a
  model and report convergence.
* ``explore`` — bounded model checking: can the instance oscillate
  under the model?
* ``trace`` — print the scripted Appendix A executions.
* ``experiments`` — run the full experiment suite (``--json`` for
  machine-readable results).
* ``campaign`` — resumable sharded surveys over random instance
  populations (``run``/``resume``/``status``/``report``).
* ``serve`` — long-running verdict daemon over the content-addressed
  cache (singleflight, micro-batching, admission control).
* ``query`` — client for a running ``repro serve`` daemon.
* ``cache`` — inspect (``stats``) or empty (``clear``) the
  content-addressed verdict cache shared by the search commands.
* ``doctor`` — fsck a cache root or campaign directory: verify
  checksums, digests, and checkpoints; ``--repair`` quarantines bad
  artifacts and rewrites derivable ones.
* ``stats`` — aggregate telemetry JSONL files (``--telemetry`` on the
  search commands) into a per-phase wall-time breakdown.
* ``explain`` / ``solve`` / ``wheel`` / ``sat`` / ``artifacts`` — targeted
  derivations, solution enumeration, dispute wheels, the NP-completeness
  reduction, and artifact regeneration.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import faults, obs
from .analysis import experiments, reporting
from .analysis.traces import format_trace_table
from .campaign import Campaign, CampaignError, CampaignSpec, QueueError, render_report
from .config import RunConfig
from .core.instances import ALL_NAMED_INSTANCES
from .engine.cache import DEFAULT_CACHE_DIR, VerdictCache
from .engine.convergence import simulate
from .engine.execution import Execution
from .engine.explorer import can_oscillate
from .engine.reduction import REDUCTIONS
from .models.taxonomy import ALL_MODELS, model
from .realization.closure import derive_matrix

__all__ = ["main", "build_parser"]


def _add_perf_flags(parser: argparse.ArgumentParser) -> None:
    """The shared engine/reduction/cache knobs of the search commands."""
    parser.add_argument(
        "--engine",
        choices=("compiled", "packed", "reference"),
        default="compiled",
        help="execution core: the integer-interned fast path (default), "
        "the bit-packed symmetry-quotienting engine, or the didactic "
        "reference search (identical verdicts)",
    )
    parser.add_argument(
        "--reduction",
        choices=REDUCTIONS,
        default="ample",
        help="partial-order reducer: 'ample' (default) merges "
        "ext-equivalent interleavings; 'none' searches the full graph",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="verdict-cache directory (default: $REPRO_CACHE_DIR or "
        f"{DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed verdict cache",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="append structured JSONL telemetry events to PATH "
        f"(default: ${obs.TELEMETRY_ENV_VAR} when set); verdicts are "
        "identical with telemetry on or off",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print live search heartbeats to stderr",
    )
    _add_fault_plan_flag(parser)


def _add_fault_plan_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN",
        help="arm a fault-injection plan JSON for this run (chaos "
        f"testing; also exported as ${faults.FAULT_PLAN_ENV_VAR} so "
        "worker subprocesses inherit it)",
    )


def _resolve_cache_dir(args) -> "str | None":
    """The cache directory a command should use, or ``None`` when off."""
    if args.no_cache:
        return None
    return (
        args.cache_dir
        or os.environ.get("REPRO_CACHE_DIR")
        or DEFAULT_CACHE_DIR
    )


def _resolve_telemetry(args) -> "str | None":
    """The telemetry JSONL path, or ``None`` when telemetry is off."""
    explicit = getattr(args, "telemetry", None)
    return explicit or os.environ.get(obs.TELEMETRY_ENV_VAR) or None


def _config_from_args(args, workers: "int | None" = None) -> RunConfig:
    """The :class:`RunConfig` a search command's flags describe."""
    return RunConfig(
        engine=args.engine,
        reduction=args.reduction,
        cache_dir=_resolve_cache_dir(args),
        workers=workers,
        telemetry=_resolve_telemetry(args),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'The Impact of Communication Models on "
            "Routing-Algorithm Convergence' (ICDCS 2009)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list models and canonical instances")

    matrix = sub.add_parser("matrix", help="derive and print Figures 3/4")
    matrix.add_argument("--figure", choices=("3", "4", "both"), default="both")
    matrix.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the 24-model explorer certification "
        "(verdicts are identical for every worker count)",
    )
    _add_perf_flags(matrix)

    sim = sub.add_parser("simulate", help="run one fair random execution")
    sim.add_argument("--instance", default="disagree", choices=sorted(ALL_NAMED_INSTANCES))
    sim.add_argument("--model", default="RMS")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--max-steps", type=int, default=2000)

    explore = sub.add_parser("explore", help="bounded oscillation search")
    explore.add_argument("--instance", default="disagree", choices=sorted(ALL_NAMED_INSTANCES))
    explore.add_argument("--model", default="R1O")
    explore.add_argument("--queue-bound", type=int, default=3)
    explore.add_argument("--max-states", type=int, default=500_000)
    _add_perf_flags(explore)

    trace = sub.add_parser(
        "trace",
        help="print a scripted Appendix A execution, or reconstruct a "
        "distributed request trace from telemetry streams",
    )
    trace.add_argument(
        "action",
        nargs="?",
        choices=("show", "list"),
        default=None,
        help="'show TRACE_ID' renders one request's cross-process span "
        "tree; 'list' enumerates trace IDs — both read --telemetry "
        "JSONL file(s); omit for the Appendix A execution printer",
    )
    trace.add_argument(
        "trace_id",
        nargs="?",
        default=None,
        help="trace ID (or unique prefix) for 'show'",
    )
    trace.add_argument("--example", choices=("fig6", "fig7", "fig8", "fig9"), default="fig6")
    trace.add_argument(
        "--telemetry",
        nargs="+",
        default=None,
        metavar="FILE",
        help="telemetry JSONL stream(s) to reconstruct from — pass the "
        "client's and the server's to see both sides of a query",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit the matched span records as JSON (CI artifact form)",
    )

    exp = sub.add_parser("experiments", help="run the experiment suite")
    exp.add_argument(
        "--full",
        action="store_true",
        help="include the minutes-long exhaustive fig6 polling verification",
    )
    exp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the parallel exploration/simulation fan-outs "
        "(results are identical for every worker count)",
    )
    exp.add_argument(
        "--json",
        action="store_true",
        help="emit the suite results as one JSON document instead of text",
    )
    _add_perf_flags(exp)

    serve = sub.add_parser(
        "serve",
        help="run the verdict daemon (HTTP/JSON over the verdict cache)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8351,
        help="listen port (0 picks an ephemeral port, printed on startup)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="verdict-cache directory (default: $REPRO_CACHE_DIR or "
        f"{DEFAULT_CACHE_DIR})",
    )
    serve.add_argument(
        "--engine",
        choices=("compiled", "packed", "reference"),
        default="compiled",
        help="default execution core for requests that do not pick one",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="serving worker threads draining the cold-miss batch queue",
    )
    serve.add_argument(
        "--compute-procs",
        type=int,
        default=1,
        help="process fan-out inside one batch (1 keeps batches "
        "in-process so per-instance tables are built once)",
    )
    serve.add_argument(
        "--queue-cap",
        type=int,
        default=64,
        help="admission control: maximum queued cold-miss batches "
        "before requests are shed with 429/Retry-After",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request deadline while waiting on cold computations",
    )
    serve.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="Retry-After hint sent with shed (429) responses",
    )
    serve.add_argument(
        "--response-cache",
        type=int,
        default=256,
        metavar="N",
        help="serve-level hot tier: complete responses kept for repeat "
        "byte-identical queries (0 disables)",
    )
    serve.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="append structured JSONL telemetry events to PATH "
        f"(default: ${obs.TELEMETRY_ENV_VAR} when set)",
    )
    _add_fault_plan_flag(serve)

    query = sub.add_parser(
        "query", help="query a running repro serve daemon"
    )
    query.add_argument(
        "--url",
        default="http://127.0.0.1:8351",
        help="server base URL (default: %(default)s)",
    )
    query.add_argument(
        "--instance", default="disagree", choices=sorted(ALL_NAMED_INSTANCES)
    )
    query.add_argument(
        "--instance-file",
        default=None,
        metavar="JSON",
        help="query an instance from a serialization JSON file instead "
        "of a canonical one",
    )
    query.add_argument(
        "--models",
        nargs="+",
        default=None,
        metavar="MODEL",
        help="model names to certify (default: all 24)",
    )
    query.add_argument("--queue-bound", type=int, default=3)
    query.add_argument("--max-states", type=int, default=None)
    query.add_argument(
        "--engine",
        choices=("compiled", "packed", "reference"),
        default=None,
        help="execution core override (default: the server's)",
    )
    query.add_argument(
        "--reduction", choices=REDUCTIONS, default=None
    )
    query.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS"
    )
    query.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry a shed (429/503) response this many times, sleeping "
        "the server's Retry-After hint between attempts",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="print the raw response JSON instead of a verdict table",
    )
    query.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="record the client side of the query's distributed trace "
        f"to PATH (default: ${obs.TELEMETRY_ENV_VAR} when set)",
    )

    top = sub.add_parser(
        "top",
        help="live operations dashboard: throughput, hit tiers, queue "
        "depth, shed rate, latency quantiles",
    )
    top.add_argument(
        "--url",
        default=None,
        help="poll this daemon's /metrics (default: "
        "http://127.0.0.1:8351 when no --telemetry is given)",
    )
    top.add_argument(
        "--telemetry",
        nargs="+",
        default=None,
        metavar="FILE",
        help="tail telemetry JSONL file(s) instead of polling /metrics",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh interval (default: %(default)s)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="render N frames then exit (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (same as --iterations 1)",
    )

    cache = sub.add_parser(
        "cache", help="inspect or clear the content-addressed verdict cache"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or "
        f"{DEFAULT_CACHE_DIR})",
    )
    cache.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE",
        help="also report hit/miss/write/evicted counters aggregated "
        "from a telemetry JSONL file (stats action only)",
    )

    stats = sub.add_parser(
        "stats", help="aggregate telemetry JSONL files into a phase table"
    )
    stats.add_argument(
        "files", nargs="+", metavar="FILE", help="telemetry JSONL file(s)"
    )
    stats.add_argument(
        "--counters",
        action="store_true",
        help="also print the raw counter/gauge totals",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the aggregate as JSON instead of a table",
    )

    camp = sub.add_parser(
        "campaign",
        help="resumable sharded surveys over random instance populations",
    )
    campsub = camp.add_subparsers(dest="campaign_command", required=True)

    def _add_campaign_exec_flags(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--workers",
            type=int,
            default=None,
            help="processes per shard fan-out (default: $REPRO_WORKERS "
            "or one per core); results are identical for every value",
        )
        parser.add_argument(
            "--max-shards",
            type=int,
            default=None,
            metavar="N",
            help="stop after completing N pending shards (campaigns are "
            "resumable, so partial runs are always safe)",
        )
        parser.add_argument(
            "--telemetry",
            default=None,
            metavar="PATH",
            help="telemetry JSONL path (default: telemetry.jsonl inside "
            "the campaign directory)",
        )
        parser.add_argument(
            "--no-telemetry",
            action="store_true",
            help="disable the campaign's telemetry stream",
        )
        parser.add_argument(
            "--progress",
            action="store_true",
            help="print live shard heartbeats to stderr",
        )
        _add_fault_plan_flag(parser)

    crun = campsub.add_parser(
        "run", help="start (or continue) a campaign from a JSON spec file"
    )
    crun.add_argument("spec", help="campaign spec JSON file")
    crun.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="campaign directory (default: campaigns/<spec name>)",
    )
    _add_campaign_exec_flags(crun)

    cresume = campsub.add_parser(
        "resume", help="continue an interrupted campaign directory"
    )
    cresume.add_argument("dir", help="campaign directory")
    _add_campaign_exec_flags(cresume)

    cstatus = campsub.add_parser("status", help="shard/task progress")
    cstatus.add_argument("dir", help="campaign directory")
    cstatus.add_argument("--json", action="store_true")

    creport = campsub.add_parser(
        "report", help="aggregate a finished campaign into a survey report"
    )
    creport.add_argument("dir", help="campaign directory")
    creport.add_argument("--json", action="store_true")

    cserve = campsub.add_parser(
        "serve",
        help="coordinate a campaign over HTTP so other hosts can join",
    )
    cserve.add_argument("dir", help="campaign directory")
    cserve.add_argument("--host", default="127.0.0.1")
    cserve.add_argument(
        "--port",
        type=int,
        default=8643,
        help="listen port (default: %(default)s)",
    )
    cserve.add_argument(
        "--queue-backend",
        choices=("sqlite", "file"),
        default="sqlite",
        help="work-queue backend inside the campaign directory "
        "(file = shared-filesystem lease files; default: %(default)s)",
    )
    cserve.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="heartbeat timeout before a worker's shard lease is "
        "reclaimed (default: %(default)s)",
    )
    cserve.add_argument(
        "--quarantine-after",
        type=int,
        default=3,
        metavar="N",
        help="quarantine a shard as poison after N distinct workers "
        "fail it (the report is then stamped partial; default: "
        "%(default)s)",
    )
    cserve.add_argument(
        "--until-complete",
        action="store_true",
        help="exit once every shard is done and report.json is written "
        "(instead of serving until SIGTERM)",
    )
    cserve.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="telemetry JSONL path (default: telemetry.jsonl inside "
        "the campaign directory)",
    )
    cserve.add_argument("--no-telemetry", action="store_true")
    _add_fault_plan_flag(cserve)

    cjoin = campsub.add_parser(
        "join",
        help="work a campaign's shard queue (directory or coordinator URL)",
    )
    cjoin.add_argument(
        "target",
        help="campaign directory (shared filesystem) or the "
        "http://host:port of a `repro campaign serve` coordinator",
    )
    cjoin.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes per shard fan-out (default: $REPRO_WORKERS or "
        "one per core, resolved once at join time)",
    )
    cjoin.add_argument(
        "--max-shards",
        type=int,
        default=None,
        metavar="N",
        help="leave after completing N shards (default: stay until the "
        "campaign completes)",
    )
    cjoin.add_argument(
        "--queue-backend",
        choices=("sqlite", "file"),
        default="sqlite",
        help="work-queue backend (path targets only; must match the "
        "other workers'; default: %(default)s)",
    )
    cjoin.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="lease TTL for path targets (URL targets use the "
        "coordinator's; default: %(default)s)",
    )
    cjoin.add_argument(
        "--quarantine-after",
        type=int,
        default=None,
        metavar="N",
        help="poison-shard quarantine threshold for path targets "
        "(URL targets use the coordinator's; default: 3)",
    )
    cjoin.add_argument(
        "--retry-budget",
        type=int,
        default=None,
        metavar="N",
        help="retries per coordinator call before the claim loop "
        "counts a failure (default: 8)",
    )
    cjoin.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="verdict cache directory for URL targets (path targets "
        "share the campaign's cache/)",
    )
    cjoin.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="telemetry JSONL path for this worker",
    )
    cjoin.add_argument("--no-telemetry", action="store_true")
    _add_fault_plan_flag(cjoin)

    explain = sub.add_parser(
        "explain", help="derive one matrix cell with its proof chain"
    )
    explain.add_argument("realized", help="the realized model, e.g. REA")
    explain.add_argument("realizer", help="the realizing model, e.g. R1O")

    solve = sub.add_parser("solve", help="enumerate stable solutions")
    solve.add_argument("--instance", default="disagree", choices=sorted(ALL_NAMED_INSTANCES))

    wheel = sub.add_parser("wheel", help="find a dispute wheel")
    wheel.add_argument("--instance", default="disagree", choices=sorted(ALL_NAMED_INSTANCES))

    sat = sub.add_parser(
        "sat", help="encode a CNF formula as an SPP instance (GSW reduction)"
    )
    sat.add_argument(
        "formula",
        help='compact CNF: clauses split by ";", literals by "," — e.g. "1,-2;2,3;-1,-3"',
    )

    artifacts = sub.add_parser(
        "artifacts", help="regenerate every paper artifact into a directory"
    )
    artifacts.add_argument("--out", default="artifacts")
    artifacts.add_argument("--full", action="store_true")

    doctor = sub.add_parser(
        "doctor",
        help="verify (and repair) a cache root or campaign directory",
    )
    doctor.add_argument(
        "path", help="cache root (e.g. .repro-cache) or campaign directory"
    )
    doctor.add_argument(
        "--repair",
        action="store_true",
        help="quarantine bad artifacts, rewrite derivable ones, and "
        "remove orphan tempfiles (nothing is ever deleted outright "
        "except tempfiles)",
    )
    doctor.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    return parser


def _cmd_list() -> int:
    print("Communication models (Sec. 2.2):")
    for m in ALL_MODELS:
        families = []
        if m.is_polling:
            families.append("polling")
        if m.is_message_passing:
            families.append("message-passing")
        if m.is_queueing:
            families.append("queueing")
        suffix = f"  ({', '.join(families)})" if families else ""
        print(f"  {m.name}{suffix}")
    print("\nCanonical instances:")
    for name, factory in sorted(ALL_NAMED_INSTANCES.items()):
        print(f"  {name}: {factory().describe().splitlines()[0]}")
    return 0


def _cmd_matrix(args) -> int:
    matrix = derive_matrix()
    config = _config_from_args(args, workers=args.workers)
    if args.figure in ("3", "both"):
        print("Derived Figure 3 (rows: realized model; columns: reliable realizers)")
        print(reporting.render_figure3(matrix))
        print()
        print(experiments.experiment_figure3(config=config).summary)
        print()
    if args.figure in ("4", "both"):
        print("Derived Figure 4 (rows: realized model; columns: unreliable realizers)")
        print(reporting.render_figure4(matrix))
        print()
        print(experiments.experiment_figure4(config=config).summary)
    return 0


def _cmd_simulate(args) -> int:
    instance = ALL_NAMED_INSTANCES[args.instance]()
    result = simulate(
        instance, model(args.model), seed=args.seed, max_steps=args.max_steps
    )
    print(f"instance: {instance.name}   model: {args.model}   seed: {args.seed}")
    print(f"converged: {result.converged} after {result.steps} steps")
    from .core.paths import format_path

    for node in sorted(result.final_assignment, key=repr):
        print(f"  {node}: {format_path(result.final_assignment[node])}")
    return 0


def _cmd_explore(args) -> int:
    instance = ALL_NAMED_INSTANCES[args.instance]()
    result = can_oscillate(
        instance,
        model(args.model),
        config=_config_from_args(args).replace(
            queue_bound=args.queue_bound, step_bound=args.max_states
        ),
    )
    print(f"instance: {instance.name}   model: {args.model}")
    print(
        f"oscillates: {result.oscillates}   complete search: {result.complete}"
        f"   states: {result.states_explored}"
        f"   pruned: {result.states_pruned}"
    )
    if result.witness:
        print(
            f"witness: prefix of {len(result.witness.prefix)} steps, "
            f"cycle of period {result.witness.period()}"
        )
    return 0


def _cmd_trace_show(args) -> int:
    """``repro trace show <id> --telemetry FILE...`` / ``trace list``."""
    from .obs import tracing

    if not args.telemetry:
        print(
            "error: trace show/list needs --telemetry FILE [FILE ...]",
            file=sys.stderr,
        )
        return 2
    records: list = []
    try:
        for path in args.telemetry:
            records.extend(obs.read_records(path))
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.action == "list":
        traces = tracing.list_traces(records)
        if not traces:
            print("(no trace spans recorded)")
            return 0
        for trace_id, count in sorted(traces.items()):
            print(f"{trace_id}  {count} span(s)")
        return 0
    if not args.trace_id:
        print("error: trace show needs a trace ID (or prefix)", file=sys.stderr)
        return 2
    try:
        spans = tracing.collect_trace(records, args.trace_id)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not spans:
        print(f"(no spans for trace {args.trace_id!r})")
        return 1
    if args.json:
        print(tracing.dump_trace_json(spans))
    else:
        print(tracing.render_trace_tree(spans))
    return 0


def _cmd_trace(example: str) -> int:
    from .core import instances as canonical

    scripted = {
        "fig6": (canonical.fig6_gadget, experiments.FIG6_REO_SCHEDULE, "one-each"),
        "fig7": (canonical.fig7_gadget, experiments.FIG7_REO_SCHEDULE, "one-each"),
        "fig8": (canonical.fig8_gadget, experiments.FIG8_REA_SCHEDULE, "poll"),
        "fig9": (canonical.fig9_gadget, experiments.FIG9_REA_SCHEDULE, "poll"),
    }
    factory, schedule, kind = scripted[example]
    instance = factory()
    print(instance.describe())
    print()
    execution = Execution(instance)
    execution.run_nodes(schedule, kind=kind)
    print(format_trace_table(execution.trace))
    return 0


def _cmd_experiments(args) -> int:
    full = args.full
    workers = args.workers
    config = _config_from_args(args, workers=workers)
    if args.json:
        print(json.dumps(experiments.suite_as_dict(full=full, config=config), indent=2))
        return 0
    print("— E1/E2: Figures 3 and 4 —")
    print(experiments.experiment_figure3(config=config).summary)
    print(experiments.experiment_figure4(config=config).summary)
    print("\n— E3: DISAGREE (Ex. A.1) —")
    print(experiments.experiment_disagree(config=config).summary)
    print("\n— E4: Fig. 6 separation (Ex. A.2) —")
    polling = ("R1A", "RMA", "REA") if full else ("REA",)
    print(
        experiments.experiment_fig6(
            polling_models=polling, config=config
        ).summary
    )
    print("\n— E5/E6/E7: Figs. 7–9 (Ex. A.3–A.5) —")
    print(experiments.experiment_fig7().summary)
    print(experiments.experiment_fig8().summary)
    print(experiments.experiment_fig9().summary)
    print("\n— E8: multi-node activation (Ex. A.6) —")
    print(experiments.experiment_multinode().summary)
    from .engine.multinode import can_oscillate_multinode

    lockstep = can_oscillate_multinode(
        ALL_NAMED_INSTANCES["disagree"](), model("R1A"), queue_bound=2
    )
    staggered = can_oscillate_multinode(
        ALL_NAMED_INSTANCES["disagree"](),
        model("R1A"),
        queue_bound=2,
        require_solo_activations=True,
    )
    print(
        f"exhaustive: lockstep R1A oscillates={lockstep.oscillates}, "
        f"with solo-activation fairness={staggered.oscillates}"
    )
    print("\n— E11: dispute wheels —")
    print(experiments.experiment_dispute_wheels().summary)
    print("\n— E13: message overhead —")
    print(experiments.experiment_message_overhead().summary)
    print("\n— E10: convergence-rate survey —")
    print(
        experiments.experiment_convergence_rates(
            config=RunConfig(workers=workers)
        ).format_table()
    )
    return 0


def _cmd_serve(args) -> int:
    from .serve import ReproServer, ServeConfig, VerdictService

    cache_dir = (
        args.cache_dir
        or os.environ.get("REPRO_CACHE_DIR")
        or DEFAULT_CACHE_DIR
    )
    try:
        config = ServeConfig(
            cache_dir=cache_dir,
            host=args.host,
            port=args.port,
            engine=args.engine,
            workers=args.workers,
            compute_procs=args.compute_procs,
            queue_cap=args.queue_cap,
            deadline_s=args.deadline,
            retry_after_s=args.retry_after,
            response_cache_entries=args.response_cache,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    service = VerdictService(config)
    try:
        server = ReproServer(service)
    except OSError as error:
        service.close()
        print(f"error: cannot bind {args.host}:{args.port}: {error}", file=sys.stderr)
        return 1
    print(f"repro serve: listening on {server.url}", flush=True)
    print(
        f"repro serve: cache {cache_dir}  engine {args.engine}  "
        f"workers {args.workers}  queue-cap {args.queue_cap}",
        flush=True,
    )
    server.serve_forever()
    print("repro serve: drained", flush=True)
    return 0


def _cmd_query(args) -> int:
    import time as _time

    from .core.serialization import instance_from_json
    from .serve.client import ServeClient, ServerError, ServerShedding

    if args.instance_file:
        with open(args.instance_file) as handle:
            instance = instance_from_json(handle.read())
    else:
        instance = ALL_NAMED_INSTANCES[args.instance]()
    try:
        with ServeClient(args.url, timeout=args.timeout) as client:
            attempt = 0
            while True:
                try:
                    response = client.query(
                        instance,
                        args.models,
                        queue_bound=args.queue_bound,
                        max_states=args.max_states,
                        engine=args.engine,
                        reduction=args.reduction,
                    )
                    break
                except ServerShedding as shed:
                    if attempt >= args.retries:
                        print(f"error: {shed}", file=sys.stderr)
                        return 3
                    attempt += 1
                    _time.sleep(shed.retry_after or 1.0)
    except ServerError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {args.url}: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(response.data, indent=2, sort_keys=True))
        return 0
    results = response.results(instance)
    print(
        f"instance: {instance.name}   canonical: "
        f"{response.canonical_hash[:12]}…   hot replay: {response.hot}"
    )
    if response.trace_id:
        print(f"trace: {response.trace_id}")
    for name in sorted(results):
        result = results[name]
        served = response.served.get(name, "?")
        print(
            f"  {name:<4} oscillates={str(result.oscillates):<5} "
            f"complete={str(result.complete):<5} "
            f"states={result.states_explored:<8} served={served}"
        )
    return 0


def _cmd_cache(args) -> int:
    cache = VerdictCache(
        args.cache_dir
        or os.environ.get("REPRO_CACHE_DIR")
        or DEFAULT_CACHE_DIR
    )
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache root: {stats['root']}")
        print(f"entries: {stats['entries']}   bytes: {stats['bytes']}")
        if getattr(args, "telemetry", None):
            aggregate = obs.aggregate_files([args.telemetry])
            counters = aggregate.counters
            print(
                "recorded: "
                f"hits: {counters.get('cache.hit', 0)}   "
                f"misses: {counters.get('cache.miss', 0)}   "
                f"writes: {counters.get('cache.write', 0)}   "
                f"evicted: {counters.get('cache.evicted', 0)}"
            )
        return 0
    removed = cache.clear()
    print(f"removed {removed} cached verdict(s) from {cache.root}")
    return 0


def _cmd_stats(args) -> int:
    aggregate = obs.aggregate_files(args.files)
    if args.json:
        print(json.dumps(aggregate.as_dict(), indent=2, sort_keys=True))
        return 0
    print(obs.render_phase_table(aggregate))
    if args.counters:
        print()
        print(obs.render_counters(aggregate))
    return 0


def _cmd_top(args) -> int:
    from .obs import dashboard

    url = args.url
    telemetry = tuple(args.telemetry or ())
    if url and telemetry:
        print(
            "error: --url and --telemetry are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if not url and not telemetry:
        url = "http://127.0.0.1:8351"
    iterations = 1 if args.once else args.iterations
    try:
        return dashboard.run_dashboard(
            url=url,
            telemetry_paths=telemetry,
            interval_s=args.interval,
            iterations=iterations,
        )
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_explain(realized_name: str, realizer_name: str) -> int:
    matrix = derive_matrix()
    lines = matrix.explain(model(realized_name), model(realizer_name))
    print("\n".join(lines))
    return 0


def _cmd_solve(instance_name: str) -> int:
    from .core.paths import format_path
    from .core.solutions import enumerate_stable_solutions, greedy_solve

    instance = ALL_NAMED_INSTANCES[instance_name]()
    solutions = list(enumerate_stable_solutions(instance))
    print(f"{instance.name}: {len(solutions)} stable solution(s)")
    for index, solution in enumerate(solutions, start=1):
        rendered = ", ".join(
            f"{node}={format_path(path)}"
            for node, path in sorted(solution.items(), key=lambda kv: repr(kv[0]))
        )
        print(f"  #{index}: {rendered}")
    greedy = greedy_solve(instance)
    print(f"greedy construction succeeds: {greedy is not None}")
    return 0


def _cmd_wheel(instance_name: str) -> int:
    from .core.dispute import find_dispute_wheel

    instance = ALL_NAMED_INSTANCES[instance_name]()
    wheel = find_dispute_wheel(instance)
    if wheel is None:
        print(f"{instance.name}: no dispute wheel (convergence guaranteed)")
    else:
        print(f"{instance.name}: {wheel.describe()}")
    return 0


def _cmd_sat(text: str) -> int:
    from .core.sat import dpll, parse_formula
    from .core.satgadgets import formula_to_spp, solution_from_assignment
    from .core.paths import format_path
    from .core.solutions import is_solution

    formula = parse_formula(text)
    instance = formula_to_spp(formula)
    print(
        f"formula {formula} → instance {instance.name} "
        f"({len(instance.nodes)} nodes, {len(instance.edges)} edges)"
    )
    model_ = dpll(formula)
    if model_ is None:
        print("UNSATISFIABLE — the network has no stable routing and")
        print("oscillates under every communication model.")
        return 0
    print(f"satisfying assignment: {model_}")
    solution = solution_from_assignment(formula, model_)
    assert is_solution(instance, solution)
    print("corresponding stable routing:")
    for node, path in sorted(solution.items()):
        print(f"  {node}: {format_path(path)}")
    return 0


def _campaign_for_args(args) -> Campaign:
    """Create or open the campaign directory named by ``args``."""
    if args.campaign_command == "run":
        spec = CampaignSpec.from_file(args.spec)
        directory = args.dir or os.path.join("campaigns", spec.name)
        return Campaign.create(directory, spec)
    return Campaign.open(args.dir)


def _campaign_execute(campaign: Campaign, args) -> int:
    """Run pending shards under the campaign's own telemetry stream."""
    path = None
    if not args.no_telemetry:
        path = args.telemetry or str(campaign.paths.telemetry_path)
    telemetry = obs.configure(
        path,
        run={"command": "campaign", "campaign": campaign.spec.name},
    )
    if args.progress:
        telemetry.add_listener(obs.ProgressReporter())
    try:
        executed = campaign.run(workers=args.workers, max_shards=args.max_shards)
    finally:
        obs.shutdown()
    status = campaign.status()
    print(
        f"campaign {status['name']}: ran {len(executed)} shard(s), "
        f"{status['shards_completed']}/{status['shards_total']} complete"
    )
    if status["shards_pending"]:
        print(
            f"{status['shards_pending']} shard(s) pending — resume with: "
            f"repro campaign resume {campaign.paths.directory}"
        )
        return 0
    print(f"report written to {campaign.paths.report_path}")
    print()
    print(render_report(campaign.report()))
    return 0


def _cmd_campaign_serve(args) -> int:
    """``repro campaign serve <dir>`` — the coordinator daemon."""
    from .campaign.coordinator import CampaignCoordinator

    campaign = Campaign.open(args.dir)
    path = None
    if not args.no_telemetry:
        path = args.telemetry or str(campaign.paths.telemetry_path)
    obs.configure(
        path,
        run={"command": "campaign-serve", "campaign": campaign.spec.name},
    )
    try:
        try:
            coordinator = CampaignCoordinator(
                campaign,
                host=args.host,
                port=args.port,
                backend=args.queue_backend,
                lease_ttl=args.lease_ttl,
                quarantine_after=args.quarantine_after,
            )
        except OSError as error:
            print(
                f"error: cannot bind {args.host}:{args.port}: {error}",
                file=sys.stderr,
            )
            return 1
        status = campaign.status()
        print(
            f"repro campaign serve: {campaign.spec.name} on "
            f"{coordinator.url}  ({status['shards_pending']} of "
            f"{status['shards_total']} shard(s) pending, "
            f"queue {args.queue_backend}, lease TTL {args.lease_ttl:g}s)",
            flush=True,
        )
        print(f"repro campaign serve: trace {coordinator.trace.trace_id}", flush=True)
        coordinator.serve_forever(until_complete=args.until_complete)
        if coordinator.complete:
            print(
                f"repro campaign serve: campaign complete, report at "
                f"{campaign.paths.report_path}"
            )
    finally:
        obs.shutdown()
    return 0


def _cmd_campaign_join(args) -> int:
    """``repro campaign join <dir-or-url>`` — one worker loop."""
    from .campaign.queue import default_worker_id
    from .campaign.worker import JoinError, join

    worker = default_worker_id()
    path = None
    if not args.no_telemetry:
        path = args.telemetry
        if path is None and not args.target.startswith(("http://", "https://")):
            # Path joiners share the campaign's stream (append-only
            # JSONL; repro stats/trace merge records by host+pid).
            path = os.path.join(args.target, "telemetry.jsonl")
    obs.configure(path, run={"command": "campaign-join", "worker": worker})
    try:
        summary = join(
            args.target,
            workers=args.workers,
            backend=args.queue_backend,
            lease_ttl=args.lease_ttl,
            max_shards=args.max_shards,
            cache_dir=args.cache_dir,
            worker_id=worker,
            retry_budget=args.retry_budget,
            quarantine_after=args.quarantine_after,
        )
    except JoinError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        obs.shutdown()
    print(
        f"repro campaign join: worker {summary['worker']} ran "
        f"{len(summary['shards'])} shard(s)"
        + (f", lost {summary['lost_leases']} lease(s)" if summary["lost_leases"] else "")
        + (
            f", {summary['failed_shards']} shard(s) failed"
            if summary.get("failed_shards")
            else ""
        )
        + ("; campaign complete" if summary["complete"] else "")
    )
    return 0


def _cmd_campaign(args) -> int:
    if args.campaign_command in ("serve", "join"):
        handler = (
            _cmd_campaign_serve
            if args.campaign_command == "serve"
            else _cmd_campaign_join
        )
        try:
            return handler(args)
        except (CampaignError, QueueError, FileNotFoundError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    try:
        campaign = _campaign_for_args(args)
        if args.campaign_command in ("run", "resume"):
            return _campaign_execute(campaign, args)
        if args.campaign_command == "status":
            status = campaign.status()
            if args.json:
                print(json.dumps(status, indent=2, sort_keys=True))
                return 0
            for key in (
                "name",
                "mode",
                "directory",
                "shards_completed",
                "shards_pending",
                "checkpoints_discarded",
                "tasks_completed",
                "tasks_total",
                "report_written",
            ):
                print(f"{key}: {status[key]}")
            if status.get("report_written") and status.get("mode") == "simulate":
                report = campaign.report()
                print("steps per model (p50/p95/p99):")
                for name, row in sorted(report["per_model"].items()):
                    p50 = row.get("p50_steps", row["p95_steps"])
                    p99 = row.get("p99_steps", row["p95_steps"])
                    print(
                        f"  {name:<5} {p50:3.0f} / "
                        f"{row['p95_steps']:3.0f} / {p99:3.0f}"
                    )
            return 0
        # A written partial report (quarantined shards) is authoritative:
        # recomputing would refuse on the pending-but-quarantined shards.
        from .campaign.manifest import read_json

        report = read_json(campaign.paths.report_path)
        if report is None or not report.get("partial"):
            report = campaign.report()
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_report(report))
        return 0
    except (CampaignError, FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_doctor(args) -> int:
    from .doctor import DoctorError, diagnose

    try:
        report = diagnose(args.path, repair=args.repair)
    except DoctorError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok() else 1


#: Commands that report into the telemetry sink while they run.
_TELEMETRY_COMMANDS = frozenset(
    {"matrix", "explore", "experiments", "serve", "query"}
)


def _setup_telemetry(args) -> bool:
    """Activate telemetry/progress for a search command, if requested."""
    if args.command not in _TELEMETRY_COMMANDS:
        return False
    path = _resolve_telemetry(args)
    progress = getattr(args, "progress", False)
    if path is None and not progress:
        if args.command == "serve":
            # The daemon always keeps in-memory telemetry so that
            # ``GET /metrics`` has live histograms even when nobody
            # asked for a JSONL sink.
            obs.configure(None, run={"command": "serve"})
            return True
        return False
    telemetry = obs.configure(path, run={"command": args.command})
    if progress:
        telemetry.add_listener(obs.ProgressReporter())
    return True


def _setup_faults(args) -> None:
    """Arm ``--fault-plan`` (or the environment's plan) process-wide.

    The plan path is also exported so spawned worker subprocesses —
    which call :func:`repro.faults.ensure_armed_from_env` on entry —
    replay the same plan.
    """
    plan_path = getattr(args, "fault_plan", None)
    if plan_path:
        faults.arm(faults.FaultPlan.from_file(plan_path))
        os.environ[faults.FAULT_PLAN_ENV_VAR] = os.path.abspath(plan_path)
    else:
        faults.ensure_armed_from_env()


def main(argv: "list | None" = None) -> int:
    args = build_parser().parse_args(argv)
    _setup_faults(args)
    if _setup_telemetry(args):
        try:
            return _dispatch(args)
        finally:
            obs.shutdown()
    return _dispatch(args)


def _dispatch(args) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "matrix":
        return _cmd_matrix(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "explore":
        return _cmd_explore(args)
    if args.command == "trace":
        if args.action:
            return _cmd_trace_show(args)
        return _cmd_trace(args.example)
    if args.command == "experiments":
        return _cmd_experiments(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "explain":
        return _cmd_explain(args.realized, args.realizer)
    if args.command == "solve":
        return _cmd_solve(args.instance)
    if args.command == "wheel":
        return _cmd_wheel(args.instance)
    if args.command == "sat":
        return _cmd_sat(args.formula)
    if args.command == "doctor":
        return _cmd_doctor(args)
    if args.command == "artifacts":
        from .analysis.artifacts import generate_artifacts

        written = generate_artifacts(args.out, full=args.full)
        for path in written:
            print(f"wrote {path}")
        return 0
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
