"""Crash-safe filesystem primitives shared by the cache and campaigns.

Every durable JSON artifact in the package — verdict-cache entries,
campaign specs/manifests/checkpoints/reports — goes through
:func:`atomic_write_text`: a tempfile in the destination directory
followed by ``os.replace``, so a crash at any instant leaves either the
previous file or the new one, never a torn write.  Two hardenings on
top of the bare rename:

* **ENOSPC retry.**  A full disk is usually transient (log rotation,
  a concurrent cleanup); writes retry with bounded exponential backoff
  before giving up, and the retries are visible as the
  ``storage.enospc_retry`` telemetry counter.
* **Orphan-temp sweep.**  A process killed between ``mkstemp`` and
  ``os.replace`` leaks a ``.<name>-XXXX.tmp`` file.  Stores sweep
  their directories on open (:func:`sweep_orphan_temps`, age-gated so
  a *live* writer's tempfile is never stolen), and ``repro doctor``
  reports/removes them regardless of age.

Writes carry an optional fault-injection site (:mod:`repro.faults`), so
the chaos suite can exercise exactly these guarantees.
"""

from __future__ import annotations

import errno
import os
import tempfile
import time
from pathlib import Path

from .faults import fault_point
from .obs import active as _telemetry

__all__ = [
    "ENOSPC_BACKOFF_S",
    "ENOSPC_RETRIES",
    "ORPHAN_TMP_TTL_S",
    "atomic_write_text",
    "find_orphan_temps",
    "is_orphan_temp",
    "sweep_orphan_temps",
]

#: Extra attempts after the first ENOSPC failure.
ENOSPC_RETRIES = 4

#: Base of the exponential ENOSPC backoff, in seconds.
ENOSPC_BACKOFF_S = 0.05

#: How stale a ``.*.tmp`` file must be before an on-open sweep removes
#: it.  Atomic writes live for milliseconds; five minutes of margin
#: means a sweeping reader can never race a live writer.
ORPHAN_TMP_TTL_S = 300.0


def atomic_write_text(
    path,
    text: str,
    *,
    fault_site: "str | None" = None,
    retries: int = ENOSPC_RETRIES,
    backoff: float = ENOSPC_BACKOFF_S,
) -> None:
    """Write ``text`` to ``path`` via tempfile + atomic rename.

    ``ENOSPC`` is retried ``retries`` times with exponential backoff
    (every retry recounted from the original ``text``, so a fault-
    mutated attempt never leaks into the next one); any other
    ``OSError`` — and a final ``ENOSPC`` — propagates to the caller.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    for attempt in range(retries + 1):
        try:
            blob = text if fault_site is None else fault_point(fault_site, text)
            _replace_with(path, blob)
            return
        except OSError as error:
            if error.errno != errno.ENOSPC or attempt == retries:
                raise
            _telemetry().count("storage.enospc_retry")
            time.sleep(min(backoff * (2**attempt), 2.0))


def _replace_with(path: Path, blob: str) -> None:
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def is_orphan_temp(name: str) -> bool:
    """Whether a file name matches the atomic-write tempfile pattern."""
    return name.startswith(".") and name.endswith(".tmp")


def find_orphan_temps(root) -> list:
    """Every atomic-write tempfile under ``root``, regardless of age."""
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(p for p in root.rglob(".*.tmp") if p.is_file())


def sweep_orphan_temps(root, max_age_s: float = ORPHAN_TMP_TTL_S) -> int:
    """Delete stale atomic-write tempfiles under ``root``.

    Only files older than ``max_age_s`` go (a concurrent writer's live
    tempfile survives); returns the number removed and counts them as
    ``storage.orphan_swept``.
    """
    now = time.time()
    removed = 0
    for path in find_orphan_temps(root):
        try:
            if now - path.stat().st_mtime >= max_age_s:
                path.unlink()
                removed += 1
        except OSError:
            pass  # raced with another sweeper, or the file went away
    if removed:
        _telemetry().count("storage.orphan_swept", removed)
    return removed
