"""``repro.config`` — the unified :class:`RunConfig` carried by entry points.

Before this module every search entry point (``can_oscillate``,
``run_explorations``, ``run_simulations``, the ``analysis.experiments``
drivers, the CLI) threaded the same five or six tuning knobs as ad-hoc
keyword arguments.  :class:`RunConfig` replaces that with one frozen,
picklable value object:

* ``engine`` — execution core (``"compiled"``, ``"packed"``, or
  ``"reference"``).
* ``reduction`` — partial-order reducer (``"ample"`` or ``"none"``).
* ``cache`` / ``cache_dir`` — the content-addressed verdict cache:
  ``cache`` accepts anything :func:`repro.engine.cache.as_cache` does
  (``None`` off, ``True`` default directory, a path, a
  ``VerdictCache``) and wins over ``cache_dir``, which names a
  directory; ``cache=False`` forces caching off.
* ``workers`` — fan-out width; ``None`` means one per core (see
  :func:`repro.engine.parallel.default_workers`, which also honours
  the ``REPRO_WORKERS`` environment override).
* ``queue_bound`` — channel budget of the bounded search.
* ``step_bound`` — the run's budget: ``max_states`` for explorations,
  ``max_steps`` for simulations; ``None`` uses each consumer's default.
* ``telemetry`` — JSONL event-stream path, consumed by *drivers* (the
  CLI and the campaign runner, which call :func:`repro.obs.configure`);
  library entry points never install a sink themselves.

The legacy keyword arguments keep working everywhere through
:func:`resolve_config`, which folds them into a config and emits a
:class:`DeprecationWarning` so callers migrate at their own pace.
This module sits at the bottom of the layering: it imports nothing
from the rest of the package, so every layer may depend on it.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

__all__ = [
    "DEFAULT_MAX_STATES",
    "DEFAULT_MAX_STEPS",
    "RunConfig",
    "resolve_config",
]

#: Exploration state budget when ``step_bound`` is left ``None``.
DEFAULT_MAX_STATES = 200_000

#: Simulation step budget when ``step_bound`` is left ``None``.
DEFAULT_MAX_STEPS = 600


@dataclass(frozen=True)
class RunConfig:
    """One immutable bundle of search/fan-out tuning knobs.

    Frozen and picklable, so a single config can be validated once and
    then shipped unchanged to worker processes, campaign shards, and
    checkpoint files.
    """

    engine: str = "compiled"
    reduction: str = "ample"
    cache: object = None
    cache_dir: "str | None" = None
    workers: "int | None" = None
    queue_bound: int = 3
    step_bound: "int | None" = None
    telemetry: "str | None" = None

    def __post_init__(self) -> None:
        if self.engine not in ("compiled", "reference", "packed"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.reduction not in ("ample", "none"):
            raise ValueError(f"unknown reduction {self.reduction!r}")
        if self.queue_bound < 1:
            raise ValueError("queue_bound must be at least 1")
        if self.step_bound is not None and self.step_bound < 1:
            raise ValueError("step_bound must be at least 1 (or None)")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be at least 1 (or None for auto)")

    # -- derived views --------------------------------------------------
    @property
    def max_states(self) -> int:
        """The exploration state budget this config implies."""
        return DEFAULT_MAX_STATES if self.step_bound is None else self.step_bound

    @property
    def max_steps(self) -> int:
        """The simulation step budget this config implies."""
        return DEFAULT_MAX_STEPS if self.step_bound is None else self.step_bound

    def resolved_cache(self):
        """The ``cache`` argument to hand the explorer (or ``None``).

        ``cache`` wins when set (``False`` forces caching off even if
        ``cache_dir`` names a directory); otherwise ``cache_dir``.
        """
        if self.cache is False:
            return None
        if self.cache is not None:
            return self.cache
        return self.cache_dir

    def resolved_workers(self) -> int:
        """The concrete fan-out width this config implies.

        ``workers`` when set; otherwise one snapshot of
        :func:`repro.engine.parallel.default_workers` (which honours
        ``$REPRO_WORKERS``).  Drivers that execute many fan-outs — the
        campaign runner, ``campaign join`` — call this *once* and pass
        the integer down, so an environment change mid-run never
        reshapes later shards.  (Imported lazily: this module stays at
        the bottom of the layering.)
        """
        if self.workers is not None:
            return self.workers
        from .engine.parallel import default_workers

        return default_workers()

    def replace(self, **changes) -> "RunConfig":
        """A copy with ``changes`` applied (fields re-validated)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        """The inverse of :meth:`as_dict` (wire/JSON form to config).

        Unknown keys are rejected rather than dropped so a typo in a
        request or spec fails loudly instead of silently running with
        defaults.  Field values are re-validated by the constructor.
        """
        if not isinstance(data, dict):
            raise ValueError(f"config must be a JSON object, got {type(data).__name__}")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown config field(s): {', '.join(unknown)}")
        return cls(**data)

    def as_dict(self) -> dict:
        """JSON-serializable form (campaign specs, telemetry metadata)."""
        cache = self.cache
        if cache is not None and not isinstance(cache, (bool, str)):
            cache = str(getattr(cache, "root", cache))
        return {
            "engine": self.engine,
            "reduction": self.reduction,
            "cache": cache,
            "cache_dir": self.cache_dir,
            "workers": self.workers,
            "queue_bound": self.queue_bound,
            "step_bound": self.step_bound,
            "telemetry": self.telemetry,
        }


#: Legacy keyword names that map onto a differently-named config field.
_LEGACY_FIELD = {"max_states": "step_bound", "max_steps": "step_bound"}


def resolve_config(
    config: "RunConfig | None",
    caller: str = "",
    **legacy,
) -> RunConfig:
    """Fold deprecated per-call keyword arguments into a :class:`RunConfig`.

    ``legacy`` holds the old-style keyword arguments of ``caller`` with
    ``None`` meaning "not passed".  Any that *were* passed emit one
    :class:`DeprecationWarning` (naming the offending keywords) and
    override the corresponding ``config`` field; with none passed the
    given ``config`` — or a default one — is returned unchanged.
    """
    passed = {
        name: value for name, value in legacy.items() if value is not None
    }
    base = RunConfig() if config is None else config
    if not passed:
        return base
    warnings.warn(
        f"{caller or 'this entry point'}: the keyword argument(s) "
        f"{', '.join(sorted(passed))} are deprecated; pass "
        "config=repro.RunConfig(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    fields = {_LEGACY_FIELD.get(name, name): value for name, value in passed.items()}
    return dataclasses.replace(base, **fields)
