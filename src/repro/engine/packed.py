"""Packed-word execution core: whole states as single integers.

The compiled engine (:mod:`repro.engine.compiled`) already interns
routes, nodes, and channels into dense ids, but a state is still a
4-tuple of tuples and every successor allocates fresh tuples.  This
module is the third engine tier: one canonical state is a **single
Python integer** laid out in fixed-width bit fields derived from the
:class:`~repro.engine.compiled.InstanceCodec` —

    ``[ π digits | announced digits | ρ digits | per-channel queues ]``

where each route digit is ``rb = bit_length(n_routes - 1)`` bits and a
channel queue is a ``(length, slot₀, slot₁, …)`` field of
``lb + slots·rb`` bits (front of the FIFO in slot 0, unused slots
zero).  Three consequences drive the speed:

* **Successor generation is integer addition.**  For a given channel
  the effect of one ``(f, g)`` read combo depends only on the queue
  field and ρ digit, so it is memoized as a single *delta* — the
  packed difference of the post-read word minus the pre-read word.
  Applying an activation entry sums the per-channel deltas, adds a
  π/announcement correction, and adds precomputed append constants for
  the out-channels.  Canonicalization (destination in-channels cleared,
  reliable-A collapse, ext-class projection of
  :mod:`repro.engine.reduction`) is folded into the write constants,
  so every generated word is already canonical.
* **The frontier is flat arrays.**  States live in a list of ints
  keyed by an int→index dict; adjacency is a CSR triple of
  ``array('q')`` buffers, which the fairness passes (and the optional
  numpy path) can scan without touching per-state objects.
* **Search-time symmetry quotienting.**  The instance's automorphism
  group (:func:`repro.core.canonical.automorphisms`) is compiled into
  index permutations on packed words; every successor is replaced by
  the lexicographic minimum of its orbit before dedup, so symmetric
  interleavings merge *during* search and compound with the ample-set
  reduction.  Fair-cycle detection on the quotient graph is done on
  the **threaded** (permutation-annotated) product — a plain quotient
  SCC check is unsound for fairness (Emerson–Sistla): each quotient
  edge carries the group element relating the raw successor to its
  stored representative, and Tarjan runs over ``(state, thread)``
  pairs whose realizations are exactly the concrete reachable states.
  Witnesses are built by realizing a threaded cycle and conjugating it
  onto the prefix endpoint, so they replay against the original
  instance labels.

For instances with a trivial automorphism group (e.g. fig7) the search
explores *exactly* the compiled engine's graph in the compiled
engine's order — same states, same truncation counts, same checkpoint
early exits, same Tarjan-order witness selection — so verdicts, flags,
counts, and witnesses are bit-identical; the differential suite pins
this.  With a nontrivial group the quotient explores fewer states but
provably preserves the verdict, and ``complete`` follows the same
monotone contract the ample reduction already has versus the unreduced
search: the quotient may certify *more* (its mid-search checkpoints
never exit early, and covering the quotient covers the whole space),
never less.  Truncation-zeroness is group-equivariant and the quotient
is never larger than the concrete graph, so ``packed.complete >=
compiled.complete`` always holds.

An optional vectorized path (auto-detected numpy/scipy, disabled via
``REPRO_NO_NUMPY=1``) accelerates the SCC/fairness passes: scipy's
C implementation labels strongly connected components and numpy
gathers the per-edge fairness masks for large components.  Both paths
compute identical booleans and identical witnesses; the stdlib path is
always available.
"""

from __future__ import annotations

import itertools
import os
import time
from array import array

from ..core.canonical import automorphisms
from ..core.paths import EPSILON
from ..core.spp import SPPInstance
from ..models.dimensions import MessageCount, NeighborScope, Reliability
from ..models.taxonomy import CommunicationModel
from ..obs import active as _telemetry
from .activation import INFINITY
from .compiled import CompiledExplorer, apply_packed, codec_for

__all__ = ["PackedExplorer"]

_NO_DROPS = frozenset()


def _detect_vector_libs():
    """(numpy, scipy-csgraph helpers) or Nones, honoring REPRO_NO_NUMPY."""
    if os.environ.get("REPRO_NO_NUMPY"):
        return None, None
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is normally present
        return None, None
    try:
        from scipy.sparse import coo_matrix
        from scipy.sparse.csgraph import connected_components
    except ImportError:  # pragma: no cover - scipy optional
        return numpy, None
    return numpy, (coo_matrix, connected_components)


class _PackedOp:
    """One behaviourally distinct activation entry at a queue-length
    signature, with everything the hot loop and the fairness passes
    need precomputed: which per-channel combo index applies, how many
    messages it consumes, and its fairness bitmasks."""

    __slots__ = (
        "uid",
        "entry",
        "choices",
        "unread",
        "takes",
        "attempts_mask",
        "dropped_mask",
        "delivered_mask",
        "full_flag",
        "nid",
    )

    def __init__(self, uid, entry, choices, unread, takes, attempts_mask,
                 dropped_mask, delivered_mask, full_flag, nid):
        self.uid = uid
        self.entry = entry
        self.choices = choices
        self.unread = unread
        self.takes = takes
        self.attempts_mask = attempts_mask
        self.dropped_mask = dropped_mask
        self.delivered_mask = delivered_mask
        self.full_flag = full_flag
        self.nid = nid


class PackedExplorer:
    """Single-word port of :class:`repro.engine.compiled.CompiledExplorer`
    with search-time orbit quotienting.  Constructed by
    ``Explorer.explore()`` when the engine is ``"packed"``."""

    def __init__(
        self,
        instance: SPPInstance,
        model: CommunicationModel,
        queue_bound: int = 3,
        max_states: int = 200_000,
        reduction: str = "ample",
    ) -> None:
        # The compiled explorer supplies the codec, the canonicalizer,
        # the combo/kickoff enumerators, and validates the arguments.
        self._comp = CompiledExplorer(
            instance, model, queue_bound=queue_bound,
            max_states=max_states, reduction=reduction,
        )
        self.instance = instance
        self.model = model
        self.queue_bound = queue_bound
        self.max_states = max_states
        self.reduction = self._comp.reduction
        self.codec = codec = self._comp.codec

        n_nodes = len(codec.nodes)
        n_channels = len(codec.channels)
        n_routes = len(codec.routes)
        self._n_nodes = n_nodes
        self._n_channels = n_channels

        # ---- bit layout -------------------------------------------------
        rb = max(1, (n_routes - 1).bit_length())
        slots = queue_bound + 1  # one transient slot beyond the bound
        lb = slots.bit_length()
        cw = lb + slots * rb
        self._rb, self._lb, self._cw, self._slots = rb, lb, cw, slots
        self._rmask = (1 << rb) - 1
        self._lmask = (1 << lb) - 1
        self._fmask = (1 << cw) - 1
        self._pi_off = tuple(nid * rb for nid in range(n_nodes))
        self._ann_off = tuple((n_nodes + nid) * rb for nid in range(n_nodes))
        self._rho_off = tuple(
            (2 * n_nodes + cid) * rb for cid in range(n_channels)
        )
        q_base = (2 * n_nodes + n_channels) * rb
        self._q_off = tuple(q_base + cid * cw for cid in range(n_channels))
        self._pimask = (1 << (n_nodes * rb)) - 1
        self._ann_dest_off = self._ann_off[codec.dest_id]
        self._total_bound = queue_bound * max(1, n_channels)

        # ---- write-time canonicalization tables -------------------------
        # Stored queue/ρ digits are always ext-class representatives, so
        # projection never needs a post-hoc pass: wval[cid][r] is the
        # digit actually written when route r lands on channel cid.
        if self._comp._rep is not None:
            self._wval = self._comp._rep
        else:
            ident = tuple(range(n_routes))
            self._wval = tuple(ident for _ in range(n_channels))
        self._collapse = self._comp._collapse
        self._count_all = self._comp._count_all
        self._absorb = self._comp._absorb
        self._recv = tuple(
            codec.node_id[channel[1]] for channel in codec.channels
        )
        dest_in = set(codec.dest_in)
        self._dest_in_set = dest_in

        # Fused preference table: pe[cid][r] is the preference position
        # the channel's receiver assigns to the feasible extension of r.
        self._pe = tuple(
            tuple(
                codec.pref_index[self._recv[cid]][codec.ext[cid][r]]
                for r in range(n_routes)
            )
            for cid in range(n_channels)
        )
        self._no_choice = codec.no_choice
        # route_by_pref padded so position == no_choice yields ε.
        self._rbp = tuple(
            tuple(codec.route_by_pref[nid])
            + (0,) * (codec.no_choice + 1 - len(codec.route_by_pref[nid]))
            for nid in range(n_nodes)
        )
        self._pin_factor = tuple(
            (1 << self._pi_off[nid]) + (1 << self._ann_off[nid])
            for nid in range(n_nodes)
        )
        self._in_qmask = tuple(
            sum(self._fmask << self._q_off[cid] for cid in codec.in_ch[nid])
            for nid in range(n_nodes)
        )
        self._out_eff = tuple(
            tuple(cid for cid in codec.out_ch[nid] if cid not in dest_in)
            for nid in range(n_nodes)
        )
        # Append constants: adding ap[ocid][route][ln] to a word appends
        # the (projected) route to out-channel ocid currently ln deep.
        # cv[ocid][route] is the collapsed (length-1) replacement field.
        self._ap = tuple(
            tuple(
                tuple(
                    (1 + (self._wval[ocid][r] << (lb + ln * rb)))
                    << self._q_off[ocid]
                    for ln in range(slots)
                )
                for r in range(n_routes)
            )
            for ocid in range(n_channels)
        )
        self._cv = tuple(
            tuple(
                ((self._wval[ocid][r] << lb) | 1) << self._q_off[ocid]
                for r in range(n_routes)
            )
            for ocid in range(n_channels)
        )

        # Node-local masks: every bit a node's menu expansion reads —
        # its π digit, in-channel queue fields and ρ digits, and the
        # out-channel queue fields touched by an announcement.  Two
        # global states agreeing under the mask share the exact same
        # successor deltas, so expansions memoize on the masked word.
        node_masks = []
        for nid in range(n_nodes):
            mask = self._rmask << self._pi_off[nid]
            for cid in codec.in_ch[nid]:
                mask |= self._fmask << self._q_off[cid]
                mask |= self._rmask << self._rho_off[cid]
            for ocid in self._out_eff[nid]:
                mask |= self._fmask << self._q_off[ocid]
            node_masks.append(mask)
        self._node_mask = tuple(node_masks)
        # _entry_count reads only the destination's announced digit and
        # the queue lengths, so it memoizes on this narrower mask.
        ecmask = self._rmask << self._ann_dest_off
        for cid in range(n_channels):
            ecmask |= self._lmask << self._q_off[cid]
        self._ecmask = ecmask

        # ---- fairness masks ---------------------------------------------
        self._relevant_cids = tuple(
            cid for cid in range(n_channels) if cid not in dest_in
        )
        self._relevant_mask = sum(1 << cid for cid in self._relevant_cids)
        if model.scope is NeighborScope.EVERY:
            e_nodes = []
            for nid in range(n_nodes):
                mask = sum(
                    1 << cid
                    for cid in codec.in_ch[nid]
                    if cid not in dest_in
                )
                if mask:
                    e_nodes.append((nid, mask))
            self._e_nodes = tuple(e_nodes)
        else:
            self._e_nodes = ()

        # ---- registries and memos ---------------------------------------
        self._ops: list = []
        self._menus: dict = {}
        self._chfx: dict = {}
        self._entry_ops: dict = {}
        self._emask_memo: dict = {}
        self._node_memo = tuple({} for _ in range(n_nodes))
        self._ec_memo: dict = {}
        self._pruned = 0
        self._orbits_merged = 0
        self._init_tau = 0

        # ---- automorphism group -----------------------------------------
        self._setup_group()

        # ---- optional vectorized path -----------------------------------
        self._np, self._sp = _detect_vector_libs()

    # ------------------------------------------------------------------
    # Symmetry machinery
    # ------------------------------------------------------------------
    def _setup_group(self) -> None:
        codec = self.codec
        group = automorphisms(self.instance)
        self._gsize = len(group)
        self._omemo: dict = {}
        if len(group) == 1:
            self._nperms = self._chperms = self._rperms = self._strans = ()
            self._comp_tab = ((0,),)
            self._inv_tab = (0,)
            return
        n_routes = len(codec.routes)
        n_channels = len(codec.channels)
        nperms = []
        chperms = []
        rperms = []
        strans = []
        for sigma in group:
            nperm = tuple(codec.node_id[sigma[n]] for n in codec.nodes)
            chperm = tuple(
                codec.channel_id[(sigma[c[0]], sigma[c[1]])]
                for c in codec.channels
            )
            rperm = tuple(
                0 if r == EPSILON
                else codec.route_id[tuple(sigma[hop] for hop in r)]
                for r in codec.routes
            )
            # Stored digits are channel-local representatives, so the
            # image digit is re-projected for the image channel.
            st = tuple(
                tuple(
                    self._wval[chperm[cid]][rperm[r]]
                    for r in range(n_routes)
                )
                for cid in range(n_channels)
            )
            nperms.append(nperm)
            chperms.append(chperm)
            rperms.append(rperm)
            strans.append(st)
        self._nperms = tuple(nperms)
        self._chperms = tuple(chperms)
        self._rperms = tuple(rperms)
        self._strans = tuple(strans)
        key = {perm: g for g, perm in enumerate(nperms)}
        size = len(group)
        n_nodes = len(codec.nodes)
        comp_tab = []
        for a in range(size):
            row = []
            pa = nperms[a]
            for b in range(size):
                pb = nperms[b]
                row.append(key[tuple(pa[pb[i]] for i in range(n_nodes))])
            comp_tab.append(tuple(row))
        self._comp_tab = tuple(comp_tab)
        inv = [0] * size
        for g, perm in enumerate(nperms):
            ip = [0] * n_nodes
            for i, j in enumerate(perm):
                ip[j] = i
            inv[g] = key[tuple(ip)]
        self._inv_tab = tuple(inv)
        self._mask_img_memo: dict = {}

    def _image(self, word: int, g: int) -> int:
        """σ_g applied to a packed word (result is canonical again)."""
        rmask = self._rmask
        lmask = self._lmask
        fmask = self._fmask
        lb = self._lb
        rb = self._rb
        nperm = self._nperms[g]
        chperm = self._chperms[g]
        rperm = self._rperms[g]
        strans = self._strans[g]
        pi_off = self._pi_off
        ann_off = self._ann_off
        rho_off = self._rho_off
        q_off = self._q_off
        out = 0
        for nid in range(self._n_nodes):
            tgt = nperm[nid]
            out |= rperm[(word >> pi_off[nid]) & rmask] << pi_off[tgt]
            out |= rperm[(word >> ann_off[nid]) & rmask] << ann_off[tgt]
        for cid in range(self._n_channels):
            tgt = chperm[cid]
            st = strans[cid]
            out |= st[(word >> rho_off[cid]) & rmask] << rho_off[tgt]
            fld = (word >> q_off[cid]) & fmask
            ln = fld & lmask
            if ln:
                nf = ln
                vals = fld >> lb
                pos = lb
                for _ in range(ln):
                    nf |= st[vals & rmask] << pos
                    vals >>= rb
                    pos += rb
                out |= nf << q_off[tgt]
        return out

    def _orbit_min(self, raw: int) -> tuple:
        """(orbit representative, τ) with rep = σ_τ(raw); memoized."""
        best = raw
        tau = 0
        for g in range(1, self._gsize):
            img = self._image(raw, g)
            if img < best:
                best = img
                tau = g
        if best != raw:
            self._orbits_merged += 1
        pair = (best, tau)
        self._omemo[raw] = pair
        return pair

    def _mask_img(self, mask: int, g: int) -> int:
        """A channel bitmask pushed through σ_g's channel permutation."""
        if not mask or not g:
            return mask
        memo = self._mask_img_memo
        cached = memo.get((mask, g))
        if cached is not None:
            return cached
        chperm = self._chperms[g]
        out = 0
        m = mask
        while m:
            low = m & -m
            out |= 1 << chperm[low.bit_length() - 1]
            m ^= low
        memo[(mask, g)] = out
        return out

    def _realized_pi(self, word: int, g: int) -> tuple:
        """π digits of σ_g(word) as a route-id tuple in node-id order."""
        rmask = self._rmask
        pi_off = self._pi_off
        if not g:
            return tuple(
                (word >> pi_off[nid]) & rmask for nid in range(self._n_nodes)
            )
        nperm = self._nperms[g]
        rperm = self._rperms[g]
        out = [0] * self._n_nodes
        for nid in range(self._n_nodes):
            out[nperm[nid]] = rperm[(word >> pi_off[nid]) & rmask]
        return tuple(out)

    # ------------------------------------------------------------------
    # Word <-> compiled 4-tuple conversion
    # ------------------------------------------------------------------
    def _encode(self, packed: tuple) -> int:
        pi, rho, channels, announced = packed
        lb = self._lb
        rb = self._rb
        word = 0
        for nid, r in enumerate(pi):
            word |= r << self._pi_off[nid]
        for nid, r in enumerate(announced):
            word |= r << self._ann_off[nid]
        for cid, r in enumerate(rho):
            word |= r << self._rho_off[cid]
        for cid, queue in enumerate(channels):
            fld = len(queue)
            pos = lb
            for m in queue:
                fld |= m << pos
                pos += rb
            word |= fld << self._q_off[cid]
        return word

    def _decode(self, word: int) -> tuple:
        rmask = self._rmask
        lmask = self._lmask
        fmask = self._fmask
        lb = self._lb
        rb = self._rb
        pi = tuple(
            (word >> off) & rmask for off in self._pi_off
        )
        announced = tuple(
            (word >> off) & rmask for off in self._ann_off
        )
        rho = tuple(
            (word >> off) & rmask for off in self._rho_off
        )
        channels = []
        for off in self._q_off:
            fld = (word >> off) & fmask
            ln = fld & lmask
            vals = fld >> lb
            queue = []
            for _ in range(ln):
                queue.append(vals & rmask)
                vals >>= rb
            channels.append(tuple(queue))
        return (pi, rho, tuple(channels), announced)

    # ------------------------------------------------------------------
    # Per-channel read effects and per-signature menus
    # ------------------------------------------------------------------
    def _channel_effects(self, cid: int, qf: int, rho_val: int) -> tuple:
        """(delta, preference-position) per combo of _combos_for(len).

        The delta is the packed difference applying that read combo to
        this exact queue field and ρ digit; the position is the
        receiver's preference index of the post-read known route's
        extension (the step-2 candidate)."""
        lmask = self._lmask
        lb = self._lb
        rb = self._rb
        ln = qf & lmask
        queue = []
        vals = qf >> lb
        for _ in range(ln):
            queue.append(vals & self._rmask)
            vals >>= rb
        q_shift = self._q_off[cid]
        rho_shift = self._rho_off[cid]
        pe = self._pe[cid]
        effects = []
        for count, drops in self._comp._combos_for(ln):
            take = ln if count is INFINITY else min(count, ln)
            if not take:
                effects.append((0, pe[rho_val]))
                continue
            rest = queue[take:]
            new_qf = len(rest)
            pos = lb
            for m in rest:
                new_qf |= m << pos
                pos += rb
            if drops:
                surviving = 0
                for index in range(take, 0, -1):
                    if index not in drops:
                        surviving = index
                        break
                new_rho = queue[surviving - 1] if surviving else rho_val
            else:
                new_rho = queue[take - 1]
            delta = ((new_qf - qf) << q_shift) + (
                (new_rho - rho_val) << rho_shift
            )
            effects.append((delta, pe[new_rho]))
        effects = tuple(effects)
        self._chfx[(cid, qf, rho_val)] = effects
        return effects

    def _register_op(self, nid: int, combo: tuple, choices: tuple,
                     unread: tuple, pending: dict) -> _PackedOp:
        codec = self.codec
        takes = 0
        attempts = 0
        dropped_mask = 0
        delivered_mask = 0
        for cid, count, drops in combo:
            if count != 0:
                attempts |= 1 << cid
            pend = pending.get(cid, 0)
            take = pend if count is INFINITY else min(count, pend)
            takes += take
            if take:
                if drops:
                    if any(i in drops for i in range(1, take + 1)):
                        dropped_mask |= 1 << cid
                    if any(i not in drops for i in range(1, take + 1)):
                        delivered_mask |= 1 << cid
                else:
                    delivered_mask |= 1 << cid
        in_cids = set(codec.in_ch[nid])
        attempt_set = {cid for cid, count, _ in combo if count != 0}
        full_flag = bool(in_cids) and in_cids <= attempt_set
        node_ids = tuple(sorted({nid})) if not isinstance(nid, tuple) else nid
        op = _PackedOp(
            uid=len(self._ops),
            entry=(node_ids, combo),
            choices=choices,
            unread=unread,
            takes=takes,
            attempts_mask=attempts,
            dropped_mask=dropped_mask,
            delivered_mask=delivered_mask,
            full_flag=full_flag,
            nid=nid if not isinstance(nid, tuple) else nid[0],
        )
        self._ops.append(op)
        return op

    def _build_menu(self, nid: int, sig: tuple) -> tuple:
        """All behaviourally distinct ops of node ``nid`` at queue-length
        signature ``sig`` — exactly the compiled enumeration order."""
        codec = self.codec
        in_cids = codec.in_ch[nid]
        pending = dict(zip(in_cids, sig))
        pos = {cid: i for i, cid in enumerate(in_cids)}
        busy = tuple(cid for cid in in_cids if pending[cid])
        scope = self.model.scope
        if scope is NeighborScope.ONE:
            sets = tuple((cid,) for cid in busy)
        elif scope is NeighborScope.EVERY:
            sets = (in_cids,) if busy else ()
        else:
            subsets = []
            for size in range(1, len(busy) + 1):
                subsets.extend(itertools.combinations(busy, size))
            sets = tuple(subsets)
        ops = []
        for cids in sets:
            read_set = set(cids)
            unread = tuple(
                pos[cid] for cid in in_cids if cid not in read_set
            )
            per_channel = [
                [
                    (j, count, drops)
                    for j, (count, drops) in enumerate(
                        self._comp._combos_for(pending[cid])
                    )
                ]
                for cid in cids
            ]
            for choice in itertools.product(*per_channel):
                combo = tuple(
                    (cid, count, drops)
                    for cid, (j, count, drops) in zip(cids, choice)
                )
                choices = tuple(
                    (pos[cid], j) for cid, (j, _, _) in zip(cids, choice)
                )
                ops.append(
                    self._register_op(nid, combo, choices, unread, pending)
                )
        menu = tuple(ops)
        self._menus[(nid, sig)] = menu
        return menu

    def _entry_count(self, word: int) -> int:
        """Unreduced entry count at ``word`` (states_pruned accounting);
        the packed twin of CompiledExplorer._full_entry_count.  Depends
        only on the destination's announced digit and the queue
        lengths, so it memoizes on the word masked down to those bits.
        """
        key = word & self._ecmask
        cached = self._ec_memo.get(key)
        if cached is not None:
            return cached
        total = (
            1
            if ((word >> self._ann_dest_off) & self._rmask)
            != self.codec.dest_route_id
            else 0
        )
        lmask = self._lmask
        q_off = self._q_off
        menus = self._menus
        for nid in range(self._n_nodes):
            if not (word & self._in_qmask[nid]):
                continue
            sig = tuple(
                (word >> q_off[cid]) & lmask
                for cid in self.codec.in_ch[nid]
            )
            menu = menus.get((nid, sig))
            if menu is None:
                menu = self._build_menu(nid, sig)
            total += len(menu)
        self._ec_memo[key] = total
        return total

    def _node_entries(self, nid: int, key: int) -> tuple:
        """Cached menu expansion of node ``nid`` at its node-local state.

        ``key`` is ``word & node_mask[nid]``; every bit the expansion
        reads lives inside the mask, so the resulting
        ``(entries, n_locally_truncated)`` pair — where each entry is
        ``(op, word_delta, total_delta)`` in compiled enumeration order
        — is shared verbatim by every global state that agrees on the
        masked bits.  Only the message-total bound (which depends on the
        global total) is re-checked at the point of use.
        """
        fmask = self._fmask
        lmask = self._lmask
        q_off = self._q_off
        rho_off = self._rho_off
        pe = self._pe
        chfx_get = self._chfx.get
        cids = self.codec.in_ch[nid]
        sig = []
        fx = []
        spv = []
        for cid in cids:
            qf = (key >> q_off[cid]) & fmask
            rv = (key >> rho_off[cid]) & self._rmask
            sig.append(qf & lmask)
            eff = chfx_get((cid, qf, rv))
            if eff is None:
                eff = self._channel_effects(cid, qf, rv)
            fx.append(eff)
            spv.append(pe[cid][rv])
        sig = tuple(sig)
        menu = self._menus.get((nid, sig))
        if menu is None:
            menu = self._build_menu(nid, sig)
        pi_r = (key >> self._pi_off[nid]) & self._rmask
        rbp_n = self._rbp[nid]
        no_choice = self._no_choice
        collapse = self._collapse
        qb = self.queue_bound
        out_eff = self._out_eff[nid]
        ap = self._ap
        cv = self._cv
        pin = self._pin_factor[nid]
        entries = []
        nbad = 0
        for op in menu:
            delta = 0
            best = no_choice
            for ci, j in op.choices:
                d, pv = fx[ci][j]
                delta += d
                if pv < best:
                    best = pv
            for ci in op.unread:
                pv = spv[ci]
                if pv < best:
                    best = pv
            new_pi = rbp_n[best]
            takes = op.takes
            if new_pi == pi_r:
                entries.append((op, delta, -takes))
                continue
            delta += (new_pi - pi_r) * pin
            dtot = -takes
            bad = False
            if collapse:
                for ocid in out_eff:
                    fld = (key >> q_off[ocid]) & fmask
                    delta += cv[ocid][new_pi] - (fld << q_off[ocid])
                    dtot += 1 - (fld & lmask)
            else:
                for ocid in out_eff:
                    ln = (key >> q_off[ocid]) & lmask
                    if ln >= qb:
                        bad = True
                        break
                    delta += ap[ocid][new_pi][ln]
                    dtot += 1
            if bad:
                nbad += 1
                continue
            entries.append((op, delta, dtot))
        cached = (tuple(entries), nbad)
        self._node_memo[nid][key] = cached
        return cached

    # ------------------------------------------------------------------
    # Forced/rare successors
    # ------------------------------------------------------------------
    def _entry_op(self, entry: tuple, takes: int) -> _PackedOp:
        """Registry op for a kickoff/absorption entry (memoized)."""
        op = self._entry_ops.get(entry)
        if op is not None:
            return op
        node_ids, combo = entry
        nid = node_ids[0]
        pending = {cid: 0 for cid, _, _ in combo}
        op = self._register_op(nid, combo, (), (), pending)
        op.takes = takes
        # Absorption reads deliver their single message reliably.
        if takes:
            op.delivered_mask = op.attempts_mask
        self._entry_ops[entry] = op
        return op

    def _absorption_succ(self, word: int) -> "tuple | None":
        """(op, successor word) when the forced absorption step applies;
        mirrors CompiledExplorer._absorption on packed digits (stored
        digits are representatives, so the rep-table comparison is a
        plain digit equality)."""
        fmask = self._fmask
        lmask = self._lmask
        rmask = self._rmask
        lb = self._lb
        rb = self._rb
        q_off = self._q_off
        rho_off = self._rho_off
        count_all = self._count_all
        dest_id = self.codec.dest_id
        for cid in range(self._n_channels):
            fld = (word >> q_off[cid]) & fmask
            if not fld:
                continue
            ln = fld & lmask
            if count_all and ln != 1:
                continue
            if ((fld >> lb) & rmask) != ((word >> rho_off[cid]) & rmask):
                continue
            nid = self._recv[cid]
            if nid == dest_id:
                continue
            count = INFINITY if count_all else 1
            entry = ((nid,), ((cid, count, _NO_DROPS),))
            op = self._entry_op(entry, takes=1)
            new_fld = ((fld >> (lb + rb)) << lb) | (ln - 1)
            return op, word + ((new_fld - fld) << q_off[cid])
        return None

    def _kickoff_succ(self, word: int) -> "tuple | None":
        """(op, successor word, total) for the destination kickoff, or
        ``None`` when the successor breaches the queue bounds.  Rare
        (only states where the destination has not yet announced), so
        it goes through the compiled slow path."""
        packed = self._decode(word)
        kick = self._comp._kickoff(packed)
        nxt = self._comp.canonicalize(
            apply_packed(self.codec, packed, kick[0], kick[1])
        )
        total = 0
        for queue in nxt[2]:
            length = len(queue)
            total += length
            if length > self.queue_bound:
                return None
        if total > self._total_bound:
            return None
        op = self._entry_op(kick, takes=0)
        return op, self._encode(nxt), total

    # ------------------------------------------------------------------
    # Search (packed twin of CompiledExplorer.explore)
    # ------------------------------------------------------------------
    def explore(self):
        from .explorer import ExplorationResult

        tel = _telemetry()
        search_start = time.perf_counter()
        self._pruned = 0
        self._orbits_merged = 0
        batches = 0

        comp = self._comp
        codec = self.codec
        init4 = comp.canonicalize(codec.initial_packed())
        word0 = self._encode(init4)
        if self._gsize > 1:
            word0, self._init_tau = self._orbit_min(word0)
        else:
            self._init_tau = 0

        states: list = [word0]
        totals = array("q", [sum(len(q) for q in init4[2])])
        index_of: dict = {word0: 0}
        parent_src = array("q", [-1])
        parent_op = array("q", [0])
        parent_tau = array("i", [0])
        adj_start = array("q", [-1])
        adj_end = array("q", [-1])
        edge_src = array("q")
        edge_op = array("q")
        edge_tgt = array("q")
        edge_tau = array("i")
        frontier = [0]
        truncated = 0
        overflow = False
        checkpoint = 1024

        # Local bindings for the hot loop.
        rmask = self._rmask
        in_qmask = self._in_qmask
        total_bound = self._total_bound
        max_states = self.max_states
        absorb = self._absorb
        n_nodes = self._n_nodes
        gsize = self._gsize
        dest_route_id = codec.dest_route_id
        ann_dest_off = self._ann_dest_off
        node_mask = self._node_mask
        node_memo = self._node_memo
        omemo_get = self._omemo.get
        index_get = index_of.get
        states_append = states.append
        totals_append = totals.append
        psrc_append = parent_src.append
        pop_append = parent_op.append
        ptau_append = parent_tau.append
        astart_append = adj_start.append
        aend_append = adj_end.append
        frontier_append = frontier.append
        esrc_append = edge_src.append
        eop_append = edge_op.append
        etgt_append = edge_tgt.append
        etau_append = edge_tau.append
        n_states = 1
        n_edges = 0
        graph = (states, totals, adj_start, adj_end, edge_src, edge_op,
                 edge_tgt, edge_tau, parent_src, parent_op, parent_tau)

        def result(witness, complete) -> "ExplorationResult":
            tel.timing("explore.search", time.perf_counter() - search_start)
            tel.count("explore.frontier_batches", batches)
            tel.count("explore.orbits_merged", self._orbits_merged)
            return ExplorationResult(
                model_name=self.model.name,
                instance_name=self.instance.name,
                oscillates=witness is not None,
                complete=complete,
                states_explored=len(states),
                truncated_states=truncated,
                states_pruned=self._pruned,
                witness=witness,
            )

        while frontier:
            cur = frontier.pop()
            batches += 1
            word = states[cur]
            tcur = totals[cur]
            a0 = n_edges

            # Rare per-state successors: the forced absorption step (at
            # most one, replacing the whole menu) and the destination
            # kickoff.  Both go through the shared emission loop below;
            # the per-node menu successors are emitted inline.
            forced = self._absorption_succ(word) if absorb else None
            if forced is not None:
                self._pruned += self._entry_count(word) - 1
                candidates = [(forced[0], forced[1], tcur - forced[0].takes)]
            else:
                candidates = ()
                if ((word >> ann_dest_off) & rmask) != dest_route_id:
                    kick = self._kickoff_succ(word)
                    if kick is None:
                        truncated += 1
                    else:
                        candidates = (kick,)
            for op, succ, t2 in candidates:
                if gsize > 1:
                    pair = omemo_get(succ)
                    if pair is None:
                        pair = self._orbit_min(succ)
                    succ, tau = pair
                else:
                    tau = 0
                idx = index_get(succ)
                if idx is None:
                    if n_states >= max_states:
                        overflow = True
                        truncated += 1
                        continue
                    idx = n_states
                    n_states += 1
                    index_of[succ] = idx
                    states_append(succ)
                    totals_append(t2)
                    psrc_append(cur)
                    pop_append(op.uid)
                    ptau_append(tau)
                    astart_append(-1)
                    aend_append(-1)
                    frontier_append(idx)
                esrc_append(cur)
                eop_append(op.uid)
                etgt_append(idx)
                n_edges += 1
                if gsize > 1:
                    etau_append(tau)

            if forced is None:
                for nid in range(n_nodes):
                    if not (word & in_qmask[nid]):
                        continue
                    ent = node_memo[nid].get(word & node_mask[nid])
                    if ent is None:
                        ent = self._node_entries(nid, word & node_mask[nid])
                    entries, nbad = ent
                    truncated += nbad
                    # Inline twin of the emission loop above — one
                    # function/tuple round-trip per successor matters
                    # here (this is the engine's innermost loop).
                    for op, delta, dtot in entries:
                        t2 = tcur + dtot
                        if t2 > total_bound:
                            truncated += 1
                            continue
                        succ = word + delta
                        if gsize > 1:
                            pair = omemo_get(succ)
                            if pair is None:
                                pair = self._orbit_min(succ)
                            succ, tau = pair
                        idx = index_get(succ)
                        if idx is None:
                            if n_states >= max_states:
                                overflow = True
                                truncated += 1
                                continue
                            idx = n_states
                            n_states += 1
                            index_of[succ] = idx
                            states_append(succ)
                            totals_append(t2)
                            psrc_append(cur)
                            pop_append(op.uid)
                            ptau_append(tau if gsize > 1 else 0)
                            astart_append(-1)
                            aend_append(-1)
                            frontier_append(idx)
                        esrc_append(cur)
                        eop_append(op.uid)
                        etgt_append(idx)
                        n_edges += 1
                        if gsize > 1:
                            etau_append(tau)
            adj_start[cur] = a0
            adj_end[cur] = n_edges

            if n_states >= checkpoint:
                checkpoint *= 4
                if tel.enabled:
                    tel.heartbeat(
                        "explore",
                        instance=self.instance.name,
                        model=self.model.name,
                        engine="packed",
                        states=len(states),
                        pruned=self._pruned,
                        truncated=truncated,
                        frontier=len(frontier),
                        elapsed_s=round(
                            time.perf_counter() - search_start, 6
                        ),
                    )
                # Mid-search early exit is only taken on the trivial-
                # group path, where the graph and visit order replicate
                # the compiled engine exactly — so the exit (and the
                # resulting ``complete=False``) fires at the same state
                # count.  Under a nontrivial group the quotient reaches
                # cycles at different prefixes than the concrete search,
                # so an early exit could flip ``complete`` relative to
                # compiled; the quotient is small enough to finish.
                if gsize == 1:
                    witness = self._find_fair_oscillation(graph)
                    if witness is not None:
                        return result(witness, complete=False)

        witness = self._find_fair_oscillation(graph)
        return result(witness, complete=(truncated == 0 and not overflow))

    # ------------------------------------------------------------------
    # SCC enumeration
    # ------------------------------------------------------------------
    def _sccs_csr(self, n, adj_start, adj_end, edge_tgt):
        """Iterative Tarjan over the CSR arrays (stdlib path)."""
        index = [-1] * n
        low = [0] * n
        onstk = bytearray(n)
        scc_stack: list = []
        comps: list = []
        counter = 0
        for root in range(n):
            if index[root] != -1:
                continue
            a = adj_start[root]
            vstack = [root]
            pstack = [a if a >= 0 else 0]
            estack = [adj_end[root] if a >= 0 else 0]
            index[root] = low[root] = counter
            counter += 1
            scc_stack.append(root)
            onstk[root] = 1
            while vstack:
                v = vstack[-1]
                p = pstack[-1]
                e = estack[-1]
                advanced = False
                lv = low[v]
                while p < e:
                    t = edge_tgt[p]
                    p += 1
                    ti = index[t]
                    if ti == -1:
                        pstack[-1] = p
                        index[t] = low[t] = counter
                        counter += 1
                        scc_stack.append(t)
                        onstk[t] = 1
                        a = adj_start[t]
                        vstack.append(t)
                        if a >= 0:
                            pstack.append(a)
                            estack.append(adj_end[t])
                        else:
                            pstack.append(0)
                            estack.append(0)
                        advanced = True
                        break
                    elif onstk[t] and ti < lv:
                        lv = ti
                low[v] = lv
                if advanced:
                    continue
                vstack.pop()
                pstack.pop()
                estack.pop()
                if vstack:
                    u = vstack[-1]
                    if lv < low[u]:
                        low[u] = lv
                if lv == index[v]:
                    comp = []
                    while True:
                        w = scc_stack.pop()
                        onstk[w] = 0
                        comp.append(w)
                        if w == v:
                            break
                    comps.append(comp)
        return comps

    def _candidate_components(self, graph) -> tuple:
        """``(components, tarjan_ordered)`` — components that could host
        a fair cycle, as index lists.

        Trivial group: only multi-member SCCs can satisfy the two-
        assignment gate.  Nontrivial group: a singleton quotient state
        with a self-loop can unroll to a real multi-state cycle, so
        those are kept too.  The scipy path labels components in C but
        loses Tarjan's emission order (``tarjan_ordered=False``); the
        stdlib path runs Tarjan and preserves it.  The trivial-group
        caller needs that order to pick the same component the compiled
        engine picks, and re-derives it when the fast path dropped it.
        """
        states, totals, adj_start, adj_end, edge_src, edge_op, edge_tgt, \
            edge_tau, parent_src, parent_op, parent_tau = graph
        n = len(states)
        n_edges = len(edge_tgt)
        if n_edges == 0:
            return [], True
        np = self._np
        if np is not None and self._sp is not None and n > 512:
            coo_matrix, connected_components = self._sp
            src = np.frombuffer(edge_src, dtype=np.int64)
            tgt = np.frombuffer(edge_tgt, dtype=np.int64)
            matrix = coo_matrix(
                (np.ones(n_edges, dtype=np.int8), (src, tgt)), shape=(n, n)
            )
            _, labels = connected_components(
                matrix, directed=True, connection="strong"
            )
            counts = np.bincount(labels)
            keep = counts >= 2
            if self._gsize > 1:
                loop_labels = labels[np.asarray(src[src == tgt])]
                keep[loop_labels] = True
            members = np.nonzero(keep[labels])[0]
            by_label: dict = {}
            label_arr = labels[members]
            for s, lab in zip(members.tolist(), label_arr.tolist()):
                by_label.setdefault(lab, []).append(s)
            return list(by_label.values()), False
        comps = self._sccs_csr(n, adj_start, adj_end, edge_tgt)
        if self._gsize == 1:
            return [c for c in comps if len(c) > 1], True
        out = []
        for comp in comps:
            if len(comp) > 1:
                out.append(comp)
                continue
            s = comp[0]
            a = adj_start[s]
            if a >= 0 and any(
                edge_tgt[k] == s for k in range(a, adj_end[s])
            ):
                out.append(comp)
        return out, True

    # ------------------------------------------------------------------
    # Fairness gates
    # ------------------------------------------------------------------
    def _empty_mask(self, s: int, states: list) -> int:
        mask = self._emask_memo.get(s)
        if mask is None:
            word = states[s]
            fmask = self._fmask
            q_off = self._q_off
            mask = 0
            for cid in self._relevant_cids:
                if not ((word >> q_off[cid]) & fmask):
                    mask |= 1 << cid
            self._emask_memo[s] = mask
        return mask

    def _collect_inner_masks(self, comp, members, graph):
        """(serviced, dropped, delivered, full_nodes) over inner edges."""
        states, totals, adj_start, adj_end, edge_src, edge_op, edge_tgt, \
            edge_tau, parent_src, parent_op, parent_tau = graph
        ops = self._ops
        serviced = dropped = delivered = full_nodes = 0
        np = self._np
        if np is not None and len(comp) >= 2048:
            memb = np.zeros(len(states), dtype=bool)
            memb[np.asarray(comp, dtype=np.int64)] = True
            src = np.frombuffer(edge_src, dtype=np.int64)
            tgt = np.frombuffer(edge_tgt, dtype=np.int64)
            sel = memb[src] & memb[tgt]
            uids = np.unique(np.frombuffer(edge_op, dtype=np.int64)[sel])
            for uid in uids.tolist():
                op = ops[uid]
                serviced |= op.attempts_mask
                dropped |= op.dropped_mask
                delivered |= op.delivered_mask
                if op.full_flag:
                    full_nodes |= 1 << op.nid
            return serviced, dropped, delivered, full_nodes
        for s in comp:
            a = adj_start[s]
            if a < 0:
                continue
            for k in range(a, adj_end[s]):
                if edge_tgt[k] in members:
                    op = ops[edge_op[k]]
                    serviced |= op.attempts_mask
                    dropped |= op.dropped_mask
                    delivered |= op.delivered_mask
                    if op.full_flag:
                        full_nodes |= 1 << op.nid
        return serviced, dropped, delivered, full_nodes

    def _plain_qualifies(self, comp, graph) -> bool:
        states = graph[0]
        pimask = self._pimask
        assignments = set()
        for s in comp:
            assignments.add(states[s] & pimask)
            if len(assignments) > 1:
                break
        if len(assignments) < 2:
            return False
        members = set(comp)
        serviced, dropped, delivered, full_nodes = (
            self._collect_inner_masks(comp, members, graph)
        )
        empty_union = 0
        for s in comp:
            empty_union |= self._empty_mask(s, states)
        if self._relevant_mask & ~(serviced | empty_union):
            return False
        for nid, nmask in self._e_nodes:
            if (full_nodes >> nid) & 1:
                continue
            if not any(
                self._empty_mask(s, states) & nmask == nmask for s in comp
            ):
                return False
        if self.model.reliability is Reliability.UNRELIABLE:
            if dropped & ~(delivered | empty_union):
                return False
        return True

    def _find_fair_oscillation(self, graph):
        comps, ordered = self._candidate_components(graph)
        if self._gsize == 1:
            # The compiled engine returns the *first* qualifying SCC in
            # Tarjan emission order; replicate that exactly so trivial-
            # group witnesses stay bit-identical.  The scipy screen has
            # no such order: use it only to dismiss the (common) no-
            # oscillation case for free, and re-run the stdlib Tarjan
            # for the ordered scan once a qualifying component exists.
            if not ordered:
                if not any(
                    self._plain_qualifies(comp, graph) for comp in comps
                ):
                    return None
                comps = [
                    comp
                    for comp in self._sccs_csr(
                        len(graph[0]), graph[2], graph[3], graph[6]
                    )
                    if len(comp) > 1
                ]
            for comp in comps:
                if self._plain_qualifies(comp, graph):
                    return self._build_witness_plain(comp, graph)
            return None
        comps.sort(key=min)
        for comp in comps:
            witness = self._check_threaded(comp, graph)
            if witness is not None:
                return witness
        return None

    # ------------------------------------------------------------------
    # Witness construction (trivial group)
    # ------------------------------------------------------------------
    def _bfs_path(self, start, goal, members, graph):
        """Entry/target steps start → goal inside ``members`` (CSR order)."""
        if start == goal:
            return []
        states, totals, adj_start, adj_end, edge_src, edge_op, edge_tgt, \
            edge_tau, parent_src, parent_op, parent_tau = graph
        queue = [start]
        back: dict = {start: None}
        while queue:
            current = queue.pop(0)
            a = adj_start[current]
            if a < 0:
                continue
            for k in range(a, adj_end[current]):
                target = edge_tgt[k]
                if target in members and target not in back:
                    back[target] = (current, edge_op[k])
                    if target == goal:
                        steps = []
                        cursor = goal
                        while back[cursor] is not None:
                            previous, uid = back[cursor]
                            steps.append((uid, cursor))
                            cursor = previous
                        steps.reverse()
                        return steps
                    queue.append(target)
        raise AssertionError("SCC members must be mutually reachable")

    def _prefix_uids(self, anchor, graph):
        """Parent-chain (uid, tau) pairs from the root down to anchor."""
        parent_src = graph[8]
        parent_op = graph[9]
        parent_tau = graph[10]
        chain = []
        cursor = anchor
        while parent_src[cursor] != -1:
            chain.append((parent_op[cursor], parent_tau[cursor]))
            cursor = parent_src[cursor]
        chain.reverse()
        return chain

    def _build_witness_plain(self, comp, graph):
        from .explorer import OscillationWitness

        codec = self.codec
        states = graph[0]
        pimask = self._pimask
        members = set(comp)
        anchor = min(comp)
        anchor_pi = states[anchor] & pimask
        # ``comp`` is in Tarjan stack-pop order; the compiled engine
        # picks the first differing-π member in that same order.
        other = next(s for s in comp if states[s] & pimask != anchor_pi)
        period = self._bfs_path(anchor, other, members, graph) + \
            self._bfs_path(other, anchor, members, graph)
        ops = self._ops
        cycle_entries = tuple(
            codec.entry_of(ops[uid].entry) for uid, _ in period
        )
        prefix_entries = tuple(
            codec.entry_of(ops[uid].entry)
            for uid, _ in self._prefix_uids(anchor, graph)
        )
        assignments = {
            codec.assignment_key(self._realized_pi(states[anchor], 0)),
            codec.assignment_key(self._realized_pi(states[other], 0)),
        }
        return OscillationWitness(
            prefix=prefix_entries,
            cycle=cycle_entries,
            assignments=tuple(sorted(assignments, key=repr)),
        )

    # ------------------------------------------------------------------
    # Threaded (permutation-annotated) fairness for nontrivial groups
    # ------------------------------------------------------------------
    def _threaded_adjacency(self, comp, members, graph):
        """Adjacency of the Ip–Dill product restricted to one quotient
        SCC: node (s, g) realizes σ_g(s); a quotient edge s →(op, τ) t
        lifts to (s, g) → (t, g·τ⁻¹) realized as σ_g(op)."""
        states, totals, adj_start, adj_end, edge_src, edge_op, edge_tgt, \
            edge_tau, parent_src, parent_op, parent_tau = graph
        comp_tab = self._comp_tab
        inv_tab = self._inv_tab
        gsize = self._gsize
        tadj: dict = {}
        for s in comp:
            a = adj_start[s]
            rows = []
            if a >= 0:
                for k in range(a, adj_end[s]):
                    t = edge_tgt[k]
                    if t in members:
                        rows.append((t, edge_op[k], edge_tau[k]))
            for g in range(gsize):
                row_g = comp_tab[g]
                tadj[(s, g)] = [
                    ((t, row_g[inv_tab[tau]]), uid)
                    for t, uid, tau in rows
                ]
        return tadj

    def _tarjan_dict(self, adjacency: dict):
        """Iterative Tarjan over a dict-of-lists graph; yields comps."""
        index_counter = itertools.count()
        indexes: dict = {}
        lowlink: dict = {}
        on_stack: set = set()
        stack: list = []
        for root in adjacency:
            if root in indexes:
                continue
            work = [(root, iter(adjacency.get(root, ())))]
            indexes[root] = lowlink[root] = next(index_counter)
            stack.append(root)
            on_stack.add(root)
            while work:
                vertex, iterator = work[-1]
                advanced = False
                for (target, _uid) in iterator:
                    if target not in indexes:
                        indexes[target] = lowlink[target] = next(
                            index_counter
                        )
                        stack.append(target)
                        on_stack.add(target)
                        work.append(
                            (target, iter(adjacency.get(target, ())))
                        )
                        advanced = True
                        break
                    if target in on_stack:
                        lowlink[vertex] = min(
                            lowlink[vertex], indexes[target]
                        )
                if advanced:
                    continue
                work.pop()
                if work:
                    parent_vertex = work[-1][0]
                    lowlink[parent_vertex] = min(
                        lowlink[parent_vertex], lowlink[vertex]
                    )
                if lowlink[vertex] == indexes[vertex]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == vertex:
                            break
                    yield component

    def _check_threaded(self, comp, graph):
        states = graph[0]
        members = set(comp)
        tadj = self._threaded_adjacency(comp, members, graph)
        for tcomp in self._tarjan_dict(tadj):
            tset = set(tcomp)
            inner = []
            for tnode in tcomp:
                for target, uid in tadj[tnode]:
                    if target in tset:
                        inner.append((tnode, target, uid))
            if not inner:
                continue
            assignments = set()
            for s, g in tcomp:
                assignments.add(self._realized_pi(states[s], g))
                if len(assignments) > 1:
                    break
            if len(assignments) < 2:
                continue
            if not self._threaded_fairness(tcomp, inner, states):
                continue
            return self._build_witness_threaded(tcomp, tset, tadj, graph)
        return None

    def _threaded_fairness(self, tcomp, inner, states) -> bool:
        """The compiled fairness predicate on the realized component."""
        ops = self._ops
        nperms = self._nperms
        mask_img = self._mask_img
        serviced = dropped = delivered = full_nodes = 0
        for (s, g), _target, uid in inner:
            op = ops[uid]
            serviced |= mask_img(op.attempts_mask, g)
            dropped |= mask_img(op.dropped_mask, g)
            delivered |= mask_img(op.delivered_mask, g)
            if op.full_flag:
                full_nodes |= 1 << nperms[g][op.nid]
        empties = [
            mask_img(self._empty_mask(s, states), g) for s, g in tcomp
        ]
        empty_union = 0
        for mask in empties:
            empty_union |= mask
        if self._relevant_mask & ~(serviced | empty_union):
            return False
        for nid, nmask in self._e_nodes:
            if (full_nodes >> nid) & 1:
                continue
            if not any(mask & nmask == nmask for mask in empties):
                return False
        if self.model.reliability is Reliability.UNRELIABLE:
            if dropped & ~(delivered | empty_union):
                return False
        return True

    def _entry_img(self, entry: tuple, g: int) -> tuple:
        """A packed entry relabeled through σ_g (drop indices are
        queue positions, which σ preserves)."""
        if not g:
            return entry
        node_ids, combo = entry
        nperm = self._nperms[g]
        chperm = self._chperms[g]
        return (
            tuple(sorted(nperm[nid] for nid in node_ids)),
            tuple(
                sorted(
                    ((chperm[cid], count, drops)
                     for cid, count, drops in combo),
                )
            ),
        )

    def _tbfs_path(self, start, goal, tset, tadj):
        if start == goal:
            return []
        queue = [start]
        back: dict = {start: None}
        while queue:
            current = queue.pop(0)
            for target, uid in tadj[current]:
                if target in tset and target not in back:
                    back[target] = (current, uid)
                    if target == goal:
                        steps = []
                        cursor = goal
                        while back[cursor] is not None:
                            previous, step_uid = back[cursor]
                            steps.append((previous, step_uid))
                            cursor = previous
                        steps.reverse()
                        return steps
                    queue.append(target)
        raise AssertionError("threaded SCC members must be reachable")

    def _build_witness_threaded(self, tcomp, tset, tadj, graph):
        from .explorer import OscillationWitness

        codec = self.codec
        states = graph[0]
        comp_tab = self._comp_tab
        inv_tab = self._inv_tab
        ops = self._ops

        anchor = min(tcomp)
        s_star, g_star = anchor
        anchor_key = self._realized_pi(states[s_star], g_star)
        other = min(
            t for t in tcomp
            if self._realized_pi(states[t[0]], t[1]) != anchor_key
        )
        period = self._tbfs_path(anchor, other, tset, tadj) + \
            self._tbfs_path(other, anchor, tset, tadj)

        # Thread the prefix from the root: state 0 realizes the true
        # initial state through the inverse of its recorded τ.
        g_cursor = inv_tab[self._init_tau]
        prefix_entries = []
        for uid, tau in self._prefix_uids(s_star, graph):
            prefix_entries.append(
                codec.entry_of(self._entry_img(ops[uid].entry, g_cursor))
            )
            g_cursor = comp_tab[g_cursor][inv_tab[tau]]
        g_prefix = g_cursor

        # Conjugate the threaded cycle by δ = σ_{g_prefix} ∘ σ_{g*}⁻¹ so
        # it closes at the prefix endpoint's realization σ_{g_prefix}(s*).
        base = comp_tab[g_prefix][inv_tab[g_star]]
        cycle_entries = tuple(
            codec.entry_of(
                self._entry_img(ops[uid].entry, comp_tab[base][g])
            )
            for ((s, g), uid) in period
        )
        other_s, other_g = other
        assignments = {
            codec.assignment_key(
                self._realized_pi(states[s_star], g_prefix)
            ),
            codec.assignment_key(
                self._realized_pi(states[other_s], comp_tab[base][other_g])
            ),
        }
        return OscillationWitness(
            prefix=tuple(prefix_entries),
            cycle=cycle_entries,
            assignments=tuple(sorted(assignments, key=repr)),
        )
