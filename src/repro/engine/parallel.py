"""Process-parallel fan-out for explorations and simulation sweeps.

The matrix experiments multiply one bounded model-checking run across
24 communication models (and the random-instance surveys multiply fair
simulations across instance × model × seed grids).  Each unit of work
is completely independent and deterministic — an exploration verdict
depends only on its ``(instance, model, bounds)`` triple, a simulation
only on its explicit seed — so the fan-out here is embarrassingly
parallel *and* reproducible:

* every task carries its own seed/bounds (no shared RNG, no ordering
  dependence between workers);
* results are merged **in task-submission order** (``Executor.map``),
  so downstream aggregation is independent of completion order;
* ``workers=1`` (or a single task) degrades to a plain in-process loop
  with no executor involved, which keeps the serial path exactly the
  code the parallel path runs per worker.

Tasks and results travel by pickle: :class:`~repro.core.spp.SPPInstance`,
:class:`~repro.engine.explorer.ExplorationResult`, and witnesses are
all plain picklable values.  Workers rebuild per-instance codec tables
lazily on first use (see :func:`repro.engine.compiled.codec_for`), so
shipping an instance costs one table build per process, not per task.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial

from ..core.spp import SPPInstance
from ..obs import active as _telemetry

__all__ = [
    "ExplorationTask",
    "SimulationTask",
    "default_workers",
    "parallel_map",
    "run_explorations",
    "run_simulations",
]


def default_workers() -> int:
    """Worker count when the caller does not choose: one per core."""
    return max(1, os.cpu_count() or 1)


def _timed_call(function, task) -> tuple:
    """Worker-side wrapper: run ``function(task)`` and report telemetry.

    Returns ``(result, (pid, started_wall, elapsed_seconds, deltas))``
    — the parent turns these into per-worker task counts, queue-wait,
    and idle-time telemetry, and merges ``deltas`` (the counter and
    span registry growth this call produced in the worker, present when
    the worker inherited an enabled telemetry across ``fork``) into its
    own registry so ``cache.*``/``explore.*`` totals survive the worker
    processes.  Module-level (and invoked through
    :func:`functools.partial` over a picklable ``function``) so it
    crosses the process boundary.
    """
    tel = _telemetry()
    before_counters = dict(tel.counters) if tel.enabled else {}
    before_timings = (
        {name: tuple(cell) for name, cell in tel.timings.items()}
        if tel.enabled
        else {}
    )
    started = time.time()
    t0 = time.perf_counter()
    result = function(task)
    elapsed = time.perf_counter() - t0
    deltas = None
    if tel.enabled:
        counters = {
            name: value - before_counters.get(name, 0)
            for name, value in tel.counters.items()
            if value != before_counters.get(name, 0)
        }
        timings = {}
        for name, (calls, total, peak) in tel.timings.items():
            calls_0, total_0, _ = before_timings.get(name, (0, 0.0, 0.0))
            if calls != calls_0:
                timings[name] = (calls - calls_0, total - total_0, peak)
        deltas = (counters, timings)
    return result, (os.getpid(), started, elapsed, deltas)


def parallel_map(function, tasks, workers: "int | None" = None) -> list:
    """Apply a picklable ``function`` to ``tasks`` across processes.

    Returns results in task order.  ``workers=None`` uses
    :func:`default_workers`; ``workers<=1`` (or fewer than two tasks)
    runs serially in-process.

    With telemetry enabled the fan-out additionally records, in the
    *parent* process, per-worker task counts plus ``worker.task`` /
    ``worker.queue_wait`` / ``worker.idle`` span timings — results are
    identical either way (workers report timing alongside their result;
    merging still follows task-submission order).
    """
    tasks = list(tasks)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(tasks) <= 1:
        return [function(task) for task in tasks]
    tel = _telemetry()
    pool_size = min(workers, len(tasks))
    if not tel.enabled:
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            return list(pool.map(function, tasks))
    return _instrumented_map(tel, function, tasks, pool_size)


def _instrumented_map(tel, function, tasks, pool_size: int) -> list:
    """The telemetry-recording twin of the executor branch."""
    timed = partial(_timed_call, function)
    pool_start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        submitted = []
        for task in tasks:
            submitted.append((pool.submit(timed, task), time.time()))
        results = []
        worker_index: dict = {}
        busy = 0.0
        for future, submit_wall in submitted:
            result, (pid, started_wall, elapsed, deltas) = future.result()
            results.append(result)
            index = worker_index.setdefault(pid, len(worker_index))
            tel.count(f"worker.w{index}.tasks")
            tel.timing("worker.task", elapsed)
            tel.timing(
                "worker.queue_wait", max(0.0, started_wall - submit_wall)
            )
            busy += elapsed
            if deltas is not None:
                counters, timings = deltas
                for name, value in counters.items():
                    tel.count(name, value)
                for name, (calls, total, peak) in timings.items():
                    cell = tel.timings.get(name)
                    if cell is None:
                        tel.timings[name] = [calls, total, peak]
                    else:
                        cell[0] += calls
                        cell[1] += total
                        if peak > cell[2]:
                            cell[2] = peak
    pool_elapsed = time.perf_counter() - pool_start
    tel.gauge("worker.count", len(worker_index))
    tel.timing("worker.pool", pool_elapsed)
    tel.timing("worker.idle", max(0.0, pool_elapsed * pool_size - busy))
    return results


# ----------------------------------------------------------------------
# Exploration fan-out
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExplorationTask:
    """One ``can_oscillate`` unit: an (instance, model) cell of a matrix."""

    instance: SPPInstance
    model_name: str
    key: tuple = ()
    queue_bound: int = 3
    max_states: int = 200_000
    reliable_twin_first: bool = True
    engine: str = "compiled"
    reduction: str = "ample"
    #: Directory of a shared :class:`repro.engine.cache.VerdictCache`
    #: (``None`` disables caching).  Safe across workers: entries are
    #: write-once and written via atomic renames, so racing processes
    #: only ever duplicate work, never corrupt the store.
    cache_dir: "str | None" = None

    def resolved_key(self) -> tuple:
        return self.key or (self.instance.name, self.model_name)


def _explore_one(task: ExplorationTask):
    from ..models.taxonomy import model
    from .explorer import can_oscillate

    return can_oscillate(
        task.instance,
        model(task.model_name),
        queue_bound=task.queue_bound,
        max_states=task.max_states,
        reliable_twin_first=task.reliable_twin_first,
        engine=task.engine,
        reduction=task.reduction,
        cache=task.cache_dir,
    )


def run_explorations(tasks, workers: "int | None" = None) -> list:
    """Run exploration tasks across workers; ordered ``(key, result)``s.

    Verdicts are identical for every worker count: each exploration is
    a deterministic function of its task, and merging follows task
    order.
    """
    tasks = list(tasks)
    results = parallel_map(_explore_one, tasks, workers=workers)
    return [
        (task.resolved_key(), result)
        for task, result in zip(tasks, results)
    ]


# ----------------------------------------------------------------------
# Simulation fan-out
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimulationTask:
    """A batch of seeded fair simulations of one (instance, model) pair."""

    instance: SPPInstance
    model_name: str
    seeds: tuple = (0,)
    max_steps: int = 600
    drop_prob: float = 0.2
    key: tuple = ()

    def resolved_key(self) -> tuple:
        return self.key or (self.instance.name, self.model_name)


def _simulate_batch(task: SimulationTask) -> tuple:
    from ..engine.convergence import simulate
    from ..engine.schedulers import RandomScheduler
    from ..models.taxonomy import model as model_by_name

    model = model_by_name(task.model_name)
    outcomes = []
    for seed in task.seeds:
        scheduler = RandomScheduler(
            task.instance, model, seed=seed, drop_prob=task.drop_prob
        )
        result = simulate(
            task.instance,
            model,
            scheduler=scheduler,
            max_steps=task.max_steps,
        )
        outcomes.append((result.converged, result.steps))
    return tuple(outcomes)


def run_simulations(tasks, workers: "int | None" = None) -> list:
    """Run simulation batches across workers; ordered ``(key, outcomes)``.

    Each outcome is a ``(converged, steps)`` tuple per seed, in seed
    order — deterministic because every batch owns its explicit seeds.
    """
    tasks = list(tasks)
    results = parallel_map(_simulate_batch, tasks, workers=workers)
    return [
        (task.resolved_key(), outcomes)
        for task, outcomes in zip(tasks, results)
    ]
