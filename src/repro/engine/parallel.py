"""Process-parallel fan-out for explorations and simulation sweeps.

The matrix experiments multiply one bounded model-checking run across
24 communication models (and the random-instance surveys multiply fair
simulations across instance × model × seed grids).  Each unit of work
is completely independent and deterministic — an exploration verdict
depends only on its ``(instance, model, bounds)`` triple, a simulation
only on its explicit seed — so the fan-out here is embarrassingly
parallel *and* reproducible:

* every task carries its own seed/bounds (no shared RNG, no ordering
  dependence between workers);
* results are merged **in task-submission order** (``Executor.map``),
  so downstream aggregation is independent of completion order;
* ``workers=1`` (or a single task) degrades to a plain in-process loop
  with no executor involved, which keeps the serial path exactly the
  code the parallel path runs per worker.

Tasks and results travel by pickle: :class:`~repro.core.spp.SPPInstance`,
:class:`~repro.engine.explorer.ExplorationResult`, and witnesses are
all plain picklable values.  Workers rebuild per-instance codec tables
lazily on first use (see :func:`repro.engine.compiled.codec_for`), so
shipping an instance costs one table build per process, not per task.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from functools import partial

from ..config import RunConfig, resolve_config
from ..core.spp import SPPInstance
from ..faults import ensure_armed_from_env, fault_point
from ..obs import active as _telemetry
from ..obs import tracing as _tracing

__all__ = [
    "ExplorationTask",
    "SimulationTask",
    "TaskFailure",
    "WORKERS_ENV_VAR",
    "default_workers",
    "parallel_map",
    "parallel_map_retrying",
    "run_explorations",
    "run_simulations",
]

#: Environment override for :func:`default_workers` — CI runners and
#: campaign shards pin their fan-out width with it instead of patching
#: every call site.
WORKERS_ENV_VAR = "REPRO_WORKERS"


def default_workers() -> int:
    """Worker count when the caller does not choose.

    ``$REPRO_WORKERS`` (when set to a positive integer) wins; otherwise
    one worker per core.
    """
    override = os.environ.get(WORKERS_ENV_VAR)
    if override:
        try:
            workers = int(override)
        except ValueError:
            raise ValueError(
                f"${WORKERS_ENV_VAR} must be an integer, got {override!r}"
            ) from None
        return max(1, workers)
    return max(1, os.cpu_count() or 1)


def _timed_call(function, task) -> tuple:
    """Worker-side wrapper: run ``function(task)`` and report telemetry.

    Returns ``(result, (pid, started_wall, elapsed_seconds, deltas))``
    — the parent turns these into per-worker task counts, queue-wait,
    and idle-time telemetry, and merges ``deltas`` (the counter and
    span registry growth this call produced in the worker, present when
    the worker inherited an enabled telemetry across ``fork``) into its
    own registry so ``cache.*``/``explore.*`` totals survive the worker
    processes.  Module-level (and invoked through
    :func:`functools.partial` over a picklable ``function``) so it
    crosses the process boundary.
    """
    tel = _telemetry()
    before_counters = dict(tel.counters) if tel.enabled else {}
    before_timings = (
        {name: tuple(cell) for name, cell in tel.timings.items()}
        if tel.enabled
        else {}
    )
    started = time.time()
    t0 = time.perf_counter()
    result = function(task)
    elapsed = time.perf_counter() - t0
    deltas = None
    if tel.enabled:
        counters = {
            name: value - before_counters.get(name, 0)
            for name, value in tel.counters.items()
            if value != before_counters.get(name, 0)
        }
        timings = {}
        for name, (calls, total, peak) in tel.timings.items():
            calls_0, total_0, _ = before_timings.get(name, (0, 0.0, 0.0))
            if calls != calls_0:
                timings[name] = (calls - calls_0, total - total_0, peak)
        deltas = (counters, timings)
    return result, (os.getpid(), started, elapsed, deltas)


from contextlib import contextmanager


@contextmanager
def _exported_trace_environment():
    """Export the current trace context to ``$REPRO_TRACEPARENT`` while
    a pool is being populated, so *spawn*-mode workers (which inherit
    no memory, only the environment) can still parent their
    ``worker.run`` spans.  Fork-mode workers inherit the thread-local
    directly and tasks from the serving tier carry their own
    traceparent; this is the fallback for everything else.  Restores
    the previous value on exit.
    """
    context = _tracing.current()
    if context is None:
        yield
        return
    variable = _tracing.TRACEPARENT_ENV_VAR
    previous = os.environ.get(variable)
    os.environ[variable] = context.to_traceparent()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(variable, None)
        else:
            os.environ[variable] = previous


def parallel_map(function, tasks, workers: "int | None" = None) -> list:
    """Apply a picklable ``function`` to ``tasks`` across processes.

    Returns results in task order.  ``workers=None`` uses
    :func:`default_workers`; ``workers<=1`` (or fewer than two tasks)
    runs serially in-process.

    With telemetry enabled the fan-out additionally records, in the
    *parent* process, per-worker task counts plus ``worker.task`` /
    ``worker.queue_wait`` / ``worker.idle`` span timings — results are
    identical either way (workers report timing alongside their result;
    merging still follows task-submission order).
    """
    tasks = list(tasks)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(tasks) <= 1:
        return [function(task) for task in tasks]
    tel = _telemetry()
    pool_size = min(workers, len(tasks))
    if not tel.enabled:
        with _exported_trace_environment():
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                return list(pool.map(function, tasks))
    return _instrumented_map(tel, function, tasks, pool_size)


def _instrumented_map(tel, function, tasks, pool_size: int) -> list:
    """The telemetry-recording twin of the executor branch."""
    timed = partial(_timed_call, function)
    pool_start = time.perf_counter()
    with _exported_trace_environment(), ProcessPoolExecutor(
        max_workers=pool_size
    ) as pool:
        submitted = []
        for task in tasks:
            submitted.append((pool.submit(timed, task), time.time()))
        results = []
        worker_index: dict = {}
        busy = 0.0
        for future, submit_wall in submitted:
            result, (pid, started_wall, elapsed, deltas) = future.result()
            results.append(result)
            index = worker_index.setdefault(pid, len(worker_index))
            tel.count(f"worker.w{index}.tasks")
            tel.timing("worker.task", elapsed)
            tel.timing(
                "worker.queue_wait", max(0.0, started_wall - submit_wall)
            )
            busy += elapsed
            if deltas is not None:
                counters, timings = deltas
                for name, value in counters.items():
                    tel.count(name, value)
                for name, (calls, total, peak) in timings.items():
                    cell = tel.timings.get(name)
                    if cell is None:
                        tel.timings[name] = [calls, total, peak]
                    else:
                        cell[0] += calls
                        cell[1] += total
                        if peak > cell[2]:
                            cell[2] = peak
    pool_elapsed = time.perf_counter() - pool_start
    tel.gauge("worker.count", len(worker_index))
    tel.timing("worker.pool", pool_elapsed)
    tel.timing("worker.idle", max(0.0, pool_elapsed * pool_size - busy))
    return results


class TaskFailure(RuntimeError):
    """A task exhausted its retry budget in :func:`parallel_map_retrying`."""

    def __init__(self, index: int, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"task {index} failed after {attempts} attempt(s): {cause!r}"
        )
        self.index = index
        self.attempts = attempts


def parallel_map_retrying(
    function,
    tasks,
    workers: "int | None" = None,
    retries: int = 2,
    backoff: float = 0.25,
    task_timeout: "float | None" = None,
) -> list:
    """:func:`parallel_map` hardened against worker crashes and hangs.

    Every task is retried up to ``retries`` extra times; between retry
    rounds the caller sleeps ``backoff * 2**round`` seconds
    (exponential backoff, capped at 30s).  A worker-process crash
    (``BrokenProcessPool``) poisons only that round — the pool is
    rebuilt and the unfinished tasks re-run.  With ``task_timeout`` set,
    a task that has not produced a result that many seconds after its
    round started is treated as hung: the pool's workers are terminated
    and the task is retried.  Raises :class:`TaskFailure` once a task
    exhausts its budget.

    Safe for deterministic workloads: every task is a pure function of
    its payload, so a retried task returns exactly the result its first
    attempt would have, and results are merged in task order — the
    output is bit-identical to :func:`parallel_map` on the same tasks.
    Retries are visible as the ``parallel.task.retry`` telemetry
    counter.
    """
    tasks = list(tasks)
    if workers is None:
        workers = default_workers()
    results: list = [None] * len(tasks)
    pending = list(range(len(tasks)))
    serial = workers <= 1 or len(tasks) <= 1
    tel = _telemetry()
    for attempt in range(retries + 1):
        if not pending:
            break
        if attempt:
            time.sleep(min(backoff * (2 ** (attempt - 1)), 30.0))
            tel.count("parallel.task.retry", len(pending))
        if serial:
            failures = _retry_round_serial(function, tasks, pending, results)
        else:
            failures = _retry_round_pooled(
                function, tasks, pending, results, workers, task_timeout
            )
        if failures and attempt == retries:
            index, cause = failures[0]
            raise TaskFailure(index, attempt + 1, cause) from cause
        pending = [index for index, _ in failures]
    return results


def _retry_round_serial(function, tasks, pending, results) -> list:
    """One in-process attempt over ``pending``; returns the failures."""
    failures = []
    for index in pending:
        try:
            results[index] = function(tasks[index])
        except Exception as error:
            failures.append((index, error))
    return failures


def _retry_round_pooled(
    function, tasks, pending, results, workers, task_timeout
) -> list:
    """One pooled attempt over ``pending``; returns the failures.

    Futures are drained in submission order.  On a timeout the pool's
    worker processes are terminated outright — a hung worker would
    otherwise block the executor's shutdown forever — which makes the
    pool unusable, so every task still outstanding fails over to the
    next round alongside the hung one.
    """
    failures = []
    pool_size = min(workers, len(pending))
    pool = ProcessPoolExecutor(max_workers=pool_size)
    killed = False
    try:
        futures = [
            (index, pool.submit(function, tasks[index])) for index in pending
        ]
        for index, future in futures:
            try:
                results[index] = future.result(timeout=task_timeout)
            except Exception as error:
                failures.append((index, error))
                if isinstance(error, _FuturesTimeout) and not killed:
                    killed = True
                    future.cancel()
                    for process in getattr(pool, "_processes", {}).values():
                        process.terminate()
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    return failures


# ----------------------------------------------------------------------
# Exploration fan-out
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExplorationTask:
    """One ``can_oscillate`` unit: an (instance, model) cell of a matrix."""

    instance: SPPInstance
    model_name: str
    key: tuple = ()
    queue_bound: int = 3
    max_states: int = 200_000
    reliable_twin_first: bool = True
    engine: str = "compiled"
    reduction: str = "ample"
    #: Directory of a shared :class:`repro.engine.cache.VerdictCache`
    #: (``None`` disables caching).  Safe across workers: entries are
    #: write-once and written via atomic renames, so racing processes
    #: only ever duplicate work, never corrupt the store.
    cache_dir: "str | None" = None
    #: W3C traceparent linking this task's ``worker.run`` span to the
    #: submitting request's trace (``None`` = untraced).  Purely
    #: observational — no verdict depends on it, and it is excluded
    #: from the task's identity-bearing fields by never entering
    #: :meth:`resolved_key` or the cache key.
    traceparent: "str | None" = None

    def resolved_key(self) -> tuple:
        return self.key or (self.instance.name, self.model_name)

    @classmethod
    def from_config(
        cls,
        instance: SPPInstance,
        model_name: str,
        config: RunConfig,
        key: tuple = (),
        reliable_twin_first: bool = True,
    ) -> "ExplorationTask":
        """Build a task whose bounds/engine knobs come from ``config``.

        ``config.cache``/``cache_dir`` collapse to the task's
        ``cache_dir`` (tasks cross process boundaries, so only the
        directory path travels, never a live cache object).
        """
        cache = config.resolved_cache()
        if cache is True:
            from .cache import DEFAULT_CACHE_DIR

            cache = DEFAULT_CACHE_DIR
        elif cache is not None and not isinstance(cache, (str, os.PathLike)):
            cache = str(cache.root)
        return cls(
            instance=instance,
            model_name=model_name,
            key=key,
            queue_bound=config.queue_bound,
            max_states=config.max_states,
            reliable_twin_first=reliable_twin_first,
            engine=config.engine,
            reduction=config.reduction,
            cache_dir=None if cache is None else str(cache),
        )

    def run_config(self) -> RunConfig:
        """This task's knobs as the :class:`RunConfig` it round-trips to."""
        return RunConfig(
            engine=self.engine,
            reduction=self.reduction,
            cache_dir=self.cache_dir,
            queue_bound=self.queue_bound,
            step_bound=self.max_states,
        )


def _explore_one(task: ExplorationTask):
    from ..models.taxonomy import model
    from .cache import shared_cache
    from .explorer import can_oscillate

    # Chaos harness: pick up $REPRO_FAULT_PLAN in spawn-mode workers
    # (forked workers inherit the armed state directly) and expose this
    # task to worker-level faults (crash, stall).
    ensure_armed_from_env()
    fault_point("worker.run", task)
    # Parent resolution order: the task payload (the serving tier
    # stamps its serve.compute span on every task), then the calling
    # thread (serial in-process fan-out), then the spawn environment
    # (workers started with $REPRO_TRACEPARENT exported).
    parent = (
        _tracing.TraceContext.from_traceparent(task.traceparent)
        or _tracing.current()
        or _tracing.from_environment()
    )
    with _tracing.trace_span("worker.run", parent=parent, timing=True) as span:
        span.note(instance=task.instance.name, model=task.model_name)
        config = task.run_config()
        if task.cache_dir is not None:
            # One cache object (and thus one in-memory hot tier) per
            # directory per process: in-process fan-out and thread-based
            # callers (the serving tier) share verified payloads instead
            # of re-reading them into private memos.
            config = config.replace(cache=shared_cache(task.cache_dir))
        return can_oscillate(
            task.instance,
            model(task.model_name),
            reliable_twin_first=task.reliable_twin_first,
            config=config,
        )


def run_explorations(
    tasks,
    workers: "int | None" = None,
    config: "RunConfig | None" = None,
) -> list:
    """Run exploration tasks across workers; ordered ``(key, result)``s.

    ``config.workers`` sets the fan-out width (``None`` = one per
    core); the ``workers`` keyword is a deprecated alias that emits a
    :class:`DeprecationWarning`.  Verdicts are identical for every
    worker count: each exploration is a deterministic function of its
    task, and merging follows task order.
    """
    tasks = list(tasks)
    config = resolve_config(config, caller="run_explorations", workers=workers)
    results = parallel_map(_explore_one, tasks, workers=config.workers)
    return [
        (task.resolved_key(), result)
        for task, result in zip(tasks, results)
    ]


# ----------------------------------------------------------------------
# Simulation fan-out
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimulationTask:
    """A batch of seeded fair simulations of one (instance, model) pair."""

    instance: SPPInstance
    model_name: str
    seeds: tuple = (0,)
    max_steps: int = 600
    drop_prob: float = 0.2
    key: tuple = ()

    def resolved_key(self) -> tuple:
        return self.key or (self.instance.name, self.model_name)

    @classmethod
    def from_config(
        cls,
        instance: SPPInstance,
        model_name: str,
        config: RunConfig,
        seeds: tuple = (0,),
        drop_prob: float = 0.2,
        key: tuple = (),
    ) -> "SimulationTask":
        """Build a batch whose step budget comes from ``config``."""
        return cls(
            instance=instance,
            model_name=model_name,
            seeds=tuple(seeds),
            max_steps=config.max_steps,
            drop_prob=drop_prob,
            key=key,
        )


def _simulate_batch(task: SimulationTask) -> tuple:
    from ..engine.convergence import simulate
    from ..engine.schedulers import RandomScheduler
    from ..models.taxonomy import model as model_by_name

    ensure_armed_from_env()
    fault_point("worker.run", task)
    model = model_by_name(task.model_name)
    outcomes = []
    for seed in task.seeds:
        scheduler = RandomScheduler(
            task.instance, model, seed=seed, drop_prob=task.drop_prob
        )
        result = simulate(
            task.instance,
            model,
            scheduler=scheduler,
            max_steps=task.max_steps,
        )
        outcomes.append((result.converged, result.steps))
    return tuple(outcomes)


def run_simulations(
    tasks,
    workers: "int | None" = None,
    config: "RunConfig | None" = None,
) -> list:
    """Run simulation batches across workers; ordered ``(key, outcomes)``.

    Each outcome is a ``(converged, steps)`` tuple per seed, in seed
    order — deterministic because every batch owns its explicit seeds.
    ``config.workers`` sets the fan-out width; the ``workers`` keyword
    is a deprecated alias that emits a :class:`DeprecationWarning`.
    """
    tasks = list(tasks)
    config = resolve_config(config, caller="run_simulations", workers=workers)
    results = parallel_map(_simulate_batch, tasks, workers=config.workers)
    return [
        (task.resolved_key(), outcomes)
        for task, outcomes in zip(tasks, results)
    ]
