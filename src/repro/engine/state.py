"""Network state — the components tracked by Def. 2.1.

A :class:`NetworkState` is an immutable snapshot of

* ``π`` — the current path assignment of every node;
* ``ρ`` — per channel, the content of the last update successfully
  processed from that channel ("known routes");
* the channel contents (FIFO tuples of routes, oldest first); and
* ``last_announced`` — per node, the most recent route the node wrote
  to its outgoing channels.  This register realizes the paper's
  "announce when π_v(t) ≠ π_v(t−1)" rule while letting the destination
  announce itself on first activation (interpretation note 2 in
  DESIGN.md): it is initialized to ε for *every* node, including ``d``.

Snapshots are hashable values, which the bounded model checker relies
on.
"""

from __future__ import annotations

from typing import Mapping

from ..core.paths import EPSILON, Node, Path, format_path
from ..core.spp import Channel, SPPInstance

__all__ = ["NetworkState"]


def _freeze(mapping: Mapping) -> tuple:
    return tuple(sorted(mapping.items(), key=lambda item: repr(item[0])))


class NetworkState:
    """An immutable snapshot of (π, ρ, channels, last_announced).

    Value semantics: two states compare equal iff all four components
    are equal.  Hashes and per-component dictionary views are memoized —
    the explorer performs millions of lookups per run.
    """

    __slots__ = ("_pi", "_rho", "_channels", "_announced", "_hash", "_maps")

    def __init__(
        self,
        pi: Mapping,
        rho: Mapping,
        channels: Mapping,
        announced: Mapping,
    ) -> None:
        self._pi = _freeze({n: tuple(p) for n, p in pi.items()})
        self._rho = _freeze({tuple(c): tuple(r) for c, r in rho.items()})
        self._channels = _freeze(
            {tuple(c): tuple(tuple(m) for m in ms) for c, ms in channels.items()}
        )
        self._announced = _freeze({n: tuple(p) for n, p in announced.items()})
        self._hash = None
        self._maps = None

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NetworkState):
            return NotImplemented
        return (
            self._pi == other._pi
            and self._rho == other._rho
            and self._channels == other._channels
            and self._announced == other._announced
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._pi, self._rho, self._channels, self._announced)
            )
        return self._hash

    def _mapped(self) -> tuple:
        """Memoized dict views of the four components (treat as read-only)."""
        if self._maps is None:
            self._maps = (
                dict(self._pi),
                dict(self._rho),
                dict(self._channels),
                dict(self._announced),
            )
        return self._maps

    @classmethod
    def from_instance_order(
        cls,
        instance: SPPInstance,
        pi: Mapping,
        rho: Mapping,
        channels: Mapping,
        announced: Mapping,
    ) -> "NetworkState":
        """Fast construction when the mappings cover the full key sets.

        Skips the per-field sorting of ``__init__`` by using the
        instance's canonical node and channel orders (which match the
        ``repr``-sort used by ``__init__``, so equality and hashing are
        unaffected).  All values must already be tuples.  This is the
        engine's hot path.
        """
        state = object.__new__(cls)
        nodes = instance.sorted_nodes
        channel_order = instance.channels
        state._pi = tuple((n, pi[n]) for n in nodes)
        state._rho = tuple((c, rho[c]) for c in channel_order)
        state._channels = tuple((c, channels[c]) for c in channel_order)
        state._announced = tuple((n, announced[n]) for n in nodes)
        state._hash = None
        state._maps = None
        return state

    @classmethod
    def initial(cls, instance: SPPInstance) -> "NetworkState":
        """The t = 0 state of Def. 2.1: ε everywhere, empty channels."""
        pi = {node: EPSILON for node in instance.nodes}
        pi[instance.dest] = (instance.dest,)
        rho = {channel: EPSILON for channel in instance.channels}
        channels = {channel: () for channel in instance.channels}
        announced = {node: EPSILON for node in instance.nodes}
        return cls(pi=pi, rho=rho, channels=channels, announced=announced)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def pi(self) -> dict:
        """The path assignment π as a fresh mutable dict."""
        return dict(self._mapped()[0])

    @property
    def rho(self) -> dict:
        """The known routes ρ as a fresh mutable dict."""
        return dict(self._mapped()[1])

    @property
    def channels(self) -> dict:
        """Channel contents as a fresh mutable dict of tuples."""
        return dict(self._mapped()[2])

    @property
    def announced(self) -> dict:
        """Per-node last announced route."""
        return dict(self._mapped()[3])

    def path_of(self, node: Node) -> Path:
        return self._mapped()[0][node]

    def known_route(self, channel: Channel) -> Path:
        return self._mapped()[1][tuple(channel)]

    def channel_contents(self, channel: Channel) -> tuple:
        return self._mapped()[2][tuple(channel)]

    def message_count(self, channel: Channel) -> int:
        """``m_c(t)`` — the number of messages currently in the channel."""
        return len(self.channel_contents(channel))

    def last_announced(self, node: Node) -> Path:
        return self._mapped()[3][node]

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def assignment_key(self) -> tuple:
        """A canonical hashable form of π alone (for π-sequence work)."""
        return self._pi

    def is_quiescent(self) -> bool:
        """True when every channel is empty.

        From a quiescent state, any activation leaves π unchanged as
        long as ρ cannot change — so a quiescent state whose π equals
        the best responses is a genuine fixed point; see
        :mod:`repro.engine.convergence`.
        """
        return all(not contents for _, contents in self._channels)

    def total_queued(self) -> int:
        """Total messages across all channels (explorer bound metric)."""
        return sum(len(contents) for _, contents in self._channels)

    def describe(self) -> str:
        """A compact multi-line rendering for debugging and examples."""
        lines = ["π: " + ", ".join(
            f"{node}={format_path(path)}" for node, path in self._pi
        )]
        busy = [
            f"{channel}: [" + ", ".join(format_path(m) for m in contents) + "]"
            for channel, contents in self._channels
            if contents
        ]
        if busy:
            lines.append("channels: " + "; ".join(busy))
        return "\n".join(lines)
