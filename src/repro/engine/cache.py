"""Content-addressed, relabeling-invariant verdict cache.

Oscillation verdicts are expensive (bounded exhaustive search) but
deterministic: the same instance *content*, model, and search bounds
always produce the same :class:`~repro.engine.explorer.ExplorationResult`.
This module memoizes them on disk so a 24-model certification sweep
re-run after an analysis tweak costs milliseconds instead of minutes.

**Key derivation.**  :func:`verdict_key` is the sha256 of a sorted JSON
payload containing: :data:`CACHE_VERSION`, the explorer's
:data:`~repro.engine.explorer.ENGINE_REVISION`, the reducer's
:data:`~repro.engine.reduction.REDUCTION_REVISION`, the instance's
relabeling-invariant :func:`~repro.core.canonical.canonical_hash`, the
model name, and every bound that can change the verdict or its
accounting (``queue_bound``, ``max_states``, ``reliable_twin_first``,
``reduction``).  Bumping any revision constant invalidates every stale
entry by construction — the cache never needs a migration step.  The
``engine`` choice is deliberately *not* part of the key: the
differential tests pin compiled and reference bit-identical, and the
packed engine bit-identical on trivial-symmetry instances and
verdict-equal with monotone completeness on symmetric ones, so cached
results are interchangeable across engines.  Because the instance key is the
canonical hash, a renamed copy of a cached gadget hits the same entry;
stored witnesses are encoded in canonical-index space and translated
back into the requesting instance's node names on load.

**Storage.**  One JSON file per key under
``<root>/verdicts/<key[:2]>/<key>.json`` (default root ``.repro-cache``,
overridable via the ``REPRO_CACHE_DIR`` environment variable or the
constructor).  Entries are write-once and written atomically (tempfile
in the destination directory + ``os.replace``), so concurrent
``parallel.py`` workers can share one cache directory without locks:
racing writers of the same key produce identical bytes, and readers
never observe a partial file.

**Integrity and degradation.**  Every entry embeds a sha256
``checksum`` of its own payload; an entry that fails to parse, fails
its checksum, or carries a stale :data:`CACHE_VERSION` is *quarantined*
(moved to ``<root>/quarantine/``, counted as ``cache.quarantined``) and
transparently recomputed — a corrupt cache can cost time, never
correctness.  All cache I/O degrades gracefully: a read error is a
miss, a write error (disk full, permissions) drops the store and keeps
the in-process memo, so a broken cache directory can slow a campaign
down but cannot abort it.  Orphan tempfiles left by crashed writers
are swept on store open (see :mod:`repro.fsutil`) and by ``repro
doctor``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..core.canonical import canonical_hash, canonical_labeling
from ..core.spp import SPPInstance
from ..faults import fault_point
from ..fsutil import atomic_write_text, sweep_orphan_temps
from ..obs import active as _telemetry
from .activation import INFINITY, ActivationEntry
from .explorer import ENGINE_REVISION, ExplorationResult, OscillationWitness
from .reduction import REDUCTION_REVISION

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "QUARANTINE_DIR",
    "VerdictCache",
    "as_cache",
    "payload_checksum",
    "verdict_key",
]

#: Bumped whenever the on-disk payload format changes.
#: 2: payload sha256 ``checksum`` field (PR 5 storage hardening).
CACHE_VERSION = 2

#: Default cache root (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory (under the cache root) bad entries are moved into.
QUARANTINE_DIR = "quarantine"


def payload_checksum(payload: dict) -> str:
    """sha256 over the canonical JSON of ``payload`` sans ``checksum``."""
    blob = json.dumps(
        {k: v for k, v in payload.items() if k != "checksum"},
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def verdict_key(
    instance: SPPInstance,
    model_name: str,
    *,
    queue_bound: int,
    max_states: int,
    reliable_twin_first: bool,
    reduction: str,
) -> str:
    """The content address of one (instance, model, bounds) verdict."""
    payload = {
        "cache_version": CACHE_VERSION,
        "engine_revision": ENGINE_REVISION,
        "reduction_revision": REDUCTION_REVISION,
        "instance": canonical_hash(instance),
        "model": model_name,
        "queue_bound": queue_bound,
        "max_states": max_states,
        "reliable_twin_first": bool(reliable_twin_first),
        "reduction": reduction,
    }
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Witness translation: node names <-> canonical indices.

def _encode_count(count) -> "int | str":
    return "inf" if count is INFINITY else count


def _decode_count(raw) -> "int | float":
    return INFINITY if raw == "inf" else raw


def _entry_to_jsonable(entry: ActivationEntry, index: dict) -> dict:
    data = {
        "nodes": sorted(index[node] for node in entry.nodes),
        "reads": sorted(
            ([index[u], index[v]], _encode_count(count))
            for (u, v), count in entry.reads.items()
        ),
    }
    drops = sorted(
        ([index[u], index[v]], sorted(dropped))
        for (u, v), dropped in entry.drops.items()
        if dropped
    )
    if drops:
        data["drops"] = drops
    return data


def _entry_from_jsonable(data: dict, ordering: tuple) -> ActivationEntry:
    reads = {
        (ordering[u], ordering[v]): _decode_count(count)
        for (u, v), count in data["reads"]
    }
    drops = {
        (ordering[u], ordering[v]): frozenset(indices)
        for (u, v), indices in data.get("drops", [])
    }
    return ActivationEntry(
        nodes=[ordering[i] for i in data["nodes"]],
        channels=list(reads),
        reads=reads,
        drops=drops,
    )


def _witness_to_jsonable(witness: OscillationWitness, index: dict) -> dict:
    return {
        "prefix": [_entry_to_jsonable(e, index) for e in witness.prefix],
        "cycle": [_entry_to_jsonable(e, index) for e in witness.cycle],
        "assignments": [
            [[index[node], [index[hop] for hop in path]] for node, path in pi]
            for pi in witness.assignments
        ],
    }


def _witness_from_jsonable(data: dict, ordering: tuple) -> OscillationWitness:
    return OscillationWitness(
        prefix=tuple(_entry_from_jsonable(e, ordering) for e in data["prefix"]),
        cycle=tuple(_entry_from_jsonable(e, ordering) for e in data["cycle"]),
        assignments=tuple(
            tuple(
                (ordering[node], tuple(ordering[hop] for hop in path))
                for node, path in pi
            )
            for pi in data["assignments"]
        ),
    )


def _result_to_jsonable(result: ExplorationResult, instance: SPPInstance) -> dict:
    index = {node: i for i, node in enumerate(canonical_labeling(instance))}
    return {
        "cache_version": CACHE_VERSION,
        "model_name": result.model_name,
        "oscillates": result.oscillates,
        "complete": result.complete,
        "states_explored": result.states_explored,
        "truncated_states": result.truncated_states,
        "states_pruned": result.states_pruned,
        "witness": (
            None
            if result.witness is None
            else _witness_to_jsonable(result.witness, index)
        ),
    }


def _result_from_jsonable(data: dict, instance: SPPInstance) -> ExplorationResult:
    ordering = canonical_labeling(instance)
    witness = data.get("witness")
    return ExplorationResult(
        model_name=data["model_name"],
        instance_name=instance.name,
        oscillates=data["oscillates"],
        complete=data["complete"],
        states_explored=data["states_explored"],
        truncated_states=data["truncated_states"],
        states_pruned=data.get("states_pruned", 0),
        witness=(
            None if witness is None else _witness_from_jsonable(witness, ordering)
        ),
    )


# ----------------------------------------------------------------------

class VerdictCache:
    """A directory of memoized exploration results.

    Safe to share between processes: entries are write-once and all
    writes are atomic renames.  An in-process memo layer avoids
    re-reading (and re-decoding) hot keys during a sweep.
    """

    def __init__(self, root: "str | os.PathLike | None" = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self._memo: dict = {}
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.quarantined = 0
        self.io_errors = 0
        # Stale tempfiles from crashed writers (age-gated: a live
        # writer's tempfile is never touched).
        sweep_orphan_temps(self.verdict_dir)

    # -- paths ----------------------------------------------------------
    @property
    def verdict_dir(self) -> Path:
        return self.root / "verdicts"

    def _path(self, key: str) -> Path:
        return self.verdict_dir / key[:2] / f"{key}.json"

    def _entries(self):
        if not self.verdict_dir.is_dir():
            return
        for shard in sorted(self.verdict_dir.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.json"))

    # -- core operations ------------------------------------------------
    def get(self, key: str, instance: SPPInstance) -> "ExplorationResult | None":
        """The cached result for ``key``, re-labeled for ``instance``."""
        tel = _telemetry()
        with tel.span("cache.get"):
            result = self._get(key, instance)
        tel.count("cache.hit" if result is not None else "cache.miss")
        return result

    def _get(self, key: str, instance: SPPInstance) -> "ExplorationResult | None":
        payload = self._memo.get(key)
        if payload is None:
            path = self._path(key)
            try:
                fault_point("cache.read", path)
                raw = path.read_text()
            except FileNotFoundError:
                self.misses += 1
                return None
            except OSError:
                # Unreadable store (I/O error, permissions): degrade to
                # a recompute without touching the entry — it may be
                # perfectly healthy once the filesystem recovers.
                self.io_errors += 1
                _telemetry().count("cache.io_error")
                self.misses += 1
                return None
            try:
                payload = json.loads(raw)
                if not isinstance(payload, dict):
                    raise ValueError("entry is not a JSON object")
            except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
                # Corrupt entry (e.g. a crashed writer on a filesystem
                # without atomic rename): never trusted — quarantined
                # and recomputed.
                self._quarantine(path)
                self.misses += 1
                return None
            if payload.get("cache_version") != CACHE_VERSION:
                # Version skew: quarantine so the write-once store can
                # re-fill the slot with a current-format entry.
                self._quarantine(path)
                self.misses += 1
                return None
            if payload.get("checksum") != payload_checksum(payload):
                self._quarantine(path)
                self.misses += 1
                return None
            self._memo[key] = payload
        try:
            result = _result_from_jsonable(payload, instance)
        except (KeyError, IndexError, TypeError, ValueError):
            self._memo.pop(key, None)
            self._quarantine(self._path(key))
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path) -> None:
        """Move a bad entry to ``<root>/quarantine/`` (best effort)."""
        try:
            target_dir = self.root / QUARANTINE_DIR
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            path.unlink(missing_ok=True)
        self.quarantined += 1
        _telemetry().count("cache.quarantined")

    def put(self, key: str, instance: SPPInstance, result: ExplorationResult) -> None:
        """Store ``result`` under ``key`` (no-op if already present).

        Write failures (disk full, read-only store) degrade to the
        in-process memo — a broken cache directory never aborts the
        computation that produced ``result``.
        """
        tel = _telemetry()
        with tel.span("cache.put"):
            payload = _result_to_jsonable(result, instance)
            payload["checksum"] = payload_checksum(payload)
            self._memo[key] = payload
            path = self._path(key)
            try:
                if path.exists():
                    return
                blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
                atomic_write_text(
                    path, blob, fault_site="cache.write", retries=0
                )
            except OSError:
                self.io_errors += 1
                tel.count("cache.io_error")
                return
        self.writes += 1
        tel.count("cache.write")

    # -- maintenance ----------------------------------------------------
    def stats(self) -> dict:
        """Entry count / byte totals on disk plus this process's hit rate."""
        entries = 0
        total_bytes = 0
        for path in self._entries():
            entries += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        quarantine = self.root / QUARANTINE_DIR
        in_quarantine = (
            sum(1 for p in quarantine.iterdir() if p.is_file())
            if quarantine.is_dir()
            else 0
        )
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "io_errors": self.io_errors,
            "in_quarantine": in_quarantine,
        }

    def clear(self) -> int:
        """Delete every cached verdict; returns the number removed."""
        removed = 0
        for path in list(self._entries()):
            path.unlink(missing_ok=True)
            removed += 1
        self._memo.clear()
        return removed

    def evict(self, max_entries: int) -> int:
        """Keep the ``max_entries`` most recently touched verdicts."""
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        paths = list(self._entries())
        if len(paths) <= max_entries:
            return 0
        paths.sort(key=lambda p: p.stat().st_mtime, reverse=True)
        removed = 0
        for path in paths[max_entries:]:
            path.unlink(missing_ok=True)
            removed += 1
        self._memo.clear()
        self.evictions += removed
        _telemetry().count("cache.evicted", removed)
        return removed


def as_cache(cache) -> "VerdictCache | None":
    """Coerce the user-facing ``cache`` argument to a :class:`VerdictCache`.

    ``None`` stays ``None`` (caching off); ``True`` opens the default
    directory; a string or path opens that directory; an existing
    :class:`VerdictCache` passes through.
    """
    if cache is None or isinstance(cache, VerdictCache):
        return cache
    if cache is True:
        return VerdictCache()
    if isinstance(cache, (str, os.PathLike)):
        return VerdictCache(cache)
    raise TypeError(f"cannot interpret {cache!r} as a verdict cache")
