"""Content-addressed, relabeling-invariant verdict cache.

Oscillation verdicts are expensive (bounded exhaustive search) but
deterministic: the same instance *content*, model, and search bounds
always produce the same :class:`~repro.engine.explorer.ExplorationResult`.
This module memoizes them on disk so a 24-model certification sweep
re-run after an analysis tweak costs milliseconds instead of minutes.

**Key derivation.**  :func:`verdict_key` is the sha256 of a sorted JSON
payload containing: :data:`CACHE_VERSION`, the explorer's
:data:`~repro.engine.explorer.ENGINE_REVISION`, the reducer's
:data:`~repro.engine.reduction.REDUCTION_REVISION`, the instance's
relabeling-invariant :func:`~repro.core.canonical.canonical_hash`, the
model name, and every bound that can change the verdict or its
accounting (``queue_bound``, ``max_states``, ``reliable_twin_first``,
``reduction``).  Bumping any revision constant invalidates every stale
entry by construction — the cache never needs a migration step.  The
``engine`` choice is deliberately *not* part of the key: the
differential tests pin compiled and reference bit-identical, and the
packed engine bit-identical on trivial-symmetry instances and
verdict-equal with monotone completeness on symmetric ones, so cached
results are interchangeable across engines.  Because the instance key is the
canonical hash, a renamed copy of a cached gadget hits the same entry;
stored witnesses are encoded in canonical-index space and translated
back into the requesting instance's node names on load.

**Storage.**  One JSON file per key under
``<root>/verdicts/<key[:2]>/<key>.json`` (default root ``.repro-cache``,
overridable via the ``REPRO_CACHE_DIR`` environment variable or the
constructor).  Entries are write-once and written atomically (tempfile
in the destination directory + ``os.replace``), so concurrent
``parallel.py`` workers can share one cache directory without locks:
racing writers of the same key produce identical bytes, and readers
never observe a partial file.

**Integrity and degradation.**  Every entry embeds a sha256
``checksum`` of its own payload; an entry that fails to parse, fails
its checksum, or carries a stale :data:`CACHE_VERSION` is *quarantined*
(moved to ``<root>/quarantine/``, counted as ``cache.quarantined``) and
transparently recomputed — a corrupt cache can cost time, never
correctness.  All cache I/O degrades gracefully: a read error is a
miss, a write error (disk full, permissions) drops the store and keeps
the in-process memo, so a broken cache directory can slow a campaign
down but cannot abort it.  Orphan tempfiles left by crashed writers
are swept on store open (see :mod:`repro.fsutil`) and by ``repro
doctor``.

**Hot tier.**  Entries that have been verified once (checksum checked
on first disk read, or produced by this process) are kept in a bounded
in-memory LRU memo, so a repeat read skips disk I/O, JSON parsing, and
sha256 verification entirely.  The bound defaults to
:data:`DEFAULT_MEMO_ENTRIES` and can be tuned per cache via the
``memo_entries`` constructor argument or globally via the
``REPRO_CACHE_MEMO`` environment variable (``0`` disables the tier).
Memory hits and evictions are counted (``mem_hits`` /
``mem_evictions``, telemetry ``cache.mem_hit`` / ``cache.mem_evicted``).
:func:`shared_cache` returns a process-wide cache per directory so
in-process worker pools and the serving tier share one hot tier.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from ..core.canonical import canonical_hash, canonical_labeling
from ..core.spp import SPPInstance
from ..faults import fault_point
from ..fsutil import atomic_write_text, sweep_orphan_temps
from ..obs import active as _telemetry
from .activation import INFINITY, ActivationEntry
from .explorer import ENGINE_REVISION, ExplorationResult, OscillationWitness
from .reduction import REDUCTION_REVISION

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MEMO_ENTRIES",
    "QUARANTINE_DIR",
    "VerdictCache",
    "as_cache",
    "payload_checksum",
    "result_from_payload",
    "result_to_payload",
    "shared_cache",
    "verdict_key",
]

#: Bumped whenever the on-disk payload format changes.
#: 2: payload sha256 ``checksum`` field (PR 5 storage hardening).
CACHE_VERSION = 2

#: Default cache root (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory (under the cache root) bad entries are moved into.
QUARANTINE_DIR = "quarantine"

#: Default bound on the in-memory hot tier (verified payloads kept
#: resident).  Verdict payloads without witnesses are a few hundred
#: bytes, so the default costs at most a few MB.
DEFAULT_MEMO_ENTRIES = 4096

#: Environment variable overriding :data:`DEFAULT_MEMO_ENTRIES`.
MEMO_ENV_VAR = "REPRO_CACHE_MEMO"


def payload_checksum(payload: dict) -> str:
    """sha256 over the canonical JSON of ``payload`` sans ``checksum``."""
    blob = json.dumps(
        {k: v for k, v in payload.items() if k != "checksum"},
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def verdict_key(
    instance: SPPInstance,
    model_name: str,
    *,
    queue_bound: int,
    max_states: int,
    reliable_twin_first: bool,
    reduction: str,
) -> str:
    """The content address of one (instance, model, bounds) verdict."""
    payload = {
        "cache_version": CACHE_VERSION,
        "engine_revision": ENGINE_REVISION,
        "reduction_revision": REDUCTION_REVISION,
        "instance": canonical_hash(instance),
        "model": model_name,
        "queue_bound": queue_bound,
        "max_states": max_states,
        "reliable_twin_first": bool(reliable_twin_first),
        "reduction": reduction,
    }
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Witness translation: node names <-> canonical indices.

def _encode_count(count) -> "int | str":
    return "inf" if count is INFINITY else count


def _decode_count(raw) -> "int | float":
    return INFINITY if raw == "inf" else raw


def _entry_to_jsonable(entry: ActivationEntry, index: dict) -> dict:
    data = {
        "nodes": sorted(index[node] for node in entry.nodes),
        "reads": sorted(
            ([index[u], index[v]], _encode_count(count))
            for (u, v), count in entry.reads.items()
        ),
    }
    drops = sorted(
        ([index[u], index[v]], sorted(dropped))
        for (u, v), dropped in entry.drops.items()
        if dropped
    )
    if drops:
        data["drops"] = drops
    return data


def _entry_from_jsonable(data: dict, ordering: tuple) -> ActivationEntry:
    reads = {
        (ordering[u], ordering[v]): _decode_count(count)
        for (u, v), count in data["reads"]
    }
    drops = {
        (ordering[u], ordering[v]): frozenset(indices)
        for (u, v), indices in data.get("drops", [])
    }
    return ActivationEntry(
        nodes=[ordering[i] for i in data["nodes"]],
        channels=list(reads),
        reads=reads,
        drops=drops,
    )


def _witness_to_jsonable(witness: OscillationWitness, index: dict) -> dict:
    return {
        "prefix": [_entry_to_jsonable(e, index) for e in witness.prefix],
        "cycle": [_entry_to_jsonable(e, index) for e in witness.cycle],
        "assignments": [
            [[index[node], [index[hop] for hop in path]] for node, path in pi]
            for pi in witness.assignments
        ],
    }


def _witness_from_jsonable(data: dict, ordering: tuple) -> OscillationWitness:
    return OscillationWitness(
        prefix=tuple(_entry_from_jsonable(e, ordering) for e in data["prefix"]),
        cycle=tuple(_entry_from_jsonable(e, ordering) for e in data["cycle"]),
        assignments=tuple(
            tuple(
                (ordering[node], tuple(ordering[hop] for hop in path))
                for node, path in pi
            )
            for pi in data["assignments"]
        ),
    )


def _result_to_jsonable(result: ExplorationResult, instance: SPPInstance) -> dict:
    index = {node: i for i, node in enumerate(canonical_labeling(instance))}
    return {
        "cache_version": CACHE_VERSION,
        "model_name": result.model_name,
        "oscillates": result.oscillates,
        "complete": result.complete,
        "states_explored": result.states_explored,
        "truncated_states": result.truncated_states,
        "states_pruned": result.states_pruned,
        "witness": (
            None
            if result.witness is None
            else _witness_to_jsonable(result.witness, index)
        ),
    }


def _result_from_jsonable(data: dict, instance: SPPInstance) -> ExplorationResult:
    ordering = canonical_labeling(instance)
    witness = data.get("witness")
    return ExplorationResult(
        model_name=data["model_name"],
        instance_name=instance.name,
        oscillates=data["oscillates"],
        complete=data["complete"],
        states_explored=data["states_explored"],
        truncated_states=data["truncated_states"],
        states_pruned=data.get("states_pruned", 0),
        witness=(
            None if witness is None else _witness_from_jsonable(witness, ordering)
        ),
    )


def result_to_payload(result: ExplorationResult, instance: SPPInstance) -> dict:
    """The checksummed cache-entry payload for ``result``.

    This is exactly the JSON object the disk store would hold for the
    verdict — canonical-index witnesses, ``cache_version``, and a
    ``checksum`` field — so it can travel over the wire and be decoded
    on the other side with :func:`result_from_payload`.
    """
    payload = _result_to_jsonable(result, instance)
    payload["checksum"] = payload_checksum(payload)
    return payload


def result_from_payload(payload: dict, instance: SPPInstance) -> ExplorationResult:
    """Decode a checksummed cache-entry payload for ``instance``.

    Raises :class:`ValueError` on a version-skewed, checksum-failing,
    or structurally malformed payload; never returns a partially
    decoded result.
    """
    if not isinstance(payload, dict):
        raise ValueError("payload is not a JSON object")
    if payload.get("cache_version") != CACHE_VERSION:
        raise ValueError(
            f"payload cache_version {payload.get('cache_version')!r} != {CACHE_VERSION}"
        )
    if payload.get("checksum") != payload_checksum(payload):
        raise ValueError("payload checksum mismatch")
    try:
        return _result_from_jsonable(payload, instance)
    except (KeyError, IndexError, TypeError) as exc:
        raise ValueError(f"malformed verdict payload: {exc}") from exc


# ----------------------------------------------------------------------

class VerdictCache:
    """A directory of memoized exploration results.

    Safe to share between processes: entries are write-once and all
    writes are atomic renames.  A bounded in-process LRU memo keeps
    verified-once payloads resident so hot keys skip disk I/O, JSON
    parsing, and checksum verification on repeat reads; it is guarded
    by a lock, so one cache object can serve many threads.
    """

    def __init__(
        self,
        root: "str | os.PathLike | None" = None,
        *,
        memo_entries: "int | None" = None,
    ) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        if memo_entries is None:
            raw = os.environ.get(MEMO_ENV_VAR)
            memo_entries = DEFAULT_MEMO_ENTRIES if not raw else int(raw)
        if memo_entries < 0:
            raise ValueError("memo_entries must be non-negative")
        self.root = Path(root)
        self.memo_entries = memo_entries
        self._memo: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.quarantined = 0
        self.io_errors = 0
        self.mem_hits = 0
        self.mem_evictions = 0
        # Stale tempfiles from crashed writers (age-gated: a live
        # writer's tempfile is never touched).
        sweep_orphan_temps(self.verdict_dir)

    # -- paths ----------------------------------------------------------
    @property
    def verdict_dir(self) -> Path:
        return self.root / "verdicts"

    def _path(self, key: str) -> Path:
        return self.verdict_dir / key[:2] / f"{key}.json"

    def _entries(self):
        if not self.verdict_dir.is_dir():
            return
        for shard in sorted(self.verdict_dir.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.json"))

    # -- hot tier -------------------------------------------------------
    def peek_memo(self, key: str) -> "dict | None":
        """The memoized payload for ``key``, if resident (no disk I/O)."""
        with self._lock:
            payload = self._memo.get(key)
            if payload is not None:
                self._memo.move_to_end(key)
            return payload

    def remember(self, key: str, payload: dict) -> None:
        """Admit a *verified* payload to the bounded in-memory hot tier."""
        if self.memo_entries == 0:
            return
        evicted = 0
        with self._lock:
            self._memo[key] = payload
            self._memo.move_to_end(key)
            while len(self._memo) > self.memo_entries:
                self._memo.popitem(last=False)
                evicted += 1
            self.mem_evictions += evicted
        if evicted:
            _telemetry().count("cache.mem_evicted", evicted)

    def _forget(self, key: str) -> None:
        with self._lock:
            self._memo.pop(key, None)

    # -- core operations ------------------------------------------------
    def get(self, key: str, instance: SPPInstance) -> "ExplorationResult | None":
        """The cached result for ``key``, re-labeled for ``instance``."""
        tel = _telemetry()
        with tel.span("cache.get"):
            payload, _ = self._fetch_payload(key)
            if payload is None:
                self.misses += 1
                tel.count("cache.miss")
                return None
            try:
                result = _result_from_jsonable(payload, instance)
            except (KeyError, IndexError, TypeError, ValueError):
                self._forget(key)
                self._quarantine(self._path(key))
                self.misses += 1
                tel.count("cache.miss")
                return None
            self.hits += 1
        tel.count("cache.hit")
        return result

    def get_payload(self, key: str) -> "tuple[dict | None, str]":
        """The verified raw payload for ``key`` plus the tier that served it.

        Returns ``(payload, tier)`` with ``tier`` one of ``"memory"``
        (hot-tier hit: no disk I/O, parse, or checksum work),
        ``"disk"`` (read, parsed, and verified from the store — now
        memoized), or ``"miss"`` (``payload is None``).  Maintains the
        same hit/miss accounting as :meth:`get`.
        """
        tel = _telemetry()
        with tel.span("cache.get"):
            payload, tier = self._fetch_payload(key)
            if payload is None:
                self.misses += 1
                tel.count("cache.miss")
            else:
                self.hits += 1
                tel.count("cache.hit")
        return payload, tier

    def _fetch_payload(self, key: str) -> "tuple[dict | None, str]":
        """Memo-then-disk payload fetch; verifies before memoizing."""
        payload = self.peek_memo(key)
        if payload is not None:
            self.mem_hits += 1
            _telemetry().count("cache.mem_hit")
            return payload, "memory"
        path = self._path(key)
        try:
            fault_point("cache.read", path)
            raw = path.read_text()
        except FileNotFoundError:
            return None, "miss"
        except OSError:
            # Unreadable store (I/O error, permissions): degrade to
            # a recompute without touching the entry — it may be
            # perfectly healthy once the filesystem recovers.
            self.io_errors += 1
            _telemetry().count("cache.io_error")
            return None, "miss"
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("entry is not a JSON object")
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
            # Corrupt entry (e.g. a crashed writer on a filesystem
            # without atomic rename): never trusted — quarantined
            # and recomputed.
            self._quarantine(path)
            return None, "miss"
        if payload.get("cache_version") != CACHE_VERSION:
            # Version skew: quarantine so the write-once store can
            # re-fill the slot with a current-format entry.
            self._quarantine(path)
            return None, "miss"
        if payload.get("checksum") != payload_checksum(payload):
            self._quarantine(path)
            return None, "miss"
        self.remember(key, payload)
        return payload, "disk"

    def _quarantine(self, path: Path) -> None:
        """Move a bad entry to ``<root>/quarantine/`` (best effort)."""
        try:
            target_dir = self.root / QUARANTINE_DIR
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            path.unlink(missing_ok=True)
        self.quarantined += 1
        _telemetry().count("cache.quarantined")

    def put(self, key: str, instance: SPPInstance, result: ExplorationResult) -> None:
        """Store ``result`` under ``key`` (no-op if already present).

        Write failures (disk full, read-only store) degrade to the
        in-process memo — a broken cache directory never aborts the
        computation that produced ``result``.
        """
        tel = _telemetry()
        with tel.span("cache.put"):
            payload = result_to_payload(result, instance)
            self.remember(key, payload)
            path = self._path(key)
            try:
                if path.exists():
                    return
                blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
                atomic_write_text(
                    path, blob, fault_site="cache.write", retries=0
                )
            except OSError:
                self.io_errors += 1
                tel.count("cache.io_error")
                return
        self.writes += 1
        tel.count("cache.write")

    # -- maintenance ----------------------------------------------------
    def stats(self) -> dict:
        """Entry count / byte totals on disk plus this process's hit rate."""
        entries = 0
        total_bytes = 0
        for path in self._entries():
            entries += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        quarantine = self.root / QUARANTINE_DIR
        in_quarantine = (
            sum(1 for p in quarantine.iterdir() if p.is_file())
            if quarantine.is_dir()
            else 0
        )
        with self._lock:
            memo_resident = len(self._memo)
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "io_errors": self.io_errors,
            "in_quarantine": in_quarantine,
            "mem_hits": self.mem_hits,
            "mem_evictions": self.mem_evictions,
            "memo_entries": self.memo_entries,
            "memo_resident": memo_resident,
        }

    def clear(self) -> int:
        """Delete every cached verdict; returns the number removed."""
        removed = 0
        for path in list(self._entries()):
            path.unlink(missing_ok=True)
            removed += 1
        with self._lock:
            self._memo.clear()
        return removed

    def evict(self, max_entries: int) -> int:
        """Keep the ``max_entries`` most recently touched verdicts."""
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        paths = list(self._entries())
        if len(paths) <= max_entries:
            return 0
        paths.sort(key=lambda p: p.stat().st_mtime, reverse=True)
        removed = 0
        for path in paths[max_entries:]:
            path.unlink(missing_ok=True)
            removed += 1
        with self._lock:
            self._memo.clear()
        self.evictions += removed
        _telemetry().count("cache.evicted", removed)
        return removed


# Process-wide registry for shared_cache(): one VerdictCache (and thus
# one hot tier) per cache directory.  Bounded so a pathological caller
# cycling through directories cannot pin unbounded memos.
_SHARED_LOCK = threading.Lock()
_SHARED_CACHES: "OrderedDict[str, VerdictCache]" = OrderedDict()
_SHARED_CACHES_MAX = 8


def shared_cache(root: "str | os.PathLike | None" = None) -> VerdictCache:
    """The process-wide :class:`VerdictCache` for ``root``.

    Repeated calls with the same directory return the same object, so
    every in-process user of that directory — CLI sweeps, thread-pool
    exploration tasks, the serving tier — shares one hot tier instead
    of re-verifying entries into private memos.
    """
    if root is None:
        root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    key = os.path.abspath(os.fspath(root))
    with _SHARED_LOCK:
        cache = _SHARED_CACHES.get(key)
        if cache is None:
            cache = VerdictCache(key)
            _SHARED_CACHES[key] = cache
            while len(_SHARED_CACHES) > _SHARED_CACHES_MAX:
                _SHARED_CACHES.popitem(last=False)
        else:
            _SHARED_CACHES.move_to_end(key)
        return cache


def as_cache(cache) -> "VerdictCache | None":
    """Coerce the user-facing ``cache`` argument to a :class:`VerdictCache`.

    ``None`` stays ``None`` (caching off); ``True`` opens the default
    directory; a string or path opens that directory; an existing
    :class:`VerdictCache` passes through.
    """
    if cache is None or isinstance(cache, VerdictCache):
        return cache
    if cache is True:
        return VerdictCache()
    if isinstance(cache, (str, os.PathLike)):
        return VerdictCache(cache)
    raise TypeError(f"cannot interpret {cache!r} as a verdict cache")
