"""Content-addressed, relabeling-invariant verdict cache.

Oscillation verdicts are expensive (bounded exhaustive search) but
deterministic: the same instance *content*, model, and search bounds
always produce the same :class:`~repro.engine.explorer.ExplorationResult`.
This module memoizes them on disk so a 24-model certification sweep
re-run after an analysis tweak costs milliseconds instead of minutes.

**Key derivation.**  :func:`verdict_key` is the sha256 of a sorted JSON
payload containing: :data:`CACHE_VERSION`, the explorer's
:data:`~repro.engine.explorer.ENGINE_REVISION`, the reducer's
:data:`~repro.engine.reduction.REDUCTION_REVISION`, the instance's
relabeling-invariant :func:`~repro.core.canonical.canonical_hash`, the
model name, and every bound that can change the verdict or its
accounting (``queue_bound``, ``max_states``, ``reliable_twin_first``,
``reduction``).  Bumping any revision constant invalidates every stale
entry by construction — the cache never needs a migration step.  The
``engine`` choice (compiled vs reference) is deliberately *not* part of
the key: the differential tests pin the two engines bit-identical, so
their results are interchangeable.  Because the instance key is the
canonical hash, a renamed copy of a cached gadget hits the same entry;
stored witnesses are encoded in canonical-index space and translated
back into the requesting instance's node names on load.

**Storage.**  One JSON file per key under
``<root>/verdicts/<key[:2]>/<key>.json`` (default root ``.repro-cache``,
overridable via the ``REPRO_CACHE_DIR`` environment variable or the
constructor).  Entries are write-once and written atomically (tempfile
in the destination directory + ``os.replace``), so concurrent
``parallel.py`` workers can share one cache directory without locks:
racing writers of the same key produce identical bytes, and readers
never observe a partial file.  Corrupt or version-skewed files are
treated as misses and quarantined out of the way rather than trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from ..core.canonical import canonical_hash, canonical_labeling
from ..core.spp import SPPInstance
from ..obs import active as _telemetry
from .activation import INFINITY, ActivationEntry
from .explorer import ENGINE_REVISION, ExplorationResult, OscillationWitness
from .reduction import REDUCTION_REVISION

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "VerdictCache",
    "as_cache",
    "verdict_key",
]

#: Bumped whenever the on-disk payload format changes.
CACHE_VERSION = 1

#: Default cache root (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def verdict_key(
    instance: SPPInstance,
    model_name: str,
    *,
    queue_bound: int,
    max_states: int,
    reliable_twin_first: bool,
    reduction: str,
) -> str:
    """The content address of one (instance, model, bounds) verdict."""
    payload = {
        "cache_version": CACHE_VERSION,
        "engine_revision": ENGINE_REVISION,
        "reduction_revision": REDUCTION_REVISION,
        "instance": canonical_hash(instance),
        "model": model_name,
        "queue_bound": queue_bound,
        "max_states": max_states,
        "reliable_twin_first": bool(reliable_twin_first),
        "reduction": reduction,
    }
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Witness translation: node names <-> canonical indices.

def _encode_count(count) -> "int | str":
    return "inf" if count is INFINITY else count


def _decode_count(raw) -> "int | float":
    return INFINITY if raw == "inf" else raw


def _entry_to_jsonable(entry: ActivationEntry, index: dict) -> dict:
    data = {
        "nodes": sorted(index[node] for node in entry.nodes),
        "reads": sorted(
            ([index[u], index[v]], _encode_count(count))
            for (u, v), count in entry.reads.items()
        ),
    }
    drops = sorted(
        ([index[u], index[v]], sorted(dropped))
        for (u, v), dropped in entry.drops.items()
        if dropped
    )
    if drops:
        data["drops"] = drops
    return data


def _entry_from_jsonable(data: dict, ordering: tuple) -> ActivationEntry:
    reads = {
        (ordering[u], ordering[v]): _decode_count(count)
        for (u, v), count in data["reads"]
    }
    drops = {
        (ordering[u], ordering[v]): frozenset(indices)
        for (u, v), indices in data.get("drops", [])
    }
    return ActivationEntry(
        nodes=[ordering[i] for i in data["nodes"]],
        channels=list(reads),
        reads=reads,
        drops=drops,
    )


def _witness_to_jsonable(witness: OscillationWitness, index: dict) -> dict:
    return {
        "prefix": [_entry_to_jsonable(e, index) for e in witness.prefix],
        "cycle": [_entry_to_jsonable(e, index) for e in witness.cycle],
        "assignments": [
            [[index[node], [index[hop] for hop in path]] for node, path in pi]
            for pi in witness.assignments
        ],
    }


def _witness_from_jsonable(data: dict, ordering: tuple) -> OscillationWitness:
    return OscillationWitness(
        prefix=tuple(_entry_from_jsonable(e, ordering) for e in data["prefix"]),
        cycle=tuple(_entry_from_jsonable(e, ordering) for e in data["cycle"]),
        assignments=tuple(
            tuple(
                (ordering[node], tuple(ordering[hop] for hop in path))
                for node, path in pi
            )
            for pi in data["assignments"]
        ),
    )


def _result_to_jsonable(result: ExplorationResult, instance: SPPInstance) -> dict:
    index = {node: i for i, node in enumerate(canonical_labeling(instance))}
    return {
        "cache_version": CACHE_VERSION,
        "model_name": result.model_name,
        "oscillates": result.oscillates,
        "complete": result.complete,
        "states_explored": result.states_explored,
        "truncated_states": result.truncated_states,
        "states_pruned": result.states_pruned,
        "witness": (
            None
            if result.witness is None
            else _witness_to_jsonable(result.witness, index)
        ),
    }


def _result_from_jsonable(data: dict, instance: SPPInstance) -> ExplorationResult:
    ordering = canonical_labeling(instance)
    witness = data.get("witness")
    return ExplorationResult(
        model_name=data["model_name"],
        instance_name=instance.name,
        oscillates=data["oscillates"],
        complete=data["complete"],
        states_explored=data["states_explored"],
        truncated_states=data["truncated_states"],
        states_pruned=data.get("states_pruned", 0),
        witness=(
            None if witness is None else _witness_from_jsonable(witness, ordering)
        ),
    )


# ----------------------------------------------------------------------

class VerdictCache:
    """A directory of memoized exploration results.

    Safe to share between processes: entries are write-once and all
    writes are atomic renames.  An in-process memo layer avoids
    re-reading (and re-decoding) hot keys during a sweep.
    """

    def __init__(self, root: "str | os.PathLike | None" = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self._memo: dict = {}
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0

    # -- paths ----------------------------------------------------------
    @property
    def verdict_dir(self) -> Path:
        return self.root / "verdicts"

    def _path(self, key: str) -> Path:
        return self.verdict_dir / key[:2] / f"{key}.json"

    def _entries(self):
        if not self.verdict_dir.is_dir():
            return
        for shard in sorted(self.verdict_dir.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.json"))

    # -- core operations ------------------------------------------------
    def get(self, key: str, instance: SPPInstance) -> "ExplorationResult | None":
        """The cached result for ``key``, re-labeled for ``instance``."""
        tel = _telemetry()
        with tel.span("cache.get"):
            result = self._get(key, instance)
        tel.count("cache.hit" if result is not None else "cache.miss")
        return result

    def _get(self, key: str, instance: SPPInstance) -> "ExplorationResult | None":
        payload = self._memo.get(key)
        if payload is None:
            path = self._path(key)
            try:
                payload = json.loads(path.read_text())
            except FileNotFoundError:
                self.misses += 1
                return None
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                # Corrupt entry (e.g. a crashed writer on a filesystem
                # without atomic rename): drop it and treat as a miss.
                path.unlink(missing_ok=True)
                self.misses += 1
                return None
            if payload.get("cache_version") != CACHE_VERSION:
                self.misses += 1
                return None
            self._memo[key] = payload
        try:
            result = _result_from_jsonable(payload, instance)
        except (KeyError, IndexError, TypeError, ValueError):
            self._memo.pop(key, None)
            self._path(key).unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, instance: SPPInstance, result: ExplorationResult) -> None:
        """Store ``result`` under ``key`` (no-op if already present)."""
        tel = _telemetry()
        with tel.span("cache.put"):
            payload = _result_to_jsonable(result, instance)
            self._memo[key] = payload
            path = self._path(key)
            if path.exists():
                return
            path.parent.mkdir(parents=True, exist_ok=True)
            blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        self.writes += 1
        tel.count("cache.write")

    # -- maintenance ----------------------------------------------------
    def stats(self) -> dict:
        """Entry count / byte totals on disk plus this process's hit rate."""
        entries = 0
        total_bytes = 0
        for path in self._entries():
            entries += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
        }

    def clear(self) -> int:
        """Delete every cached verdict; returns the number removed."""
        removed = 0
        for path in list(self._entries()):
            path.unlink(missing_ok=True)
            removed += 1
        self._memo.clear()
        return removed

    def evict(self, max_entries: int) -> int:
        """Keep the ``max_entries`` most recently touched verdicts."""
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        paths = list(self._entries())
        if len(paths) <= max_entries:
            return 0
        paths.sort(key=lambda p: p.stat().st_mtime, reverse=True)
        removed = 0
        for path in paths[max_entries:]:
            path.unlink(missing_ok=True)
            removed += 1
        self._memo.clear()
        self.evictions += removed
        _telemetry().count("cache.evicted", removed)
        return removed


def as_cache(cache) -> "VerdictCache | None":
    """Coerce the user-facing ``cache`` argument to a :class:`VerdictCache`.

    ``None`` stays ``None`` (caching off); ``True`` opens the default
    directory; a string or path opens that directory; an existing
    :class:`VerdictCache` passes through.
    """
    if cache is None or isinstance(cache, VerdictCache):
        return cache
    if cache is True:
        return VerdictCache()
    if isinstance(cache, (str, os.PathLike)):
        return VerdictCache(cache)
    raise TypeError(f"cannot interpret {cache!r} as a verdict cache")
