"""The iterative routing algorithm of Def. 2.3.

:func:`apply_entry` is the pure single-step transition; an
:class:`Execution` strings steps into a recorded :class:`Trace`.

Step semantics, with the interpretation decisions of DESIGN.md:

1. For every updating node ``v`` and processed channel ``c = (u, v)``:
   process ``i = m_c`` messages if ``f(c) = ∞``, else
   ``i = min(f(c), m_c)`` (the paper's ``max`` is a typo — a node cannot
   process messages that are not there).  Among the processed indices
   ``{1..i}``, those in ``g(c)`` are dropped; if any survive, ``ρ_v(c)``
   becomes the *last* surviving one.  The first ``i`` messages leave the
   channel either way.
2. Every updating node picks its most preferred feasible extension of
   its known routes ``ρ`` (over *all* neighbors, processed or not).
3. A node whose choice differs from its last announcement writes the
   new choice — possibly ε, a withdrawal — to all outgoing channels
   allowed by the export policy.

With multiple updating nodes (Ex. A.6) all reads happen against the
step's initial channel contents before any writes are appended; each
channel has a single writer and a single reader, so this is
well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..core.paths import EPSILON, Node, Path
from ..core.spp import SPPInstance
from .activation import INFINITY, ActivationEntry
from .state import NetworkState

__all__ = ["ExportPolicy", "StepRecord", "Trace", "Execution", "apply_entry"]

#: Decides whether ``node`` may announce ``path`` to ``neighbor``.
ExportPolicy = Callable


def export_everything(
    instance: SPPInstance, node: Node, neighbor: Node, path: Path
) -> bool:
    """The default export policy: announce every change to every neighbor."""
    return True


@dataclass(frozen=True)
class StepRecord:
    """What happened during one applied activation entry."""

    entry: ActivationEntry
    #: channel → tuple of messages removed from the channel this step.
    processed: dict
    #: channel → the new ρ value, only for channels whose ρ changed.
    learned: dict
    #: node → (old π, new π) for nodes whose assignment changed.
    changes: dict
    #: (channel, route) pairs written this step, in write order.
    announcements: tuple
    #: node → channel supplying the selected path's next hop (or None).
    selected_source: dict

    @property
    def changed(self) -> bool:
        return bool(self.changes)


def apply_entry(
    instance: SPPInstance,
    state: NetworkState,
    entry: ActivationEntry,
    export_policy: ExportPolicy = export_everything,
) -> tuple:
    """Apply one activation entry; return ``(new_state, StepRecord)``."""
    pi = state.pi
    rho = state.rho
    channels = state.channels  # dict of immutable tuples
    announced = state.announced

    processed: dict = {}
    learned: dict = {}
    reads = entry.reads
    drops = entry.drops

    # --- Step 1: collect updates from the processed channels. ---------
    for channel in entry.sorted_channels:
        if channel not in channels:
            raise ValueError(f"entry processes unknown channel {channel!r}")
        queue = channels[channel]
        requested = reads[channel]
        count = len(queue) if requested is INFINITY else min(requested, len(queue))
        taken = queue[:count]
        channels[channel] = queue[count:]
        processed[channel] = taken
        dropped = drops.get(channel, ())
        surviving = [
            index for index in range(1, count + 1) if index not in dropped
        ]
        if surviving:
            new_route = taken[surviving[-1] - 1]
            if rho[channel] != new_route:
                learned[channel] = new_route
            rho[channel] = new_route

    # --- Steps 2-3: choose and record changes. -------------------------
    changes: dict = {}
    selected_source: dict = {}
    for node in entry.sorted_nodes:
        if node == instance.dest:
            new_path = (instance.dest,)
        else:
            candidates = {
                channel: instance.feasible_extension(node, rho[channel])
                for channel in instance.in_channels(node)
            }
            new_path = instance.best_choice(node, candidates.values())
            source = None
            if new_path != EPSILON:
                for channel in instance.selection_channels(node):
                    if candidates[channel] == new_path:
                        source = channel
                        break
            selected_source[node] = source
        if new_path != pi[node]:
            changes[node] = (pi[node], new_path)
        pi[node] = new_path

    # --- Step 4: announce changes. --------------------------------------
    announcements: list = []
    for node in entry.sorted_nodes:
        if pi[node] == announced[node]:
            continue
        for out_channel in instance.out_channels(node):
            neighbor = out_channel[1]
            if export_policy(instance, node, neighbor, pi[node]):
                channels[out_channel] = channels[out_channel] + (pi[node],)
                announcements.append((out_channel, pi[node]))
        announced[node] = pi[node]

    new_state = NetworkState.from_instance_order(
        instance,
        pi=pi,
        rho=rho,
        channels=channels,
        announced=announced,
    )
    record = StepRecord(
        entry=entry,
        processed=processed,
        learned=learned,
        changes=changes,
        announcements=tuple(announcements),
        selected_source=selected_source,
    )
    return new_state, record


@dataclass
class Trace:
    """A recorded execution: states, π-sequence, and per-step records."""

    instance: SPPInstance
    initial_state: NetworkState
    states: list = field(default_factory=list)
    records: list = field(default_factory=list)

    @property
    def final_state(self) -> NetworkState:
        return self.states[-1] if self.states else self.initial_state

    def __len__(self) -> int:
        return len(self.records)

    @property
    def pi_sequence(self) -> tuple:
        """The sequence ``π(0), π(1), …`` of full assignments (canonical).

        Index ``t`` holds the assignment *after* step ``t`` — the
        sequence the realization relations of Sec. 3 compare.
        """
        return tuple(state.assignment_key for state in self.states)

    def assignment_after(self, step: int) -> dict:
        """π as a dict after 1-based step ``step`` (paper's t = 1, 2, …)."""
        return self.states[step - 1].pi

    def changed_steps(self) -> tuple:
        """The 0-based indices of steps that changed some assignment."""
        return tuple(
            index for index, record in enumerate(self.records) if record.changed
        )


class Execution:
    """Drives the algorithm over an instance, recording a :class:`Trace`."""

    def __init__(
        self,
        instance: SPPInstance,
        export_policy: ExportPolicy = export_everything,
        initial_state: NetworkState | None = None,
    ) -> None:
        self.instance = instance
        self.export_policy = export_policy
        self.state = initial_state or NetworkState.initial(instance)
        self.trace = Trace(instance=instance, initial_state=self.state)

    def step(self, entry: ActivationEntry) -> StepRecord:
        """Apply one entry, advancing and recording state."""
        self.state, record = apply_entry(
            self.instance, self.state, entry, self.export_policy
        )
        self.trace.states.append(self.state)
        self.trace.records.append(record)
        return record

    def run(self, schedule: Iterable[ActivationEntry]) -> Trace:
        """Apply every entry of a finite schedule; return the trace."""
        for entry in schedule:
            self.step(entry)
        return self.trace

    def run_nodes(self, nodes: Sequence[Node], kind: str = "poll") -> Trace:
        """Run a node-only schedule in a fully-determined E-scope style.

        ``kind="poll"`` uses REA entries (Ex. A.4/A.5 traces);
        ``kind="one-each"`` uses REO entries (Ex. A.2/A.3 traces).
        """
        makers = {
            "poll": ActivationEntry.poll_all,
            "one-each": ActivationEntry.read_one_each,
        }
        try:
            maker = makers[kind]
        except KeyError:
            raise ValueError(f"unknown schedule kind {kind!r}") from None
        for node in nodes:
            self.step(maker(self.instance, node))
        return self.trace
