"""Execution metrics: message and work accounting over traces.

The paper's Sec. 4 discusses operational trade-offs the convergence
results do not capture — longer wait times can save "spurious or
transient announcements" at the cost of discovery latency.  These
counters quantify that trade-off for any recorded execution:
announcements sent (and how many were withdrawals), messages processed
versus dropped, route changes ("churn"), and per-node breakdowns.

Experiment E13 uses them to compare the *message overhead* of polling,
message-passing, and queueing deployments on the same instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.paths import EPSILON
from .execution import Trace

__all__ = ["ExecutionMetrics", "measure"]


@dataclass
class ExecutionMetrics:
    """Aggregate counters for one execution."""

    steps: int = 0
    activations: int = 0  # node-activations (≥ steps under multi-node)
    announcements: int = 0  # messages written to channels
    withdrawals: int = 0  # ε announcements among them
    messages_processed: int = 0
    messages_dropped: int = 0
    route_changes: int = 0  # π changes, the "churn"
    #: node → number of times the node's assignment changed.
    churn_by_node: dict = field(default_factory=dict)
    #: channel → messages sent on it.
    traffic_by_channel: dict = field(default_factory=dict)

    @property
    def delivery_ratio(self) -> float:
        """Fraction of processed messages actually delivered to ρ."""
        if not self.messages_processed:
            return 1.0
        return 1.0 - self.messages_dropped / self.messages_processed

    @property
    def announcements_per_change(self) -> float:
        """Messages emitted per route change (protocol chattiness)."""
        if not self.route_changes:
            return float(self.announcements)
        return self.announcements / self.route_changes

    def as_dict(self) -> dict:
        """Machine-readable form (``repro experiments --json``)."""
        return {
            "steps": self.steps,
            "activations": self.activations,
            "announcements": self.announcements,
            "withdrawals": self.withdrawals,
            "messages_processed": self.messages_processed,
            "messages_dropped": self.messages_dropped,
            "route_changes": self.route_changes,
            "delivery_ratio": round(self.delivery_ratio, 6),
            "announcements_per_change": round(
                self.announcements_per_change, 6
            ),
            "churn_by_node": {
                str(node): count
                for node, count in sorted(
                    self.churn_by_node.items(), key=lambda kv: str(kv[0])
                )
            },
        }

    def format_summary(self) -> str:
        lines = [
            f"steps={self.steps} activations={self.activations}",
            f"announcements={self.announcements} "
            f"(withdrawals={self.withdrawals})",
            f"processed={self.messages_processed} "
            f"dropped={self.messages_dropped} "
            f"delivery={self.delivery_ratio:.0%}",
            f"route changes={self.route_changes} "
            f"(chattiness={self.announcements_per_change:.2f} msg/change)",
        ]
        return "\n".join(lines)


def measure(trace: Trace) -> ExecutionMetrics:
    """Compute metrics for a recorded trace."""
    metrics = ExecutionMetrics()
    for record in trace.records:
        metrics.steps += 1
        metrics.activations += len(record.entry.nodes)
        for channel, route in record.announcements:
            metrics.announcements += 1
            if route == EPSILON:
                metrics.withdrawals += 1
            metrics.traffic_by_channel[channel] = (
                metrics.traffic_by_channel.get(channel, 0) + 1
            )
        for channel, taken in record.processed.items():
            metrics.messages_processed += len(taken)
            dropped = record.entry.drop_set(channel)
            effective = len(taken)
            metrics.messages_dropped += sum(
                1 for index in range(1, effective + 1) if index in dropped
            )
        for node in record.changes:
            metrics.route_changes += 1
            metrics.churn_by_node[node] = metrics.churn_by_node.get(node, 0) + 1
    return metrics
