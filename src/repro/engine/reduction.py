"""Partial-order reduction for the bounded oscillation search.

The explorer expands every behaviourally distinct interleaving of
activation entries, but large fractions of those interleavings are
redundant: they differ only in *when* a node consumes a message whose
content it has already seen.  This module implements two sound
reductions, applied by both the reference :class:`~repro.engine.explorer.Explorer`
and the compiled :class:`~repro.engine.compiled.CompiledExplorer` when
``reduction="ample"`` (the default; ``reduction="none"`` opts out):

**Extension-projection quotient.**  A known route ``ρ(c)`` and the
queued messages of a channel ``c = (u, v)`` influence the algorithm
only through the feasible extension ``ext_c(r) = v·r if permitted else
ε`` (Def. 2.3 step 2 forms candidates exclusively from extensions).
Mapping every route observed on ``c`` to a fixed *representative* of
its ``ext_c``-class (the first route in the codec's interning order
with the same extension) is therefore a strong bisimulation on
canonical states: it preserves π, queue lengths and emptiness, entry
menus, and every predicate of the fairness criterion.  States that
differ only in which ``ext``-equivalent route sits in ``ρ`` or in a
queue are merged.

**Redundant-message absorption.**  If the *front* message ``m`` of a
non-empty channel ``c`` satisfies ``rep(m) = rep(ρ(c))``, then the
entry "receiver of ``c`` reads one message from ``c``" is, in the
projected space, a pure queue-shortening no-op: ρ stays in its class,
the receiver's best response is unchanged (selection depends only on
extensions, and in-channel ρ values cannot have changed since the
receiver's last activation), hence no announcement fires.  The reducer
expands that absorption step as the *sole* successor of the state.
Soundness (DESIGN.md §7 gives the full argument): the absorption entry
commutes with every other entry — it touches only the front of ``c``
while other entries append to channel backs or read other channels —
and any fair cycle through the state must consume ``m`` somewhere
(a cycle that never services the permanently non-empty ``c`` violates
the fairness criterion itself), so rotating that consumption to the
front maps every fair cycle of the full graph onto one of the reduced
graph with pointwise shorter queues.  Guards: absorption is disabled
for E-scope models (their entries must list every in-channel, so a
single-channel read is not model-legal) and, for count-A models on
unreliable channels, restricted to singleton queues (an ∞-read of a
longer queue would consume more than the front message; reliable
count-A queues are already collapsed to length ≤ 1 by
canonicalization).

Because absorption only ever *shortens* queues, the reduced search can
terminate without truncation where the unreduced one hits the queue
bound: ``complete=True`` then certifies the absence of fair
oscillations among behaviours whose absorption normal form respects
the bound — a superset of the behaviours the unreduced bounded search
covers, so verdict-strength is monotone (differential tests pin this:
``oscillates`` never flips, ``complete`` only ever strengthens).

Classical static ample/persistent sets degenerate here — routing
gadgets are strongly connected, so every node's dependency closure is
the whole system — which is why the reduction is built from the two
dynamic, domain-specific rules above instead.
"""

from __future__ import annotations

from ..core.paths import EPSILON
from ..models.dimensions import NeighborScope
from ..obs import active as _telemetry

__all__ = [
    "REDUCTIONS",
    "REDUCTION_REVISION",
    "validate_reduction",
    "route_universe",
    "representative_tables",
    "representative_paths",
    "absorption_allowed",
]

#: Recognized reduction modes.
REDUCTIONS = ("ample", "none")

#: Bumped whenever the reduction changes semantics or state counts —
#: part of every verdict-cache key, so stale cached results can never
#: be replayed against a different reducer.
REDUCTION_REVISION = 1


def validate_reduction(reduction: str) -> str:
    """Return ``reduction`` or raise on an unknown mode."""
    if reduction not in REDUCTIONS:
        raise ValueError(
            f"unknown reduction {reduction!r} (choose from {REDUCTIONS})"
        )
    return reduction


def route_universe(instance) -> tuple:
    """ε plus every permitted path, in the codec's interning order.

    Mirrors :class:`repro.engine.compiled.InstanceCodec` exactly so the
    integer tables of :func:`representative_tables` index the compiled
    engine's route ids directly.  Memoized on the instance — every
    explorer construction consults it (directly and via the
    representative tables), and the interning order is a pure function
    of the instance.
    """
    cached = instance.__dict__.get("_route_universe")
    if cached is not None:
        return cached
    routes = [EPSILON]
    seen = {EPSILON}
    for node in instance.sorted_nodes:
        for path in instance.permitted_at(node):
            if path not in seen:
                seen.add(path)
                routes.append(path)
    routes = tuple(routes)
    object.__setattr__(instance, "_route_universe", routes)
    return routes


def representative_tables(instance) -> tuple:
    """Per-channel route-id → representative-route-id tables.

    ``tables[cid][rid]`` is the first route id (in interning order)
    whose feasible extension through channel ``cid``'s receiver equals
    that of route ``rid`` — the canonical member of ``rid``'s
    ``ext``-class.  ε is always its own representative (its extension
    is ε, and ε is interned first).  Memoized on the instance, like the
    compiled codec.
    """
    cached = instance.__dict__.get("_reduction_tables")
    if cached is not None:
        _telemetry().count("reduction.table_hits")
        return cached
    tel = _telemetry()
    with tel.span("reduction.tables"):
        routes = route_universe(instance)
        tables = []
        for channel in instance.channels:
            receiver = channel[1]
            first: dict = {}
            table = []
            for rid, route in enumerate(routes):
                ext = instance.feasible_extension(receiver, route)
                table.append(first.setdefault(ext, rid))
            tables.append(tuple(table))
        tables = tuple(tables)
    tel.count("reduction.table_builds")
    object.__setattr__(instance, "_reduction_tables", tables)
    return tables


def representative_paths(instance) -> dict:
    """The path-level twin of :func:`representative_tables`.

    Returns ``{channel: {route: representative route}}`` for the
    reference engine; representative choices coincide with the compiled
    tables, which keeps the two engines bit-identical under reduction.
    """
    cached = instance.__dict__.get("_reduction_paths")
    if cached is not None:
        return cached
    tables = representative_tables(instance)
    with _telemetry().span("reduction.tables"):
        routes = route_universe(instance)
        mapping = {
            channel: {
                routes[rid]: routes[table[rid]] for rid in range(len(routes))
            }
            for channel, table in zip(instance.channels, tables)
        }
    object.__setattr__(instance, "_reduction_paths", mapping)
    return mapping


def absorption_allowed(model) -> bool:
    """Whether the absorption rule may fire at all under ``model``.

    E-scope entries must process every in-channel of the updating node,
    so the single-channel absorption entry is not model-legal there
    (the projection quotient still applies).
    """
    return model.scope is not NeighborScope.EVERY
