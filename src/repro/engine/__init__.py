"""Execution engine: channels, activation sequences, and the algorithm."""

from .activation import INFINITY, ActivationEntry, Schedule
from .cache import VerdictCache, verdict_key
from .convergence import (
    RunResult,
    find_oscillation_evidence,
    find_state_recurrence,
    is_fixed_point,
    simulate,
)
from .execution import Execution, StepRecord, Trace, apply_entry
from .explorer import ExplorationResult, Explorer, OscillationWitness, can_oscillate
from .fairness import FairnessReport, audit_schedule, service_gaps
from .messages import ChannelQueue
from .metrics import ExecutionMetrics, measure
from .multinode import MultiNodeExplorer, can_oscillate_multinode
from .reduction import REDUCTIONS
from .schedulers import RandomScheduler, RoundRobinScheduler, Scheduler
from .serialization import entry_from_dict, entry_to_dict, schedule_from_json, schedule_to_json, trace_to_dict
from .state import NetworkState

__all__ = [
    "INFINITY",
    "ActivationEntry",
    "ChannelQueue",
    "ExplorationResult",
    "Execution",
    "ExecutionMetrics",
    "Explorer",
    "FairnessReport",
    "MultiNodeExplorer",
    "NetworkState",
    "OscillationWitness",
    "REDUCTIONS",
    "RandomScheduler",
    "RoundRobinScheduler",
    "RunResult",
    "Schedule",
    "Scheduler",
    "StepRecord",
    "Trace",
    "VerdictCache",
    "apply_entry",
    "audit_schedule",
    "entry_from_dict",
    "entry_to_dict",
    "can_oscillate",
    "can_oscillate_multinode",
    "find_oscillation_evidence",
    "find_state_recurrence",
    "is_fixed_point",
    "measure",
    "schedule_from_json",
    "schedule_to_json",
    "service_gaps",
    "trace_to_dict",
    "simulate",
    "verdict_key",
]
