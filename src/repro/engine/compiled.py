"""Compiled execution core: integer-interned instances and packed states.

The reference engine (:mod:`repro.engine.execution`,
:mod:`repro.engine.explorer`) manipulates rich values — node names,
path tuples, repr-sorted snapshot dictionaries.  That is the semantics
of Def. 2.1–2.3 written down as directly as possible, and it stays the
source of truth.  This module is the *fast path*: an
:class:`InstanceCodec` interns every node, channel, and permitted path
of an :class:`~repro.core.spp.SPPInstance` into dense integer ids and
precomputes flat lookup tables —

* ``ext[channel_id][route_id]`` — the feasible extension of a known
  route through the channel's receiver (Def. 2.3 step 2 candidates),
* ``pref_index[node_id][route_id]`` — the position of a path in the
  node's total preference order ``(λ_v, repr)`` (Def. 2.1's ranking
  with the engine's deterministic tie-break), and
* fixed in/out channel iteration orders matching the instance's
  canonical (repr-sorted) orders,

so that one algorithm step is a handful of list copies and integer
table lookups.  A **packed state** is the 4-tuple

    ``(π, ρ, channels, last_announced)``

where π and last_announced are tuples of route ids indexed by node id,
ρ is a tuple of route ids indexed by channel id, and channels is a
tuple of per-channel FIFO tuples of route ids.  Packing is a bijection
onto the reference :class:`~repro.engine.state.NetworkState` value
space (every route that can ever appear in a snapshot is ε or a
permitted path, hence interned), so hashing/equality of packed states
induce exactly the reference equivalence classes — the property the
bounded model checker relies on.

:class:`CompiledExplorer` ports the :class:`~repro.engine.explorer.Explorer`
search loop to packed states *without changing a single enumeration
order*: successor generation, DFS, checkpointing, Tarjan SCC order,
fairness checks, and witness reconstruction all mirror the reference
step for step, so verdicts, state counts, and witnesses are
bit-identical (``tests/engine/test_compiled_differential.py`` enforces
this).  Decoding back to ``NetworkState``/``ActivationEntry`` happens
only at API boundaries.
"""

from __future__ import annotations

import itertools
import time

from ..core.paths import EPSILON
from ..core.spp import SPPInstance
from ..models.dimensions import MessageCount, NeighborScope, Reliability
from ..models.taxonomy import CommunicationModel
from ..obs import active as _telemetry
from .activation import INFINITY, ActivationEntry
from .reduction import (
    absorption_allowed,
    representative_tables,
    validate_reduction,
)
from .state import NetworkState

__all__ = [
    "InstanceCodec",
    "CompiledExplorer",
    "codec_for",
    "apply_packed",
    "replay_schedule",
]

_NO_DROPS = frozenset()


class InstanceCodec:
    """Dense integer interning of one SPP instance, plus flat tables.

    Ids follow the instance's canonical orders: node id = index into
    ``instance.sorted_nodes``, channel id = index into
    ``instance.channels``, route id = index into :attr:`routes` (ε is
    always id 0).  The codec is immutable and safe to share.
    """

    __slots__ = (
        "instance",
        "nodes",
        "node_id",
        "dest_id",
        "dest_route_id",
        "channels",
        "channel_id",
        "routes",
        "route_id",
        "eps_id",
        "no_choice",
        "ext",
        "pref_index",
        "route_by_pref",
        "in_ch",
        "out_ch",
        "dest_in",
    )

    def __init__(self, instance: SPPInstance) -> None:
        self.instance = instance
        self.nodes = instance.sorted_nodes
        self.node_id = {node: i for i, node in enumerate(self.nodes)}
        self.dest_id = self.node_id[instance.dest]
        self.channels = instance.channels
        self.channel_id = {c: i for i, c in enumerate(self.channels)}

        # Route universe: ε plus every permitted path of every node.
        # Everything a snapshot can hold (π, ρ, messages, announcements)
        # is drawn from this set, so the interning is total.
        route_id: dict = {EPSILON: 0}
        routes: list = [EPSILON]
        for node in self.nodes:
            for path in instance.permitted_at(node):
                if path not in route_id:
                    route_id[path] = len(routes)
                    routes.append(path)
        self.routes = tuple(routes)
        self.route_id = route_id
        self.eps_id = 0
        self.dest_route_id = route_id[(instance.dest,)]

        # Per-channel extension table: route announced on (u, v) → the
        # feasible extension v·route (ε when looping / not permitted).
        self.ext = tuple(
            tuple(
                route_id[instance.feasible_extension(channel[1], route)]
                for route in self.routes
            )
            for channel in self.channels
        )

        # Total preference order per node: (rank, repr) ascending —
        # exactly the order `best_choice` minimizes over.
        n_routes = len(self.routes)
        self.no_choice = n_routes + 1
        pref_index: list = []
        route_by_pref: list = []
        for node in self.nodes:
            order = sorted(
                instance.permitted_at(node),
                key=lambda p: (instance.rank_of(node, p), repr(p)),
            )
            index = [self.no_choice] * n_routes
            table = []
            for position, path in enumerate(order):
                index[route_id[path]] = position
                table.append(route_id[path])
            pref_index.append(tuple(index))
            route_by_pref.append(tuple(table))
        self.pref_index = tuple(pref_index)
        self.route_by_pref = tuple(route_by_pref)

        self.in_ch = tuple(
            tuple(self.channel_id[c] for c in instance.in_channels(node))
            for node in self.nodes
        )
        self.out_ch = tuple(
            tuple(self.channel_id[c] for c in instance.out_channels(node))
            for node in self.nodes
        )
        self.dest_in = tuple(
            cid
            for cid, channel in enumerate(self.channels)
            if channel[1] == instance.dest
        )

    # ------------------------------------------------------------------
    # State packing
    # ------------------------------------------------------------------
    def initial_packed(self) -> tuple:
        """The packed t = 0 state of Def. 2.1."""
        pi = [self.eps_id] * len(self.nodes)
        pi[self.dest_id] = self.dest_route_id
        rho = (self.eps_id,) * len(self.channels)
        channels = ((),) * len(self.channels)
        announced = (self.eps_id,) * len(self.nodes)
        return (tuple(pi), rho, channels, announced)

    def pack_state(self, state: NetworkState) -> tuple:
        """Intern a reference snapshot (raises ``KeyError`` on routes
        outside the instance's permitted universe)."""
        rid = self.route_id
        pi_map = state.pi
        rho_map = state.rho
        channel_map = state.channels
        announced_map = state.announced
        return (
            tuple(rid[pi_map[node]] for node in self.nodes),
            tuple(rid[rho_map[c]] for c in self.channels),
            tuple(
                tuple(rid[m] for m in channel_map[c]) for c in self.channels
            ),
            tuple(rid[announced_map[node]] for node in self.nodes),
        )

    def unpack_state(self, packed: tuple) -> NetworkState:
        """Decode a packed state back to the reference representation."""
        pi, rho, channels, announced = packed
        routes = self.routes
        return NetworkState.from_instance_order(
            self.instance,
            pi={n: routes[r] for n, r in zip(self.nodes, pi)},
            rho={c: routes[r] for c, r in zip(self.channels, rho)},
            channels={
                c: tuple(routes[m] for m in queue)
                for c, queue in zip(self.channels, channels)
            },
            announced={n: routes[r] for n, r in zip(self.nodes, announced)},
        )

    # ------------------------------------------------------------------
    # Entry packing
    # ------------------------------------------------------------------
    def compile_entry(self, entry: ActivationEntry) -> tuple:
        """Intern an activation entry as ``(node_ids, combo)`` where
        ``combo`` is a tuple of ``(channel_id, f, drop_set)``."""
        node_ids = tuple(sorted(self.node_id[n] for n in entry.nodes))
        reads = entry.reads
        drops = entry.drops
        combo = tuple(
            (
                self.channel_id[channel],
                count,
                drops.get(channel, _NO_DROPS),
            )
            for channel, count in reads.items()
        )
        return (node_ids, combo)

    def entry_of(self, packed_entry: tuple) -> ActivationEntry:
        """Decode a packed entry into a reference :class:`ActivationEntry`."""
        node_ids, combo = packed_entry
        channels = [self.channels[cid] for cid, _, _ in combo]
        reads = {self.channels[cid]: count for cid, count, _ in combo}
        drops = {
            self.channels[cid]: dropped
            for cid, _, dropped in combo
            if dropped
        }
        return ActivationEntry(
            nodes=[self.nodes[i] for i in node_ids],
            channels=channels,
            reads=reads,
            drops=drops,
        )

    def assignment_key(self, packed_pi: tuple) -> tuple:
        """The reference ``NetworkState.assignment_key`` of a packed π."""
        routes = self.routes
        return tuple(
            (node, routes[r]) for node, r in zip(self.nodes, packed_pi)
        )


def codec_for(instance: SPPInstance) -> InstanceCodec:
    """The (memoized) codec of an instance.

    The codec is attached to the instance object itself, so repeated
    explorations — and every worker process after unpickling — build
    the tables exactly once per instance.
    """
    codec = instance.__dict__.get("_codec_cache")
    if codec is None:
        codec = InstanceCodec(instance)
        object.__setattr__(instance, "_codec_cache", codec)
    return codec


def apply_packed(codec: InstanceCodec, state: tuple, node_ids, combo) -> tuple:
    """One Def. 2.3 step on a packed state (export-everything policy).

    Mirrors :func:`repro.engine.execution.apply_entry`: all reads happen
    against the step's initial channel contents, then every updating
    node re-selects, then changed selections are appended to the
    node's outgoing channels.
    """
    pi, rho, channels, announced = state
    channels = list(channels)
    rho_list = None

    # Step 1 — process the selected channels.
    for cid, count, drops in combo:
        queue = channels[cid]
        pending = len(queue)
        take = pending if count is INFINITY else min(count, pending)
        if not take:
            continue
        channels[cid] = queue[take:]
        if drops:
            surviving = 0
            for index in range(take, 0, -1):
                if index not in drops:
                    surviving = index
                    break
            if not surviving:
                continue
            new_route = queue[surviving - 1]
        else:
            new_route = queue[take - 1]
        if rho_list is None:
            rho_list = list(rho)
        rho_list[cid] = new_route
    rho_out = rho if rho_list is None else tuple(rho_list)

    # Step 2 — best responses over the (updated) known routes.
    pi_list = list(pi)
    dest_id = codec.dest_id
    ext = codec.ext
    no_choice = codec.no_choice
    for nid in node_ids:
        if nid == dest_id:
            pi_list[nid] = codec.dest_route_id
            continue
        best = no_choice
        pref = codec.pref_index[nid]
        for cid in codec.in_ch[nid]:
            position = pref[ext[cid][rho_out[cid]]]
            if position < best:
                best = position
        pi_list[nid] = (
            codec.route_by_pref[nid][best] if best < no_choice else codec.eps_id
        )

    # Step 3 — announce changed selections.
    announced_list = None
    for nid in node_ids:
        new_route = pi_list[nid]
        if new_route != announced[nid]:
            if announced_list is None:
                announced_list = list(announced)
            announced_list[nid] = new_route
            for ocid in codec.out_ch[nid]:
                channels[ocid] = channels[ocid] + (new_route,)
    return (
        tuple(pi_list),
        rho_out,
        tuple(channels),
        announced if announced_list is None else tuple(announced_list),
    )


def replay_schedule(
    instance: SPPInstance,
    schedule,
    initial_state: "NetworkState | None" = None,
) -> list:
    """Run a finite schedule through the compiled step.

    Returns the list of post-step :class:`NetworkState` snapshots — the
    compiled twin of ``Execution(instance).run(schedule).states`` (under
    the default export-everything policy).  Used by the differential
    tests to prove compiled ≡ reference trace semantics.
    """
    codec = codec_for(instance)
    packed = (
        codec.initial_packed()
        if initial_state is None
        else codec.pack_state(initial_state)
    )
    states = []
    for entry in schedule:
        node_ids, combo = codec.compile_entry(entry)
        packed = apply_packed(codec, packed, node_ids, combo)
        states.append(codec.unpack_state(packed))
    return states


class CompiledExplorer:
    """The packed-state port of :class:`repro.engine.explorer.Explorer`.

    Every enumeration order (successors, DFS, checkpoints, Tarjan, BFS
    witness reconstruction) mirrors the reference explorer exactly, so
    the two produce bit-identical :class:`ExplorationResult` values —
    the compiled one just does it on tuples of small ints.  Constructed
    by ``Explorer.explore()`` when the engine is ``"compiled"``; not
    part of the public API surface.
    """

    def __init__(
        self,
        instance: SPPInstance,
        model: CommunicationModel,
        queue_bound: int = 3,
        max_states: int = 200_000,
        reduction: str = "ample",
    ) -> None:
        if model.concurrency.name != "ONE":
            raise ValueError("the explorer supports one-node-per-step models only")
        self.instance = instance
        self.model = model
        self.queue_bound = queue_bound
        self.max_states = max_states
        self.reduction = validate_reduction(reduction)
        self.codec = codec_for(instance)
        self._dest_in = frozenset(self.codec.dest_in)
        self._collapse = (
            model.count is MessageCount.ALL
            and model.reliability is Reliability.RELIABLE
        )
        self._combo_cache: dict = {}
        self._count_all = model.count is MessageCount.ALL
        if self.reduction == "ample":
            self._rep = representative_tables(instance)
            self._absorb = absorption_allowed(model)
            self._receiver_of = tuple(
                self.codec.node_id[channel[1]] for channel in self.codec.channels
            )
        else:
            self._rep = None
            self._absorb = False
            self._receiver_of = ()
        self._pruned = 0

    # ------------------------------------------------------------------
    # State canonicalization (packed twin of Explorer.canonicalize)
    # ------------------------------------------------------------------
    def canonicalize(self, packed: tuple) -> tuple:
        pi, rho, channels, announced = packed
        needs_work = False
        for cid in self.codec.dest_in:
            if channels[cid] or rho[cid]:
                needs_work = True
                break
        if not needs_work and self._collapse:
            for queue in channels:
                if len(queue) > 1:
                    needs_work = True
                    break
        if needs_work:
            channels = list(channels)
            rho = list(rho)
            for cid in self.codec.dest_in:
                channels[cid] = ()
                rho[cid] = 0
            if self._collapse:
                for cid, queue in enumerate(channels):
                    if len(queue) > 1:
                        channels[cid] = (queue[-1],)
            rho = tuple(rho)
            channels = tuple(channels)
        rep = self._rep
        if rep is not None:
            # ext-projection quotient: known routes and queued messages
            # are only ever observed through their feasible extension,
            # so each is replaced by its ext-class representative.
            new_rho = None
            for cid, r in enumerate(rho):
                if rep[cid][r] != r:
                    if new_rho is None:
                        new_rho = list(rho)
                    new_rho[cid] = rep[cid][r]
            new_channels = None
            for cid, queue in enumerate(channels):
                table = rep[cid]
                for m in queue:
                    if table[m] != m:
                        if new_channels is None:
                            new_channels = list(channels)
                        new_channels[cid] = tuple(table[m] for m in queue)
                        break
            if new_rho is not None:
                rho = tuple(new_rho)
            if new_channels is not None:
                channels = tuple(new_channels)
        return (pi, rho, channels, announced)

    # ------------------------------------------------------------------
    # Successor enumeration (same orders as the reference explorer)
    # ------------------------------------------------------------------
    def _channel_sets(self, nid: int, channels: tuple) -> tuple:
        in_cids = self.codec.in_ch[nid]
        busy = tuple(cid for cid in in_cids if channels[cid])
        scope = self.model.scope
        if scope is NeighborScope.ONE:
            return tuple((cid,) for cid in busy)
        if scope is NeighborScope.EVERY:
            return (in_cids,) if busy else ()
        subsets = []
        for size in range(1, len(busy) + 1):
            subsets.extend(itertools.combinations(busy, size))
        return tuple(subsets)

    def _count_options(self, pending: int) -> tuple:
        kind = self.model.count
        if kind is MessageCount.ONE:
            return (1,)
        if kind is MessageCount.ALL:
            return (INFINITY,)
        if pending == 0:
            return (1,)
        behaviours = list(range(1, pending + 1))
        behaviours[-1] = INFINITY
        if (
            kind is MessageCount.SOME
            and self.model.scope is NeighborScope.EVERY
        ):
            behaviours.insert(0, 0)
        return tuple(behaviours)

    def _drop_options(self, effective: int) -> tuple:
        if self.model.reliability is Reliability.RELIABLE or effective == 0:
            return (_NO_DROPS,)
        options = []
        for survivor in range(effective, 0, -1):
            options.append(frozenset(range(survivor + 1, effective + 1)))
        options.append(frozenset(range(1, effective + 1)))
        return tuple(options)

    def _combos_for(self, pending: int) -> tuple:
        """Behaviourally distinct ``(f, g)`` pairs for one channel."""
        cached = self._combo_cache.get(pending)
        if cached is None:
            combos = []
            for count in self._count_options(pending):
                effective = (
                    pending if count is INFINITY else min(count, pending)
                )
                for dropped in self._drop_options(effective):
                    combos.append((count, dropped))
            cached = tuple(combos)
            self._combo_cache[pending] = cached
        return cached

    def _kickoff(self, packed: tuple) -> "tuple | None":
        codec = self.codec
        if packed[3][codec.dest_id] == codec.dest_route_id:
            return None
        in_cids = codec.in_ch[codec.dest_id]
        scope = self.model.scope
        if scope is NeighborScope.ONE and in_cids:
            cids: tuple = (in_cids[0],)
        elif scope is NeighborScope.EVERY:
            cids = in_cids
        else:
            cids = ()
        count: "int | float" = (
            INFINITY if self.model.count is MessageCount.ALL else 1
        )
        combo = tuple((cid, count, _NO_DROPS) for cid in cids)
        return ((codec.dest_id,), combo)

    def _absorption(self, packed: tuple) -> "tuple | None":
        """The forced absorption step at ``packed``, if one applies.

        Scans channels in canonical order for a front message whose
        ext-class equals the channel's known route; reading it is a
        pure queue-shortening no-op (see :mod:`repro.engine.reduction`),
        so it is expanded as the state's sole successor.  The successor
        is built directly — ρ keeps its (ext-equal) old value, π and
        announcements provably cannot change — and then canonicalized,
        which projects ρ onto the shared representative.
        """
        rep = self._rep
        rho = packed[1]
        channels = packed[2]
        count_all = self._count_all
        dest_id = self.codec.dest_id
        for cid, queue in enumerate(channels):
            if not queue:
                continue
            if count_all and len(queue) != 1:
                # An ∞-read consumes the whole queue; only a singleton
                # is a pure front-absorption.  (Reliable count-A queues
                # are collapsed to ≤ 1 by canonicalization already.)
                continue
            table = rep[cid]
            if table[queue[0]] != table[rho[cid]]:
                continue
            nid = self._receiver_of[cid]
            if nid == dest_id:
                continue
            count: "int | float" = INFINITY if count_all else 1
            entry = ((nid,), ((cid, count, _NO_DROPS),))
            nxt = (
                packed[0],
                rho,
                channels[:cid] + (queue[1:],) + channels[cid + 1 :],
                packed[3],
            )
            return entry, self.canonicalize(nxt)
        return None

    def _full_entry_count(self, packed: tuple) -> int:
        """How many entries unreduced enumeration would yield here.

        Pure counting twin of :meth:`successors` (no states are built);
        used to account ``states_pruned`` when absorption replaces the
        full successor set.
        """
        codec = self.codec
        channels = packed[2]
        total = 0 if self._kickoff(packed) is None else 1
        scope = self.model.scope
        for nid in range(len(codec.nodes)):
            counts = [
                len(self._combos_for(len(channels[cid])))
                for cid in codec.in_ch[nid]
                if channels[cid]
            ]
            if not counts:
                continue
            if scope is NeighborScope.ONE:
                total += sum(counts)
            elif scope is NeighborScope.EVERY:
                product = 1
                for cid in codec.in_ch[nid]:
                    product *= len(self._combos_for(len(channels[cid])))
                total += product
            else:
                product = 1
                for n in counts:
                    product *= n + 1
                total += product - 1
        return total

    def successors(self, packed: tuple):
        """Yield ``(packed_entry, canonical_next)`` — reference order."""
        if self._absorb:
            forced = self._absorption(packed)
            if forced is not None:
                self._pruned += self._full_entry_count(packed) - 1
                yield forced
                return
        codec = self.codec
        apply_step = apply_packed
        canonicalize = self.canonicalize
        kickoff = self._kickoff(packed)
        if kickoff is not None:
            yield kickoff, canonicalize(
                apply_step(codec, packed, kickoff[0], kickoff[1])
            )
        channels = packed[2]
        for nid in range(len(codec.nodes)):
            node_ids = (nid,)
            for cids in self._channel_sets(nid, channels):
                per_channel = [
                    [
                        (cid, count, dropped)
                        for count, dropped in self._combos_for(
                            len(channels[cid])
                        )
                    ]
                    for cid in cids
                ]
                if len(per_channel) == 1:
                    for choice in per_channel[0]:
                        combo = (choice,)
                        yield (node_ids, combo), canonicalize(
                            apply_step(codec, packed, node_ids, combo)
                        )
                else:
                    for combo in itertools.product(*per_channel):
                        yield (node_ids, combo), canonicalize(
                            apply_step(codec, packed, node_ids, combo)
                        )

    # ------------------------------------------------------------------
    # Search (packed twin of Explorer.explore)
    # ------------------------------------------------------------------
    def explore(self):
        from .explorer import ExplorationResult

        tel = _telemetry()
        search_start = time.perf_counter()
        self._pruned = 0
        initial = self.canonicalize(self.codec.initial_packed())
        index_of: dict = {initial: 0}
        states: list = [initial]
        edges: dict = {}
        parent: dict = {0: None}
        truncated = 0
        frontier = [0]
        overflow = False
        checkpoint = 1024
        queue_bound = self.queue_bound
        total_bound = queue_bound * max(1, len(self.codec.channels))
        max_states = self.max_states

        def result(witness, complete) -> "ExplorationResult":
            tel.timing("explore.search", time.perf_counter() - search_start)
            return ExplorationResult(
                model_name=self.model.name,
                instance_name=self.instance.name,
                oscillates=witness is not None,
                complete=complete,
                states_explored=len(states),
                truncated_states=truncated,
                states_pruned=self._pruned,
                witness=witness,
            )

        while frontier:
            current = frontier.pop()
            adjacency: list = []
            for packed_entry, nxt in self.successors(states[current]):
                total = 0
                over = False
                for queue in nxt[2]:
                    length = len(queue)
                    total += length
                    if length > queue_bound:
                        over = True
                        break
                if over or total > total_bound:
                    truncated += 1
                    continue
                index = index_of.get(nxt)
                if index is None:
                    if len(states) >= max_states:
                        overflow = True
                        truncated += 1
                        continue
                    index = len(states)
                    index_of[nxt] = index
                    states.append(nxt)
                    parent[index] = (current, packed_entry)
                    frontier.append(index)
                adjacency.append((packed_entry, index))
            edges[current] = adjacency
            if len(states) >= checkpoint:
                checkpoint *= 4
                if tel.enabled:
                    tel.heartbeat(
                        "explore",
                        instance=self.instance.name,
                        model=self.model.name,
                        engine="compiled",
                        states=len(states),
                        pruned=self._pruned,
                        truncated=truncated,
                        frontier=len(frontier),
                        elapsed_s=round(
                            time.perf_counter() - search_start, 6
                        ),
                    )
                witness = self._find_fair_oscillation(states, edges, parent)
                if witness is not None:
                    return result(witness, complete=False)

        witness = self._find_fair_oscillation(states, edges, parent)
        return result(witness, complete=(truncated == 0 and not overflow))

    # ------------------------------------------------------------------
    # SCC + fairness (packed twins of the reference implementations)
    # ------------------------------------------------------------------
    def _sccs(self, node_count: int, edges: dict):
        index_counter = itertools.count()
        indexes: dict = {}
        lowlink: dict = {}
        on_stack: set = set()
        stack: list = []

        for root in range(node_count):
            if root in indexes:
                continue
            work = [(root, iter(edges.get(root, ())))]
            indexes[root] = lowlink[root] = next(index_counter)
            stack.append(root)
            on_stack.add(root)
            while work:
                vertex, iterator = work[-1]
                advanced = False
                for _, target in iterator:
                    if target not in indexes:
                        indexes[target] = lowlink[target] = next(index_counter)
                        stack.append(target)
                        on_stack.add(target)
                        work.append((target, iter(edges.get(target, ()))))
                        advanced = True
                        break
                    if target in on_stack:
                        lowlink[vertex] = min(lowlink[vertex], indexes[target])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent_vertex = work[-1][0]
                    lowlink[parent_vertex] = min(
                        lowlink[parent_vertex], lowlink[vertex]
                    )
                if lowlink[vertex] == indexes[vertex]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == vertex:
                            break
                    yield component

    def _fairness_ok(self, component: list, states, edges) -> bool:
        codec = self.codec
        members = set(component)
        inner_edges = [
            (source, entry, target)
            for source in component
            for entry, target in edges.get(source, ())
            if target in members
        ]
        relevant = [
            cid
            for cid in range(len(codec.channels))
            if cid not in self._dest_in
        ]
        empty_somewhere = {
            cid
            for cid in relevant
            if any(not states[s][2][cid] for s in component)
        }
        serviced: set = set()
        dropped_from: set = set()
        delivered_from: set = set()
        activated: set = set()
        full_activation: set = set()
        for source, (node_ids, combo), _ in inner_edges:
            attempts = frozenset(cid for cid, count, _ in combo if count != 0)
            serviced |= attempts
            for nid in node_ids:
                activated.add(nid)
                in_cids = set(codec.in_ch[nid])
                if in_cids and in_cids <= attempts:
                    full_activation.add(nid)
            for cid, count, dropped in combo:
                if count == 0:
                    continue
                pending = len(states[source][2][cid])
                batch = pending if count is INFINITY else min(count, pending)
                if any(index in dropped for index in range(1, batch + 1)):
                    dropped_from.add(cid)
                if any(
                    index not in dropped for index in range(1, batch + 1)
                ):
                    delivered_from.add(cid)
        for cid in relevant:
            if cid not in serviced and cid not in empty_somewhere:
                return False
        if self.model.scope is NeighborScope.EVERY:
            for nid in range(len(codec.nodes)):
                in_cids = set(codec.in_ch[nid]) - self._dest_in
                if not in_cids:
                    continue
                all_empty_somewhere = any(
                    all(not states[s][2][cid] for cid in in_cids)
                    for s in component
                )
                if nid not in full_activation and not all_empty_somewhere:
                    return False
        if self.model.reliability is Reliability.UNRELIABLE:
            for cid in dropped_from:
                if cid not in delivered_from and cid not in empty_somewhere:
                    return False
        return True

    def _find_fair_oscillation(self, states, edges, parent):
        for component in self._sccs(len(states), edges):
            members = set(component)
            has_inner_edge = any(
                target in members
                for source in component
                for _, target in edges.get(source, ())
            )
            if not has_inner_edge:
                continue
            assignments = {states[s][0] for s in component}
            if len(assignments) < 2:
                continue
            if not self._fairness_ok(component, states, edges):
                continue
            return self._build_witness(component, states, edges, parent)
        return None

    def _build_witness(self, component, states, edges, parent):
        from .explorer import OscillationWitness

        codec = self.codec
        members = set(component)
        anchor = min(component)

        def path_within(start: int, goal: int) -> list:
            if start == goal:
                return []
            queue = [start]
            back: dict = {start: None}
            while queue:
                current = queue.pop(0)
                for entry, target in edges.get(current, ()):
                    if target in members and target not in back:
                        back[target] = (current, entry)
                        if target == goal:
                            steps = []
                            cursor = goal
                            while back[cursor] is not None:
                                previous, entry_taken = back[cursor]
                                steps.append((entry_taken, cursor))
                                cursor = previous
                            steps.reverse()
                            return steps
                        queue.append(target)
            raise AssertionError("SCC members must be mutually reachable")

        anchor_pi = states[anchor][0]
        other = next(
            s for s in component if states[s][0] != anchor_pi
        )
        period = path_within(anchor, other) + path_within(other, anchor)
        cycle_entries = tuple(codec.entry_of(entry) for entry, _ in period)

        prefix_entries = []
        cursor = anchor
        while parent.get(cursor) is not None:
            previous, entry = parent[cursor]
            prefix_entries.append(codec.entry_of(entry))
            cursor = previous
        prefix_entries.reverse()

        visited_assignments = {
            codec.assignment_key(anchor_pi),
            codec.assignment_key(states[other][0]),
        }
        return OscillationWitness(
            prefix=tuple(prefix_entries),
            cycle=cycle_entries,
            assignments=tuple(sorted(visited_assignments, key=repr)),
        )
