"""Fair-by-construction schedulers for every model in the taxonomy.

Fairness (Def. 2.4) is a property of infinite activation sequences:
every node tries to read each of its channels infinitely often, and
every dropped message is eventually followed by a delivered one.  The
schedulers here emit finite prefixes of sequences that are fair by
construction:

* :class:`RoundRobinScheduler` — deterministic: cycles through nodes,
  and (for 1-scope models) through each node's channels; services every
  channel every ``O(|V| · maxdeg)`` steps.
* :class:`RandomScheduler` — randomized, but with a *service guarantee*:
  it tracks how long each channel has gone unserviced and forcibly
  schedules any channel whose age exceeds ``fairness_window``.  Drops
  (in U models) are Bernoulli per processed message, never repeated
  forever on a channel with pending traffic.

Every emitted entry is validated against the model's constraints.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..core.spp import Channel, SPPInstance
from ..models.constraints import require_legal_entry
from ..models.dimensions import MessageCount, NeighborScope, Reliability
from ..models.taxonomy import CommunicationModel
from .activation import INFINITY, ActivationEntry
from .state import NetworkState

__all__ = ["Scheduler", "RoundRobinScheduler", "RandomScheduler"]


class Scheduler:
    """Base class: produces a stream of model-legal activation entries."""

    def __init__(self, instance: SPPInstance, model: CommunicationModel) -> None:
        self.instance = instance
        self.model = model
        self._nodes = sorted(instance.nodes, key=repr)

    def next_entry(self, state: NetworkState) -> ActivationEntry:
        raise NotImplementedError

    def entries(self, execution_state_supplier, limit: int) -> Iterator[ActivationEntry]:
        """Yield up to ``limit`` entries against live state."""
        for _ in range(limit):
            yield self.next_entry(execution_state_supplier())

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _count_for(self, rng: "random.Random | None", state, channel) -> "int | float":
        """Choose f(c) legal for the model's message-count dimension."""
        kind = self.model.count
        if kind is MessageCount.ONE:
            return 1
        if kind is MessageCount.ALL:
            return INFINITY
        pending = state.message_count(channel)
        if kind is MessageCount.FORCED:
            if rng is None:
                return INFINITY
            return rng.choice([1, max(1, pending), INFINITY])
        # SOME: unrestricted.
        if rng is None:
            return INFINITY
        return rng.choice([0, 1, max(1, pending), INFINITY])

    def _build_entry(
        self,
        node,
        channels: tuple,
        state: NetworkState,
        rng: "random.Random | None",
        drop_prob: float = 0.0,
        no_drop: frozenset = frozenset(),
    ) -> ActivationEntry:
        reads = {}
        drops = {}
        for channel in channels:
            count = self._count_for(rng, state, channel)
            reads[channel] = count
            if (
                self.model.reliability is Reliability.UNRELIABLE
                and rng is not None
                and drop_prob > 0
                and channel not in no_drop
            ):
                pending = state.message_count(channel)
                effective = pending if count is INFINITY else min(count, pending)
                # Fairness (Def. 2.4): a dropped message needs a *later*
                # non-dropped message on the same channel.  The sender
                # may never speak again (the destination announces only
                # once), so only messages with a successor already in
                # the channel are ever dropped — the channel's current
                # last message is always deliverable.
                droppable = effective if effective < pending else effective - 1
                dropped = frozenset(
                    index
                    for index in range(1, droppable + 1)
                    if rng.random() < drop_prob
                )
                if dropped:
                    drops[channel] = dropped
        entry = ActivationEntry(
            nodes=[node], channels=channels, reads=reads, drops=drops
        )
        require_legal_entry(self.model, self.instance, entry)
        return entry


class RoundRobinScheduler(Scheduler):
    """Deterministic fair scheduler.

    For E and M scope the node's full channel set is processed each
    activation (for M this is one legal choice); for scope 1 the node's
    channels are themselves cycled, so channel ``c`` of node ``v`` is
    processed every ``|V| · deg(v)`` steps.  Message counts use the
    model's most thorough legal option (∞ where allowed, else 1) and
    channels are never dropped, making the infinite extension trivially
    fair even for U models.
    """

    def __init__(self, instance: SPPInstance, model: CommunicationModel) -> None:
        super().__init__(instance, model)
        self._node_index = 0
        self._channel_index = {node: 0 for node in self._nodes}

    def next_entry(self, state: NetworkState) -> ActivationEntry:
        node = self._nodes[self._node_index]
        self._node_index = (self._node_index + 1) % len(self._nodes)
        in_channels = self.instance.in_channels(node)
        if not in_channels:
            # A node with no channels can only appear for the destination
            # of a star graph; activate it with no channels (M scope) or
            # skip to the next node for scopes that need a channel.
            if self.model.scope is NeighborScope.MULTIPLE:
                return ActivationEntry(nodes=[node])
            return self.next_entry(state)
        if self.model.scope is NeighborScope.ONE:
            index = self._channel_index[node]
            self._channel_index[node] = (index + 1) % len(in_channels)
            channels = (in_channels[index],)
        else:
            channels = in_channels
        return self._build_entry(node, channels, state, rng=None)


class RandomScheduler(Scheduler):
    """Randomized fair scheduler with an explicit service guarantee."""

    def __init__(
        self,
        instance: SPPInstance,
        model: CommunicationModel,
        seed: int = 0,
        fairness_window: int | None = None,
        drop_prob: float = 0.2,
    ) -> None:
        super().__init__(instance, model)
        self._rng = random.Random(seed)
        self._drop_prob = drop_prob
        channel_count = len(instance.channels)
        self._window = fairness_window or max(4 * channel_count, 16)
        self._age = {channel: 0 for channel in instance.channels}
        self._consecutive_drops = {channel: 0 for channel in instance.channels}

    def _overdue_channel(self) -> "Channel | None":
        overdue = [c for c, age in self._age.items() if age >= self._window]
        if not overdue:
            return None
        return max(overdue, key=lambda c: (self._age[c], repr(c)))

    def next_entry(self, state: NetworkState) -> ActivationEntry:
        forced = self._overdue_channel()
        if forced is not None:
            node = forced[1]
        else:
            node = self._rng.choice(self._nodes)
        in_channels = self.instance.in_channels(node)

        scope = self.model.scope
        if not in_channels and scope is NeighborScope.MULTIPLE:
            channels: tuple = ()
        elif not in_channels:
            # Can't activate an isolated node in 1/E scope; pick another.
            candidates = [n for n in self._nodes if self.instance.in_channels(n)]
            node = self._rng.choice(candidates)
            in_channels = self.instance.in_channels(node)
            channels = self._pick_channels(scope, in_channels, forced=None)
        else:
            channels = self._pick_channels(
                scope, in_channels, forced if forced in in_channels else None
            )

        # A channel stuck behind repeated drops must eventually deliver.
        no_drop = frozenset(
            channel
            for channel in channels
            if self._consecutive_drops[channel] >= 2
        )
        entry = self._build_entry(
            node,
            channels,
            state,
            rng=self._rng,
            drop_prob=self._drop_prob,
            no_drop=no_drop,
        )
        self._bookkeep(entry, state)
        return entry

    def _pick_channels(self, scope, in_channels, forced) -> tuple:
        if scope is NeighborScope.EVERY:
            return tuple(in_channels)
        if scope is NeighborScope.ONE:
            return (forced,) if forced else (self._rng.choice(in_channels),)
        chosen = {
            channel for channel in in_channels if self._rng.random() < 0.5
        }
        if forced:
            chosen.add(forced)
        return tuple(sorted(chosen, key=repr))

    def _bookkeep(self, entry: ActivationEntry, state: NetworkState) -> None:
        for channel in self._age:
            self._age[channel] += 1
        for channel, count in entry.reads.items():
            if count == 0:
                continue
            self._age[channel] = 0
            pending = state.message_count(channel)
            effective = pending if count is INFINITY else min(count, pending)
            dropped = entry.drop_set(channel)
            if effective and len(dropped) >= effective:
                self._consecutive_drops[channel] += 1
            elif effective:
                self._consecutive_drops[channel] = 0
