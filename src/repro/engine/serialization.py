"""JSON-friendly serialization of activation schedules and traces.

Schedules (finite prefixes of activation sequences) are experiment
inputs worth archiving: a serialized schedule replays bit-for-bit on the
same instance, which is how the repository pins down the paper's worked
executions and any counterexample the explorer emits.

``f = ∞`` is encoded as the string ``"inf"``.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from .activation import INFINITY, ActivationEntry
from .execution import Trace

__all__ = [
    "entry_to_dict",
    "entry_from_dict",
    "schedule_to_json",
    "schedule_from_json",
    "trace_to_dict",
]


def _encode_count(count) -> "int | str":
    return "inf" if count is INFINITY else count


def _decode_count(raw) -> "int | float":
    if raw == "inf":
        return INFINITY
    if isinstance(raw, int) and raw >= 0:
        return raw
    raise ValueError(f"invalid message count {raw!r}")


def entry_to_dict(entry: ActivationEntry) -> dict:
    """Encode one activation entry as a JSON-able dict."""
    return {
        "nodes": sorted((str(node) for node in entry.nodes)),
        "reads": [
            [list(map(str, channel)), _encode_count(count)]
            for channel, count in sorted(
                entry.reads.items(), key=lambda item: repr(item[0])
            )
        ],
        "drops": [
            [list(map(str, channel)), sorted(dropped)]
            for channel, dropped in sorted(
                entry.drops.items(), key=lambda item: repr(item[0])
            )
            if dropped
        ],
    }


def entry_from_dict(data: Mapping) -> ActivationEntry:
    """Decode :func:`entry_to_dict` output."""
    reads = {
        tuple(channel): _decode_count(count) for channel, count in data["reads"]
    }
    drops = {
        tuple(channel): frozenset(indices)
        for channel, indices in data.get("drops", [])
    }
    return ActivationEntry(
        nodes=data["nodes"],
        channels=list(reads),
        reads=reads,
        drops=drops,
    )


def schedule_to_json(schedule: Iterable[ActivationEntry], **kwargs) -> str:
    """Encode a schedule as a JSON array."""
    kwargs.setdefault("indent", 2)
    return json.dumps([entry_to_dict(entry) for entry in schedule], **kwargs)


def schedule_from_json(text: str) -> tuple:
    """Decode :func:`schedule_to_json` output."""
    return tuple(entry_from_dict(item) for item in json.loads(text))


def trace_to_dict(trace: Trace) -> dict:
    """Summarize a trace: schedule plus the induced π-sequence.

    The π-sequence is encoded per step as ``{node: [path...]}``; replaying
    the schedule on the same instance regenerates the full trace, so
    per-step channel contents are deliberately not archived.
    """
    return {
        "instance": trace.instance.name,
        "schedule": [entry_to_dict(record.entry) for record in trace.records],
        "assignments": [
            {
                str(node): list(map(str, path))
                for node, path in state.pi.items()
            }
            for state in trace.states
        ],
    }
