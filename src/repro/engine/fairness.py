"""Fairness bookkeeping over finite schedule prefixes (Def. 2.4).

A fair activation sequence services every channel infinitely often and
never drops a channel's final message forever.  On a finite prefix we
can check the finite shadow of this property: how recently each channel
was serviced, and whether any channel's trailing processed batch was
entirely dropped.  Schedulers use these checks in their tests; they are
also exported for users building hand-rolled schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.spp import SPPInstance
from .activation import ActivationEntry

__all__ = ["FairnessReport", "audit_schedule", "service_gaps"]


@dataclass(frozen=True)
class FairnessReport:
    """Summary of a finite prefix's fairness bookkeeping."""

    #: channel → number of times it was serviced with f ≥ 1.
    service_counts: dict
    #: channel → longest gap (in steps) between consecutive services.
    max_gaps: dict
    #: channels whose most recent drop has not yet been followed by a
    #: delivered message (must be empty for a "fair so far" prefix).
    pending_drops: frozenset
    #: channels never serviced at all.
    never_serviced: frozenset

    @property
    def is_fair_prefix(self) -> bool:
        """No channel starved (all serviced) and no dangling drops."""
        return not self.never_serviced and not self.pending_drops


def audit_schedule(
    instance: SPPInstance, schedule: "tuple | list"
) -> FairnessReport:
    """Audit a finite schedule's fairness bookkeeping.

    Dropping is judged syntactically: a serviced channel whose entry
    drops every index up to its requested count is recorded as a drop
    event; delivery resets it.  (Actual batch sizes depend on channel
    occupancy, so this static audit is conservative.)
    """
    channels = instance.channels
    last_service = {channel: -1 for channel in channels}
    counts = {channel: 0 for channel in channels}
    gaps = {channel: 0 for channel in channels}
    pending: set = set()

    for step, entry in enumerate(schedule):
        if not isinstance(entry, ActivationEntry):
            raise TypeError(f"schedule item {step} is not an ActivationEntry")
        for channel, requested in entry.reads.items():
            if requested == 0:
                continue
            gaps[channel] = max(gaps[channel], step - last_service[channel])
            last_service[channel] = step
            counts[channel] += 1
            dropped = entry.drop_set(channel)
            if requested != float("inf") and dropped and len(dropped) >= requested:
                pending.add(channel)
            elif not dropped or (
                requested != float("inf") and len(dropped) < requested
            ):
                pending.discard(channel)
    horizon = len(schedule)
    for channel in channels:
        gaps[channel] = max(gaps[channel], horizon - 1 - last_service[channel])
    return FairnessReport(
        service_counts=counts,
        max_gaps=gaps,
        pending_drops=frozenset(pending),
        never_serviced=frozenset(c for c in channels if counts[c] == 0),
    )


def service_gaps(instance: SPPInstance, schedule: "tuple | list") -> int:
    """The worst service gap across all channels (smaller = fairer)."""
    report = audit_schedule(instance, schedule)
    return max(report.max_gaps.values()) if report.max_gaps else 0
