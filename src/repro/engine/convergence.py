"""Convergence and oscillation detection for recorded executions.

Def. 2.5 calls an activation sequence *convergent* when the induced
π-sequence is eventually constant.  On finite prefixes we use two
sound certificates:

* **Fixed point** — all channels are empty, every node's recomputed
  best response over its known routes ρ equals its current assignment,
  and every assignment has been announced.  From such a state *no*
  activation entry of *any* model can change anything, so the run has
  converged in the strongest possible sense.
* **State recurrence** — a full network state repeats.  Under a
  deterministic scheduler this certifies an oscillation (the execution
  is periodic from the first occurrence); under a randomized scheduler
  it is merely evidence (the paper-grade certificates come from
  :mod:`repro.engine.explorer`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.spp import SPPInstance
from ..models.taxonomy import CommunicationModel
from .execution import Execution, Trace
from .schedulers import RandomScheduler, Scheduler
from .state import NetworkState

__all__ = [
    "RunResult",
    "find_oscillation_evidence",
    "find_state_recurrence",
    "is_fixed_point",
    "simulate",
]


def is_fixed_point(instance: SPPInstance, state: NetworkState) -> bool:
    """True when no activation entry whatsoever can change the state."""
    if not state.is_quiescent():
        return False
    rho = state.rho
    for node in instance.nodes:
        if node == instance.dest:
            expected = (instance.dest,)
        else:
            expected = instance.best_choice(
                node,
                [
                    instance.feasible_extension(node, rho[channel])
                    for channel in instance.in_channels(node)
                ],
            )
        if state.path_of(node) != expected:
            return False
        if state.last_announced(node) != expected:
            # An unannounced assignment would emit messages on the
            # node's next activation, so the state is not yet fixed.
            return False
    return True


def find_state_recurrence(trace: Trace) -> "tuple | None":
    """Return ``(first, second)`` step indices of a repeated state, if any."""
    seen: dict = {trace.initial_state: -1}
    for index, state in enumerate(trace.states):
        if state in seen:
            return (seen[state], index)
        seen[state] = index
    return None


def find_oscillation_evidence(trace: Trace) -> "tuple | None":
    """A state recurrence whose loop visits ≥ 2 distinct assignments.

    A repeated full state alone can be a no-op step (e.g. reading an
    empty channel); genuine oscillation evidence additionally requires
    the loop between the occurrences to change the path assignment.
    Replaying the loop forever yields a nonconvergent execution, so
    under a fair schedule this is a certificate of divergence.
    Returns ``(first, second)`` step indices, or ``None``.
    """
    positions: dict = {trace.initial_state: [-1]}
    assignments = trace.pi_sequence
    for index, state in enumerate(trace.states):
        for earlier in positions.get(state, ()):
            loop = assignments[earlier + 1 : index + 1]
            if len(set(loop)) >= 2:
                return (earlier, index)
        positions.setdefault(state, []).append(index)
    return None


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated execution."""

    instance_name: str
    model_name: str
    converged: bool
    steps: int
    final_assignment: dict
    recurrence: "tuple | None" = None
    trace: "Trace | None" = None

    @property
    def stable(self) -> bool:
        """Alias: did the run reach a fixed point within budget?"""
        return self.converged


def simulate(
    instance: SPPInstance,
    model: CommunicationModel,
    scheduler: "Scheduler | None" = None,
    seed: int = 0,
    max_steps: int = 2000,
    keep_trace: bool = False,
) -> RunResult:
    """Run one fair execution until fixed point or step budget.

    With the default :class:`RandomScheduler`, a convergent instance
    virtually always reaches its fixed point well within the budget;
    budget exhaustion on a divergent instance is *evidence* of
    oscillation (pair with the explorer for proof).
    """
    scheduler = scheduler or RandomScheduler(instance, model, seed=seed)
    execution = Execution(instance)
    converged = False
    steps = 0
    for steps in range(1, max_steps + 1):
        execution.step(scheduler.next_entry(execution.state))
        if is_fixed_point(instance, execution.state):
            converged = True
            break
    return RunResult(
        instance_name=instance.name,
        model_name=model.name,
        converged=converged,
        steps=steps,
        final_assignment=execution.state.pi,
        recurrence=find_state_recurrence(execution.trace) if not converged else None,
        trace=execution.trace if keep_trace else None,
    )
