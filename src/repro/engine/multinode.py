"""Bounded model checking with simultaneous node activation (Ex. A.6).

The paper fixes one updating node per step and only sketches the
multi-node case: simultaneous polling is *strictly stronger* than
single-node polling (DISAGREE oscillates when x and y always poll in
lockstep), but with the modified fairness — each node also activates
alone infinitely often — the single-node arguments return.

This module extends the bounded exploration to
``NodeConcurrency.UNRESTRICTED`` models and decides both halves
mechanically.  Entry enumeration composes per-node channel choices over
every non-empty node subset, so it is exponential in the node count —
intended for gadget-sized instances (the cap is explicit).

Fairness criterion: as in :mod:`repro.engine.explorer`, plus an
optional *solo-activation* requirement (the paper's modified fairness):
each node must be activated alone somewhere in the cycle, or be
permanently inert there (all channels empty at some state of the SCC).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.spp import SPPInstance
from ..models.dimensions import NodeConcurrency
from ..models.taxonomy import CommunicationModel
from .activation import ActivationEntry
from .execution import apply_entry
from .explorer import Explorer, ExplorationResult
from .state import NetworkState

__all__ = ["MultiNodeExplorer", "can_oscillate_multinode"]


class MultiNodeExplorer(Explorer):
    """Exhaustive bounded search allowing simultaneous activations."""

    def __init__(
        self,
        instance: SPPInstance,
        model: CommunicationModel,
        queue_bound: int = 2,
        max_states: int = 200_000,
        max_group: "int | None" = None,
        require_solo_activations: bool = False,
    ) -> None:
        if model.concurrency is not NodeConcurrency.UNRESTRICTED:
            raise ValueError(
                "MultiNodeExplorer requires an UNRESTRICTED-concurrency model"
            )
        # Bypass the single-node guard of the base class.
        self.instance = instance
        self.model = model
        self.queue_bound = queue_bound
        self.max_states = max_states
        self.max_group = max_group or len(instance.nodes)
        self.require_solo_activations = require_solo_activations
        self._dest_channels = frozenset(
            channel for channel in instance.channels if channel[1] == instance.dest
        )

    # ------------------------------------------------------------------
    def _node_choices(self, node, state: NetworkState):
        """Per-node (channels, reads, drops) alternatives, incl. kickoff."""
        choices = []
        for channels in self._channel_sets(node, state):
            per_channel = []
            for channel in channels:
                pending = state.message_count(channel)
                combos = []
                for count in self._count_options(pending):
                    effective = (
                        pending
                        if count == float("inf")
                        else min(count, pending)
                    )
                    for dropped in self._drop_options(effective):
                        combos.append((channel, count, dropped))
                per_channel.append(combos)
            for combo in itertools.product(*per_channel):
                reads = {channel: count for channel, count, _ in combo}
                drops = {
                    channel: dropped for channel, _, dropped in combo if dropped
                }
                choices.append((channels, reads, drops))
        if node == self.instance.dest and state.last_announced(node) != (node,):
            kickoff = self._destination_kickoff(state)
            if kickoff is not None:
                choices.append(
                    (tuple(kickoff.channels), kickoff.reads, kickoff.drops)
                )
        return choices

    def successors(self, state: NetworkState):
        per_node = {
            node: self._node_choices(node, state)
            for node in self.instance.sorted_nodes
        }
        active_nodes = [node for node, choices in per_node.items() if choices]
        for size in range(1, min(self.max_group, len(active_nodes)) + 1):
            for group in itertools.combinations(active_nodes, size):
                for assignment in itertools.product(
                    *(per_node[node] for node in group)
                ):
                    channels: list = []
                    reads: dict = {}
                    drops: dict = {}
                    for node_channels, node_reads, node_drops in assignment:
                        channels.extend(node_channels)
                        reads.update(node_reads)
                        drops.update(node_drops)
                    entry = ActivationEntry(
                        nodes=group,
                        channels=channels,
                        reads=reads,
                        drops=drops,
                    )
                    next_state, _ = apply_entry(self.instance, state, entry)
                    yield entry, self.canonicalize(next_state)

    # ------------------------------------------------------------------
    def _fairness_ok(self, component, states, edges) -> bool:
        if not super()._fairness_ok(component, states, edges):
            return False
        if not self.require_solo_activations:
            return True
        members = set(component)
        solo: set = set()
        for source in component:
            for entry, target in edges.get(source, ()):
                if target in members and len(entry.nodes) == 1:
                    solo.add(entry.node)
        for node in self.instance.nodes:
            relevant = [
                channel
                for channel in self.instance.in_channels(node)
                if channel not in self._dest_channels
            ]
            if not relevant:
                continue
            inert_somewhere = any(
                all(not states[s].channel_contents(c) for c in relevant)
                for s in component
            )
            if node not in solo and not inert_somewhere:
                return False
        return True


def can_oscillate_multinode(
    instance: SPPInstance,
    model: CommunicationModel,
    queue_bound: int = 2,
    max_states: int = 200_000,
    require_solo_activations: bool = False,
) -> ExplorationResult:
    """Decide multi-node oscillation reachability (bounded)."""
    if model.concurrency is not NodeConcurrency.UNRESTRICTED:
        model = model.with_concurrency(NodeConcurrency.UNRESTRICTED)
    explorer = MultiNodeExplorer(
        instance,
        model,
        queue_bound=queue_bound,
        max_states=max_states,
        require_solo_activations=require_solo_activations,
    )
    return explorer.explore()
