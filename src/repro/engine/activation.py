"""Activation-sequence entries — the quadruples (U, X, f, g) of Def. 2.2.

An :class:`ActivationEntry` records, for one step of the algorithm:

* ``U`` — the set of nodes updating this step;
* ``X`` — the set of channels processed (each channel's receiving end
  must be in ``U``);
* ``f`` — per channel, how many messages to process (a non-negative
  integer or :data:`INFINITY` for "all");
* ``g`` — per channel, the 1-based indices of processed messages that
  the channel *drops* (only ever non-empty on unreliable channels).

Entries are immutable and hashable, so schedules, traces, and the
bounded model checker can treat them as values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.paths import Node
from ..core.spp import Channel, SPPInstance

__all__ = ["INFINITY", "ActivationEntry", "Schedule"]

#: The f(c) = ∞ sentinel ("process every message in the channel").
INFINITY = float("inf")


@dataclass(frozen=True)
class ActivationEntry:
    """One step's quadruple ``(U, X, f, g)``, validated per Def. 2.2."""

    nodes: frozenset
    channels: frozenset
    _reads: tuple
    _drops: tuple

    def __init__(
        self,
        nodes: Iterable[Node],
        channels: Iterable[Channel] = (),
        reads: Mapping | None = None,
        drops: Mapping | None = None,
    ) -> None:
        node_set = frozenset(nodes)
        channel_set = frozenset(tuple(c) for c in channels)
        read_map = {tuple(c): f for c, f in (reads or {}).items()}
        drop_map = {
            tuple(c): frozenset(g) for c, g in (drops or {}).items() if g
        }
        for channel in channel_set:
            read_map.setdefault(channel, 1)
        self._validate(node_set, channel_set, read_map, drop_map)
        object.__setattr__(self, "nodes", node_set)
        object.__setattr__(self, "channels", channel_set)
        object.__setattr__(
            self,
            "_reads",
            tuple(sorted(read_map.items(), key=lambda item: repr(item[0]))),
        )
        object.__setattr__(
            self,
            "_drops",
            tuple(
                sorted(
                    ((c, tuple(sorted(g))) for c, g in drop_map.items()),
                    key=lambda item: repr(item[0]),
                )
            ),
        )
        # Hoisted canonical orders: the engine consumes these on every
        # applied step, so they are computed once here instead of being
        # re-sorted per step (``_reads`` is already repr-sorted by
        # channel, which makes the channel order free).
        object.__setattr__(
            self, "_sorted_nodes", tuple(sorted(node_set, key=repr))
        )
        object.__setattr__(
            self, "_sorted_channels", tuple(c for c, _ in self._reads)
        )

    @staticmethod
    def _validate(nodes, channels, reads, drops) -> None:
        if not nodes:
            raise ValueError("an activation entry must update at least one node")
        for channel in channels:
            if len(channel) != 2:
                raise ValueError(f"malformed channel {channel!r}")
            if channel[1] not in nodes:
                raise ValueError(
                    f"channel {channel!r} is processed but its receiver is "
                    f"not among the updating nodes {sorted(map(repr, nodes))}"
                )
        if set(reads) != set(channels):
            raise ValueError("f must be defined exactly on the processed channels")
        for channel, f in reads.items():
            if f is INFINITY:
                continue
            if not isinstance(f, int) or f < 0:
                raise ValueError(f"f({channel!r}) = {f!r} is not in ℤ≥0 ∪ {{∞}}")
        for channel, g in drops.items():
            if channel not in channels:
                raise ValueError(f"drop set given for unprocessed channel {channel!r}")
            if any((not isinstance(i, int)) or i < 1 for i in g):
                raise ValueError(f"drop indices must be positive integers: {g!r}")
            f = reads[channel]
            if f == 0 and g:
                raise ValueError("g(c) must be empty when f(c) = 0")
            if f is not INFINITY and any(i > f for i in g):
                raise ValueError(
                    f"drop indices {sorted(g)} exceed f({channel!r}) = {f}"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def reads(self) -> dict:
        """The function f: channel → count (``INFINITY`` means all)."""
        return dict(self._reads)

    @property
    def drops(self) -> dict:
        """The function g: channel → frozenset of dropped indices."""
        return {c: frozenset(g) for c, g in self._drops}

    @property
    def sorted_nodes(self) -> tuple:
        """The updating nodes in the canonical (repr-sorted) step order."""
        return self._sorted_nodes

    @property
    def sorted_channels(self) -> tuple:
        """The processed channels in the canonical (repr-sorted) order."""
        return self._sorted_channels

    def read_count(self, channel: Channel) -> "int | float":
        return dict(self._reads)[tuple(channel)]

    def drop_set(self, channel: Channel) -> frozenset:
        return self.drops.get(tuple(channel), frozenset())

    @property
    def node(self) -> Node:
        """The single updating node (for one-node-per-step models)."""
        if len(self.nodes) != 1:
            raise ValueError("entry updates more than one node")
        return next(iter(self.nodes))

    def channels_of(self, node: Node) -> tuple:
        """The processed channels whose receiver is ``node``."""
        return tuple(
            sorted((c for c in self.channels if c[1] == node), key=repr)
        )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls,
        node: Node,
        channel: Channel | None = None,
        count: "int | float" = 1,
        drop: Iterable[int] = (),
    ) -> "ActivationEntry":
        """One node processing one channel (or none, if ``channel=None``)."""
        if channel is None:
            return cls(nodes=[node])
        channel = tuple(channel)
        return cls(
            nodes=[node],
            channels=[channel],
            reads={channel: count},
            drops={channel: frozenset(drop)} if drop else None,
        )

    @classmethod
    def poll_all(cls, instance: SPPInstance, node: Node) -> "ActivationEntry":
        """The REA entry: read every message from every channel of ``node``."""
        channels = instance.in_channels(node)
        return cls(
            nodes=[node],
            channels=channels,
            reads={c: INFINITY for c in channels},
        )

    @classmethod
    def read_one_each(cls, instance: SPPInstance, node: Node) -> "ActivationEntry":
        """The REO entry: read one message from every channel of ``node``."""
        channels = instance.in_channels(node)
        return cls(nodes=[node], channels=channels, reads={c: 1 for c in channels})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for channel, f in self._reads:
            dropped = dict(self._drops).get(channel)
            suffix = f" drop{list(dropped)}" if dropped else ""
            count = "∞" if f is INFINITY else f
            parts.append(f"{channel}:{count}{suffix}")
        return f"ActivationEntry(U={sorted(map(str, self.nodes))}, {', '.join(parts)})"


#: A finite prefix of an activation sequence.
Schedule = tuple
