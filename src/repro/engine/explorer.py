"""Bounded model checking of oscillation reachability.

The paper's separation results assert, for a gadget ``I`` and model
``M``, either "there is a fair activation sequence of ``M`` on ``I``
that does not converge" or "every fair activation sequence of ``M`` on
``I`` converges".  This module decides such claims *mechanically* by
exhaustive search of the reachable state graph, bounded by a channel
budget.

Fair-oscillation criterion (DESIGN.md interpretation note 5).  A fair
nonconvergent execution exists iff some reachable strongly connected
subgraph admits a closed walk that (i) visits at least two distinct
path assignments, (ii) *services* every channel — processes it with
``f ≥ 1`` on some walk edge, or passes a state in which it is empty
(reading an empty channel is a state-preserving no-op, so such reads
can be spliced into the walk to satisfy fairness), (iii) for E-scope
models, activates every node or passes a state where all of the node's
channels are simultaneously empty, and (iv) on unreliable channels,
delivers from every channel it ever drops from (Def. 2.4's drop rule).
We search SCCs of the reachable graph for these properties.

Soundness levers:

* **Destination projection** — channel contents flowing *into* the
  destination and the destination's known routes never influence any
  assignment (``π_d ≡ (d)``), so they are erased from state keys;
  fairness for those channels is trivially satisfiable by no-op reads.
* **Polling collapse** — in *reliable* count-A models only the newest
  message of a channel is ever observable, so channel contents collapse
  to their last element (unreliable polls can deliver intermediate
  messages via drops, so no collapse there).
* **Drop canonicalization** — in U models, a processed batch's effect
  is determined by the largest surviving index, so only ``i + 1`` drop
  patterns per batch are expanded instead of ``2^i``.

A result with ``complete=True`` is a proof (relative to the bound);
``complete=False`` with a witness is still a proof of oscillation,
while ``complete=False`` without one is inconclusive and the caller
should raise the bounds.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field, replace

from ..config import RunConfig, resolve_config
from ..core.paths import EPSILON, Node
from ..core.spp import SPPInstance
from ..models.dimensions import MessageCount, NeighborScope, Reliability
from ..models.taxonomy import CommunicationModel
from ..obs import active as _telemetry
from .activation import INFINITY, ActivationEntry
from .execution import apply_entry
from .reduction import (
    absorption_allowed,
    representative_paths,
    validate_reduction,
)
from .state import NetworkState

__all__ = [
    "ENGINE_REVISION",
    "ExplorationResult",
    "OscillationWitness",
    "Explorer",
    "can_oscillate",
]

#: Bumped whenever the search semantics change (state counts, verdict
#: logic, canonicalization) — part of every verdict-cache key so cached
#: results from an older engine are never replayed.
ENGINE_REVISION = 2


@dataclass(frozen=True)
class OscillationWitness:
    """A certified fair oscillation: a reachable cycle of states."""

    prefix: tuple  # entries leading from the initial state into the cycle
    cycle: tuple  # entries of one full period (non-empty)
    assignments: tuple  # the distinct π values visited by the cycle

    def period(self) -> int:
        return len(self.cycle)


@dataclass(frozen=True)
class ExplorationResult:
    """Outcome of a bounded exploration."""

    model_name: str
    instance_name: str
    oscillates: bool
    complete: bool
    states_explored: int
    truncated_states: int
    #: Successor expansions skipped by the partial-order reducer (0 when
    #: ``reduction="none"``); ``states_explored`` counts the *reduced*
    #: graph, so the reduction ratio is visible instead of counts
    #: silently shrinking.
    states_pruned: int = 0
    witness: "OscillationWitness | None" = None
    #: Whether this result was answered from the verdict cache —
    #: observability metadata only, excluded from equality/repr so
    #: warm and cold results stay interchangeable values.
    cache_hit: "bool | None" = field(default=None, compare=False, repr=False)

    @property
    def conclusive(self) -> bool:
        """True when the verdict is a proof (witness found, or full search)."""
        return self.oscillates or self.complete

    def as_dict(self) -> dict:
        """Machine-readable form (telemetry events, ``--json`` outputs)."""
        return {
            "model": self.model_name,
            "instance": self.instance_name,
            "oscillates": self.oscillates,
            "complete": self.complete,
            "states_explored": self.states_explored,
            "truncated_states": self.truncated_states,
            "states_pruned": self.states_pruned,
            "witness_period": (
                None if self.witness is None else self.witness.period()
            ),
            "cache": (
                None
                if self.cache_hit is None
                else ("hit" if self.cache_hit else "miss")
            ),
        }


class Explorer:
    """Exhaustive bounded search of one (instance, model) state graph.

    ``engine`` selects the execution core: ``"compiled"`` (default)
    runs the search on integer-packed states via
    :mod:`repro.engine.compiled` — same verdicts, same witnesses,
    several times faster — while ``"reference"`` runs the direct
    Def. 2.1–2.3 implementation below.  The differential tests assert
    the two are bit-identical; keep the reference path around as the
    semantics of record (cf. Daggitt–Griffin on verified reference
    models for policy-rich DBF protocols).
    """

    #: Class-level defaults so subclasses that bypass ``__init__`` (the
    #: multi-node explorer) still resolve engine/reduction attributes —
    #: subclasses run unreduced unless they opt in explicitly.
    engine = "compiled"
    reduction = "none"
    _rep_paths = None
    _absorb = False
    _pruned = 0

    def __init__(
        self,
        instance: SPPInstance,
        model: CommunicationModel,
        queue_bound: int = 3,
        max_states: int = 200_000,
        engine: str = "compiled",
        reduction: str = "ample",
    ) -> None:
        if model.concurrency.name != "ONE":
            raise ValueError("the explorer supports one-node-per-step models only")
        if engine not in ("compiled", "reference", "packed"):
            raise ValueError(f"unknown explorer engine {engine!r}")
        self.instance = instance
        self.model = model
        self.queue_bound = queue_bound
        self.max_states = max_states
        self.engine = engine
        self.reduction = validate_reduction(reduction)
        self._rep_paths = (
            representative_paths(instance) if self.reduction == "ample" else None
        )
        self._absorb = self.reduction == "ample" and absorption_allowed(model)
        self._pruned = 0
        self._dest_channels = frozenset(
            channel for channel in instance.channels if channel[1] == instance.dest
        )

    # ------------------------------------------------------------------
    # State canonicalization
    # ------------------------------------------------------------------
    def canonicalize(self, state: NetworkState) -> NetworkState:
        """Erase state components that provably cannot affect π."""
        collapse = (
            self.model.count is MessageCount.ALL
            and self.model.reliability is Reliability.RELIABLE
        )
        needs_work = any(
            state.channel_contents(channel) or state.known_route(channel)
            for channel in self._dest_channels
        )
        if not needs_work and collapse:
            needs_work = any(
                len(contents) > 1 for contents in state.channels.values()
            )
        rep = self._rep_paths
        if not needs_work and rep is not None:
            for channel, mapping in rep.items():
                known = state.known_route(channel)
                if mapping[known] != known or any(
                    mapping[m] != m
                    for m in state.channel_contents(channel)
                ):
                    needs_work = True
                    break
        if not needs_work:
            return state
        channels = state.channels
        rho = state.rho
        for channel in self._dest_channels:
            channels[channel] = ()
            rho[channel] = EPSILON
        if collapse:
            # Reliable polling reads are all-or-nothing with g ≡ ∅, so
            # only a channel's newest message is ever observable.  (Not
            # sound for unreliable polling: drops can deliver any
            # intermediate message.)
            for channel, contents in channels.items():
                if len(contents) > 1:
                    channels[channel] = (contents[-1],)
        if rep is not None:
            # ext-projection quotient (see repro.engine.reduction):
            # routes on a channel act only through their feasible
            # extension, so each is replaced by its class representative.
            for channel, mapping in rep.items():
                rho[channel] = mapping[rho[channel]]
                contents = channels[channel]
                if contents:
                    channels[channel] = tuple(mapping[m] for m in contents)
        return NetworkState.from_instance_order(
            self.instance,
            pi=state.pi,
            rho=rho,
            channels=channels,
            announced=state.announced,
        )

    # ------------------------------------------------------------------
    # Successor enumeration
    # ------------------------------------------------------------------
    def _channel_sets(self, node: Node, state: NetworkState) -> tuple:
        """Behaviourally distinct channel sets for activating ``node``.

        Channels that are currently empty contribute nothing to a step
        (processing min(f, 0) = 0 messages never changes ρ), so choices
        are enumerated over the *non-empty* in-channels only; a step
        touching no non-empty channel is a no-op and is pruned entirely
        — except that the destination's very first activation announces
        itself without needing any input, which is special-cased by the
        caller.
        """
        in_channels = self.instance.in_channels(node)
        busy = tuple(
            channel
            for channel in in_channels
            if state.channel_contents(channel)
        )
        scope = self.model.scope
        if scope is NeighborScope.ONE:
            return tuple((channel,) for channel in busy)
        if scope is NeighborScope.EVERY:
            # Legality demands the full set; empty members are no-ops.
            return (in_channels,) if busy else ()
        subsets = []
        for size in range(1, len(busy) + 1):
            subsets.extend(itertools.combinations(busy, size))
        return tuple(subsets)

    def _count_options(self, pending: int) -> tuple:
        """Behaviourally distinct f(c) choices for a channel holding
        ``pending`` messages.

        ``f > m_c`` behaves exactly like ``f = m_c`` (and like ∞), so one
        representative per processed-count suffices.  ``f = 0`` reads
        are no-ops per channel; they are covered by omitting the channel
        in M scope, pointless in 1 scope (the whole step would be a
        no-op), but *essential* in E scope with count S, where the node
        is forced to list every channel yet may skip any of them — this
        is exactly what lets RES mimic RMS (Prop. 3.4).
        """
        kind = self.model.count
        if kind is MessageCount.ONE:
            return (1,)
        if kind is MessageCount.ALL:
            return (INFINITY,)
        if pending == 0:
            return (1,)
        behaviours = list(range(1, pending + 1))
        behaviours[-1] = INFINITY  # canonical "take everything"
        if (
            kind is MessageCount.SOME
            and self.model.scope is NeighborScope.EVERY
        ):
            behaviours.insert(0, 0)
        return tuple(behaviours)

    def _drop_options(self, effective: int) -> tuple:
        """Canonical drop sets for one processed batch of size ``effective``."""
        if self.model.reliability is Reliability.RELIABLE or effective == 0:
            return (frozenset(),)
        options = []
        for survivor in range(effective, 0, -1):
            # Largest surviving index = survivor; canonical g drops the tail.
            options.append(frozenset(range(survivor + 1, effective + 1)))
        options.append(frozenset(range(1, effective + 1)))  # drop everything
        return tuple(options)

    def _destination_kickoff(self, state: NetworkState):
        """The destination's first activation (announces (d) from nothing)."""
        dest = self.instance.dest
        if state.last_announced(dest) == (dest,):
            return None
        in_channels = self.instance.in_channels(dest)
        scope = self.model.scope
        if scope is NeighborScope.ONE and in_channels:
            channels: tuple = (in_channels[0],)
        elif scope is NeighborScope.EVERY:
            channels = in_channels
        else:
            channels = ()
        count: "int | float" = 1
        if self.model.count is MessageCount.ALL:
            count = INFINITY
        return ActivationEntry(
            nodes=[dest],
            channels=channels,
            reads={channel: count for channel in channels},
        )

    def _combo_count(self, pending: int) -> int:
        """How many ``(f, g)`` choices one channel with ``pending``
        messages contributes — the counting twin of the enumeration in
        :meth:`successors`."""
        total = 0
        for count in self._count_options(pending):
            effective = pending if count is INFINITY else min(count, pending)
            total += len(self._drop_options(effective))
        return total

    def _absorption(self, state: NetworkState):
        """The forced absorption step at ``state``, if one applies.

        Mirror of ``CompiledExplorer._absorption`` (same channel scan
        order, same guards) — see :mod:`repro.engine.reduction` for the
        soundness argument.  The successor is built directly: reading a
        front message that is ext-equivalent to the known route cannot
        change ρ's class, the best response, or announcements.
        """
        rep = self._rep_paths
        count_all = self.model.count is MessageCount.ALL
        dest = self.instance.dest
        for channel in self.instance.channels:
            contents = state.channel_contents(channel)
            if not contents:
                continue
            if count_all and len(contents) != 1:
                continue
            mapping = rep[channel]
            if mapping[contents[0]] != mapping[state.known_route(channel)]:
                continue
            receiver = channel[1]
            if receiver == dest:
                continue
            count: "int | float" = INFINITY if count_all else 1
            entry = ActivationEntry(
                nodes=[receiver], channels=(channel,), reads={channel: count}
            )
            channels = state.channels
            channels[channel] = contents[1:]
            next_state = NetworkState.from_instance_order(
                self.instance,
                pi=state.pi,
                rho=state.rho,
                channels=channels,
                announced=state.announced,
            )
            return entry, self.canonicalize(next_state)
        return None

    def _full_entry_count(self, state: NetworkState) -> int:
        """How many entries unreduced enumeration would yield here."""
        total = 0 if self._destination_kickoff(state) is None else 1
        scope = self.model.scope
        for node in self.instance.sorted_nodes:
            in_channels = self.instance.in_channels(node)
            counts = [
                self._combo_count(state.message_count(channel))
                for channel in in_channels
                if state.channel_contents(channel)
            ]
            if not counts:
                continue
            if scope is NeighborScope.ONE:
                total += sum(counts)
            elif scope is NeighborScope.EVERY:
                product = 1
                for channel in in_channels:
                    product *= self._combo_count(state.message_count(channel))
                total += product
            else:
                product = 1
                for n in counts:
                    product *= n + 1
                total += product - 1
        return total

    def successors(self, state: NetworkState):
        """Yield ``(entry, next_state)`` for every behaviourally distinct,
        non-no-op entry."""
        if self._absorb:
            forced = self._absorption(state)
            if forced is not None:
                self._pruned += self._full_entry_count(state) - 1
                yield forced
                return
        kickoff = self._destination_kickoff(state)
        if kickoff is not None:
            next_state, _ = apply_entry(self.instance, state, kickoff)
            yield kickoff, self.canonicalize(next_state)
        for node in self.instance.sorted_nodes:
            for channels in self._channel_sets(node, state):
                per_channel: list = []
                for channel in channels:
                    pending = state.message_count(channel)
                    combos = []
                    for count in self._count_options(pending):
                        effective = (
                            pending if count is INFINITY else min(count, pending)
                        )
                        for dropped in self._drop_options(effective):
                            combos.append((channel, count, dropped))
                    per_channel.append(combos)
                for combo in itertools.product(*per_channel):
                    reads = {channel: count for channel, count, _ in combo}
                    drops = {
                        channel: dropped
                        for channel, _, dropped in combo
                        if dropped
                    }
                    entry = ActivationEntry(
                        nodes=[node], channels=channels, reads=reads, drops=drops
                    )
                    next_state, _ = apply_entry(self.instance, state, entry)
                    yield entry, self.canonicalize(next_state)

    # ------------------------------------------------------------------
    # Reachability + SCC analysis
    # ------------------------------------------------------------------
    def explore(self) -> ExplorationResult:
        """Search for a fair oscillation; see the module docstring.

        A fair cycle found in a *partial* reachable graph is already a
        proof (its states and edges are real), so the search checks for
        one at geometrically spaced checkpoints and returns early on
        success instead of always materializing the full graph.
        """
        # Fast path: the packed-integer port of this exact search.
        # Subclasses (e.g. the multi-node explorer) override successor
        # generation, so only the base class may take it.
        if self.engine == "compiled" and type(self) is Explorer:
            from .compiled import CompiledExplorer

            return CompiledExplorer(
                self.instance,
                self.model,
                queue_bound=self.queue_bound,
                max_states=self.max_states,
                reduction=self.reduction,
            ).explore()
        if self.engine == "packed" and type(self) is Explorer:
            from .packed import PackedExplorer

            return PackedExplorer(
                self.instance,
                self.model,
                queue_bound=self.queue_bound,
                max_states=self.max_states,
                reduction=self.reduction,
            ).explore()
        return self._explore_reference()

    def _explore_reference(self) -> ExplorationResult:
        """The reference (rich-value) search loop."""
        tel = _telemetry()
        search_start = time.perf_counter()
        self._pruned = 0
        initial = self.canonicalize(NetworkState.initial(self.instance))
        index_of: dict = {initial: 0}
        states: list = [initial]
        edges: dict = {}  # state index → list of (entry, target index)
        parent: dict = {0: None}  # for witness prefix reconstruction
        truncated = 0
        # Depth-first: oscillation cycles sit a dozen-odd steps deep
        # (kickoff, route discovery, then the loop), which DFS reaches
        # immediately; positives in unreliable models come from the
        # reliable-twin pre-pass in :func:`can_oscillate` instead.
        frontier = [0]
        overflow = False
        checkpoint = 1024

        def result(witness, complete) -> ExplorationResult:
            tel.timing("explore.search", time.perf_counter() - search_start)
            return ExplorationResult(
                model_name=self.model.name,
                instance_name=self.instance.name,
                oscillates=witness is not None,
                complete=complete,
                states_explored=len(states),
                truncated_states=truncated,
                states_pruned=self._pruned,
                witness=witness,
            )

        while frontier:
            current = frontier.pop()
            adjacency: list = []
            for entry, nxt in self.successors(states[current]):
                if nxt.total_queued() > self.queue_bound * max(
                    1, len(self.instance.channels)
                ) or any(
                    len(contents) > self.queue_bound
                    for contents in nxt.channels.values()
                ):
                    truncated += 1
                    continue
                if nxt not in index_of:
                    if len(states) >= self.max_states:
                        overflow = True
                        truncated += 1
                        continue
                    index_of[nxt] = len(states)
                    states.append(nxt)
                    parent[index_of[nxt]] = (current, entry)
                    frontier.append(index_of[nxt])
                adjacency.append((entry, index_of[nxt]))
            edges[current] = adjacency
            if len(states) >= checkpoint:
                checkpoint *= 4
                if tel.enabled:
                    tel.heartbeat(
                        "explore",
                        instance=self.instance.name,
                        model=self.model.name,
                        engine="reference",
                        states=len(states),
                        pruned=self._pruned,
                        truncated=truncated,
                        frontier=len(frontier),
                        elapsed_s=round(
                            time.perf_counter() - search_start, 6
                        ),
                    )
                witness = self._find_fair_oscillation(states, edges, parent)
                if witness is not None:
                    return result(witness, complete=False)

        witness = self._find_fair_oscillation(states, edges, parent)
        return result(witness, complete=(truncated == 0 and not overflow))

    # ------------------------------------------------------------------
    def _sccs(self, node_count: int, edges: dict):
        """Iterative Tarjan; yields lists of state indices."""
        index_counter = itertools.count()
        indexes: dict = {}
        lowlink: dict = {}
        on_stack: set = set()
        stack: list = []

        for root in range(node_count):
            if root in indexes:
                continue
            work = [(root, iter(edges.get(root, ())))]
            indexes[root] = lowlink[root] = next(index_counter)
            stack.append(root)
            on_stack.add(root)
            while work:
                vertex, iterator = work[-1]
                advanced = False
                for _, target in iterator:
                    if target not in indexes:
                        indexes[target] = lowlink[target] = next(index_counter)
                        stack.append(target)
                        on_stack.add(target)
                        work.append((target, iter(edges.get(target, ()))))
                        advanced = True
                        break
                    if target in on_stack:
                        lowlink[vertex] = min(lowlink[vertex], indexes[target])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent_vertex = work[-1][0]
                    lowlink[parent_vertex] = min(
                        lowlink[parent_vertex], lowlink[vertex]
                    )
                if lowlink[vertex] == indexes[vertex]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == vertex:
                            break
                    yield component

    def _entry_services(self, entry: ActivationEntry) -> frozenset:
        """Channels genuinely attempted (f ≥ 1) by this entry."""
        return frozenset(
            channel for channel, count in entry.reads.items() if count != 0
        )

    def _fairness_ok(self, component: list, states, edges) -> bool:
        members = set(component)
        inner_edges = [
            (source, entry, target)
            for source in component
            for entry, target in edges.get(source, ())
            if target in members
        ]
        relevant = [
            channel
            for channel in self.instance.channels
            if channel not in self._dest_channels
        ]
        empty_somewhere = {
            channel
            for channel in relevant
            if any(not states[s].channel_contents(channel) for s in component)
        }
        serviced = set()
        dropped_from: set = set()
        delivered_from: set = set()
        activated: set = set()
        full_activation: set = set()
        for source, entry, _ in inner_edges:
            attempts = self._entry_services(entry)
            serviced |= attempts
            for node in entry.nodes:
                activated.add(node)
                in_channels = set(self.instance.in_channels(node))
                if in_channels and in_channels <= attempts:
                    full_activation.add(node)
            for channel in attempts:
                dropped = entry.drop_set(channel)
                count = entry.reads[channel]
                pending = states[source].message_count(channel)
                batch = pending if count is INFINITY else min(count, pending)
                if any(index in dropped for index in range(1, batch + 1)):
                    dropped_from.add(channel)
                if any(
                    index not in dropped for index in range(1, batch + 1)
                ):
                    delivered_from.add(channel)
        for channel in relevant:
            if channel not in serviced and channel not in empty_somewhere:
                return False
        if self.model.scope is NeighborScope.EVERY:
            for node in self.instance.nodes:
                in_channels = set(self.instance.in_channels(node)) - self._dest_channels
                if not in_channels:
                    continue
                all_empty_somewhere = any(
                    all(not states[s].channel_contents(c) for c in in_channels)
                    for s in component
                )
                if node not in full_activation and not all_empty_somewhere:
                    return False
        if self.model.reliability is Reliability.UNRELIABLE:
            for channel in dropped_from:
                if channel not in delivered_from and channel not in empty_somewhere:
                    return False
        return True

    def _find_fair_oscillation(self, states, edges, parent):
        for component in self._sccs(len(states), edges):
            members = set(component)
            has_inner_edge = any(
                target in members
                for source in component
                for _, target in edges.get(source, ())
            )
            if not has_inner_edge:
                continue
            assignments = {states[s].assignment_key for s in component}
            if len(assignments) < 2:
                continue
            if not self._fairness_ok(component, states, edges):
                continue
            return self._build_witness(component, states, edges, parent)
        return None

    # ------------------------------------------------------------------
    def _build_witness(self, component, states, edges, parent) -> OscillationWitness:
        members = set(component)
        anchor = min(component)

        def path_within(start: int, goal: int) -> list:
            """BFS inside the SCC; returns a list of (entry, state index)."""
            if start == goal:
                return []
            queue = [start]
            back: dict = {start: None}
            while queue:
                current = queue.pop(0)
                for entry, target in edges.get(current, ()):
                    if target in members and target not in back:
                        back[target] = (current, entry)
                        if target == goal:
                            steps = []
                            cursor = goal
                            while back[cursor] is not None:
                                previous, entry_taken = back[cursor]
                                steps.append((entry_taken, cursor))
                                cursor = previous
                            steps.reverse()
                            return steps
                        queue.append(target)
            raise AssertionError("SCC members must be mutually reachable")

        # Build one period: visit a state with a different π, then return.
        anchor_pi = states[anchor].assignment_key
        other = next(
            s for s in component if states[s].assignment_key != anchor_pi
        )
        period = path_within(anchor, other) + path_within(other, anchor)
        cycle_entries = tuple(entry for entry, _ in period)

        # Reconstruct a prefix from the initial state to the anchor.
        prefix_entries = []
        cursor = anchor
        while parent.get(cursor) is not None:
            previous, entry = parent[cursor]
            prefix_entries.append(entry)
            cursor = previous
        prefix_entries.reverse()

        visited_assignments = {anchor_pi, states[other].assignment_key}
        return OscillationWitness(
            prefix=tuple(prefix_entries),
            cycle=cycle_entries,
            assignments=tuple(sorted(visited_assignments, key=repr)),
        )


def can_oscillate(
    instance: SPPInstance,
    model: CommunicationModel,
    queue_bound: "int | None" = None,
    max_states: "int | None" = None,
    reliable_twin_first: bool = True,
    engine: "str | None" = None,
    reduction: "str | None" = None,
    cache=None,
    config: "RunConfig | None" = None,
) -> ExplorationResult:
    """Convenience wrapper: explore and report.

    For unreliable models the drop-free subgraph is searched first: by
    Prop. 3.3(1) every Rxy activation sequence is a Uxy sequence, so a
    reliable-twin witness *is* an unreliable-model witness, found in a
    state space that is orders of magnitude smaller.  Safety verdicts
    still require (and get) the full lossy search.

    ``config`` is the preferred way to tune the run: a
    :class:`repro.RunConfig` carrying the engine, partial-order
    reducer, bounds (``queue_bound``, ``step_bound`` as the state
    budget), and verdict-cache selection.  The cache — anything
    :func:`repro.engine.cache.as_cache` accepts — memoizes the result
    in the content-addressed verdict store, keyed by the instance's
    canonical hash plus the search parameters (the ``engine`` is *not*
    part of the key: compiled and reference runs are bit-identical by
    construction).  The individual keyword arguments are a deprecated
    shim kept for older callers; passing any of them emits a
    :class:`DeprecationWarning` and overrides the config field.
    """
    config = resolve_config(
        config,
        caller="can_oscillate",
        queue_bound=queue_bound,
        max_states=max_states,
        engine=engine,
        reduction=reduction,
        cache=cache,
    )
    queue_bound = config.queue_bound
    max_states = config.max_states
    engine = config.engine
    reduction = config.reduction
    cache = config.resolved_cache()
    validate_reduction(reduction)
    tel = _telemetry()
    key = None
    cache_status = "off"
    if cache is not None:
        from .cache import as_cache, verdict_key

        cache = as_cache(cache)
        key = verdict_key(
            instance,
            model.name,
            queue_bound=queue_bound,
            max_states=max_states,
            reliable_twin_first=reliable_twin_first,
            reduction=reduction,
        )
        hit = cache.get(key, instance)
        if hit is not None:
            hit = replace(hit, cache_hit=True)
            _record_verdict(tel, hit, cache="hit")
            return hit
        cache_status = "miss"
    result = None
    if reliable_twin_first and model.reliability is Reliability.UNRELIABLE:
        twin = CommunicationModel(Reliability.RELIABLE, model.scope, model.count)
        twin_result = Explorer(
            instance,
            twin,
            queue_bound=queue_bound,
            max_states=max_states,
            engine=engine,
            reduction=reduction,
        ).explore()
        if twin_result.oscillates:
            result = ExplorationResult(
                model_name=model.name,
                instance_name=twin_result.instance_name,
                oscillates=True,
                complete=False,  # only the drop-free subgraph was searched
                states_explored=twin_result.states_explored,
                truncated_states=twin_result.truncated_states,
                states_pruned=twin_result.states_pruned,
                witness=twin_result.witness,
            )
    if result is None:
        result = Explorer(
            instance,
            model,
            queue_bound=queue_bound,
            max_states=max_states,
            engine=engine,
            reduction=reduction,
        ).explore()
    if cache is not None:
        cache.put(key, instance, result)
        result = replace(result, cache_hit=False)
    _record_verdict(tel, result, cache=cache_status)
    return result


def _record_verdict(tel, result: ExplorationResult, cache: str) -> None:
    """Counters + one ``verdict`` event for a finished exploration."""
    if not tel.enabled:
        return
    tel.count("explore.runs")
    tel.count("explore.states", result.states_explored)
    tel.count("explore.states_pruned", result.states_pruned)
    tel.event(
        "verdict",
        instance=result.instance_name,
        model=result.model_name,
        oscillates=result.oscillates,
        complete=result.complete,
        states=result.states_explored,
        pruned=result.states_pruned,
        truncated=result.truncated_states,
        cache=cache,
    )
