"""Route-announcement messages and FIFO channels.

Each directed channel ``(u, v)`` carries the full paths that ``u`` has
announced, oldest first.  The empty route ε is an explicit withdrawal.
Channels are plain immutable tuples of paths inside state snapshots;
this module provides the mutable queue used while executing a step.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from ..core.paths import Path, format_path

__all__ = ["ChannelQueue"]


class ChannelQueue:
    """A FIFO queue of announced routes for one directed channel."""

    __slots__ = ("_messages",)

    def __init__(self, messages: Iterable[Path] = ()) -> None:
        self._messages: deque = deque(tuple(m) for m in messages)

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[Path]:
        return iter(self._messages)

    def __bool__(self) -> bool:
        return bool(self._messages)

    def peek(self, index: int) -> Path:
        """The ``index``-th oldest message (0-based)."""
        return self._messages[index]

    def write(self, route: Path) -> None:
        """Append an announcement (step 4 of Def. 2.3)."""
        self._messages.append(tuple(route))

    def take(self, count: int) -> tuple:
        """Remove and return the ``count`` oldest messages, in order."""
        if count > len(self._messages):
            raise ValueError(
                f"cannot take {count} messages from a channel holding "
                f"{len(self._messages)}"
            )
        taken = tuple(self._messages.popleft() for _ in range(count))
        return taken

    def snapshot(self) -> tuple:
        """The channel contents as an immutable tuple, oldest first."""
        return tuple(self._messages)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inside = ", ".join(format_path(m) for m in self._messages)
        return f"ChannelQueue([{inside}])"
