"""Aggregation of telemetry JSONL streams → per-phase breakdown tables.

``repro stats run.jsonl [more.jsonl ...]`` reads every record, merges
the ``summary`` records (counters and span totals add; gauges keep the
last value seen), counts heartbeats and verdicts, and renders a table
grouping span wall time by *phase* — the first dot-separated segment of
the span name.  The four phases the engine emits are always shown, even
at zero, so a missing phase is visible instead of silently absent:

* ``explore`` — the bounded-search loops,
* ``reduction`` — partial-order-reduction table builds,
* ``cache`` — verdict-cache get/put latency,
* ``worker`` — parallel fan-out task time, queue wait, and idle time.

Anything else (future spans) lands in its own group after the four.
"""

from __future__ import annotations

import json

__all__ = [
    "KNOWN_PHASES",
    "TelemetryAggregate",
    "aggregate_files",
    "aggregate_records",
    "read_records",
    "render_phase_table",
    "render_counters",
]

#: Phase groups always present in the breakdown, in display order.
KNOWN_PHASES = ("explore", "reduction", "cache", "worker", "serve", "campaign")

#: Counters inlined into the phase table under their phase group (the
#: first dotted segment), so search-shape numbers — how much the packed
#: engine pruned, merged, and batched — read next to the wall time they
#: explain instead of hiding in the raw ``--counters`` dump.
PHASE_COUNTERS = (
    "explore.frontier_batches",
    "explore.orbits_merged",
    "explore.states_pruned",
    "reduction.table_builds",
    "reduction.table_hits",
    "cache.mem_hit",
    "cache.mem_evicted",
    "serve.requests",
    "serve.hot_hits",
    "serve.inflight_joins",
    "serve.batches",
    "serve.shed",
    "serve.retries",
    "serve.breaker.opened",
    "campaign.lease.claimed",
    "campaign.lease.reclaimed",
    "campaign.lease.completed",
    "campaign.lease.lost",
    "campaign.complete.duplicate",
    "campaign.shard.failed",
    "campaign.shard.quarantined",
)


class TelemetryAggregate:
    """Merged view over any number of telemetry record streams."""

    def __init__(self) -> None:
        self.runs = 0
        self.heartbeats = 0
        self.verdicts = 0
        self.summaries = 0
        self.trace_spans = 0
        self.elapsed_s = 0.0
        self.counters: dict = {}
        self.gauges: dict = {}
        self.spans: dict = {}  # name → {"calls", "total_s", "max_s"}
        # (host, pid) pairs seen on run records.  Multi-host campaign
        # streams (or one stream appended from several machines) merge
        # into one aggregate; this keeps the origins distinguishable so
        # the merge is visibly a merge, not a collision.
        self.sources: set = set()
        self.traces: set = set()
        # Mid-shard lease losses, verbatim: ``{"shard", "worker",
        # "elapsed_s"}`` per event.  These are the ones worth a warning
        # line — a worker stalled past the TTL and its shard was handed
        # to someone else while it kept computing.
        self.lease_losses: list = []

    def add_record(self, record: dict) -> None:
        kind = record.get("type")
        if kind == "campaign.lease.lost":
            self.lease_losses.append(
                {
                    "shard": record.get("shard"),
                    "worker": record.get("worker"),
                    "elapsed_s": record.get("elapsed_s"),
                }
            )
        if kind == "run":
            self.runs += 1
            self.sources.add((record.get("host"), record.get("pid")))
        elif kind == "heartbeat":
            self.heartbeats += 1
        elif kind == "verdict":
            self.verdicts += 1
        elif kind == "span":
            self.trace_spans += 1
            if record.get("trace"):
                self.traces.add(record["trace"])
        elif kind == "summary":
            self.summaries += 1
            self.elapsed_s += record.get("elapsed_s", 0.0)
            for name, value in record.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            self.gauges.update(record.get("gauges", {}))
            for name, cell in record.get("spans", {}).items():
                merged = self.spans.setdefault(
                    name, {"calls": 0, "total_s": 0.0, "max_s": 0.0}
                )
                merged["calls"] += cell.get("calls", 0)
                merged["total_s"] += cell.get("total_s", 0.0)
                merged["max_s"] = max(merged["max_s"], cell.get("max_s", 0.0))

    # -- grouping -------------------------------------------------------
    def phases(self) -> dict:
        """Span totals grouped by phase (first dotted segment).

        Returns ``{phase: {"total_s", "calls", "spans": {name: cell}}}``
        with the :data:`KNOWN_PHASES` always present.
        """
        groups: dict = {
            phase: {"total_s": 0.0, "calls": 0, "spans": {}}
            for phase in KNOWN_PHASES
        }
        for name, cell in sorted(self.spans.items()):
            phase = name.split(".", 1)[0]
            group = groups.setdefault(
                phase, {"total_s": 0.0, "calls": 0, "spans": {}}
            )
            group["total_s"] += cell["total_s"]
            group["calls"] += cell["calls"]
            group["spans"][name] = cell
        return groups

    def hosts(self) -> dict:
        """``{host: run count}`` over the merged streams."""
        counts: dict = {}
        for host, _pid in self.sources:
            key = host or "(unknown)"
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def events_dropped(self) -> int:
        """Events lost to failed sinks, per the degraded writers' counts."""
        return self.counters.get("telemetry.events_dropped", 0)

    def as_dict(self) -> dict:
        return {
            "runs": self.runs,
            "heartbeats": self.heartbeats,
            "verdicts": self.verdicts,
            "summaries": self.summaries,
            "trace_spans": self.trace_spans,
            "traces": len(self.traces),
            "hosts": self.hosts(),
            "events_dropped": self.events_dropped(),
            "elapsed_s": round(self.elapsed_s, 6),
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "phases": self.phases(),
            "lease_losses": list(self.lease_losses),
        }


def read_records(path) -> list:
    """Parse one JSONL file, skipping blank or torn lines."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn tail line from a killed writer
            if isinstance(record, dict):
                records.append(record)
    return records


def aggregate_records(records) -> TelemetryAggregate:
    aggregate = TelemetryAggregate()
    for record in records:
        aggregate.add_record(record)
    return aggregate


def aggregate_files(paths) -> TelemetryAggregate:
    aggregate = TelemetryAggregate()
    for path in paths:
        for record in read_records(path):
            aggregate.add_record(record)
    return aggregate


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _mean_ms(cell: dict) -> float:
    calls = cell["calls"]
    return (cell["total_s"] / calls * 1000.0) if calls else 0.0


def render_phase_table(aggregate: TelemetryAggregate) -> str:
    """The per-phase wall-time breakdown table."""
    groups = aggregate.phases()
    grand_total = sum(group["total_s"] for group in groups.values())
    header = (
        f"runs: {aggregate.runs}   heartbeats: {aggregate.heartbeats}   "
        f"verdicts: {aggregate.verdicts}   "
        f"wall clock: {aggregate.elapsed_s:.3f}s"
    )
    hosts = aggregate.hosts()
    if len(hosts) > 1:
        header += "   hosts: " + ", ".join(
            f"{host}×{count}" for host, count in hosts.items()
        )
    if aggregate.trace_spans:
        header += (
            f"   trace spans: {aggregate.trace_spans}"
            f" ({len(aggregate.traces)} trace(s))"
        )
    lines = [header]
    dropped = aggregate.events_dropped()
    if dropped:
        lines.append(
            f"WARNING: {dropped} event(s) dropped by degraded telemetry "
            f"sink(s) — the stream is incomplete"
        )
    for loss in aggregate.lease_losses:
        elapsed = loss.get("elapsed_s")
        elapsed_text = (
            f" after {elapsed:.1f}s" if isinstance(elapsed, (int, float)) else ""
        )
        lines.append(
            f"WARNING: lease lost mid-shard on shard {loss.get('shard')} "
            f"(worker {loss.get('worker') or '?'}){elapsed_text} — the "
            "shard re-ran elsewhere; duplicate completion is harmless"
        )
    duplicates = aggregate.counters.get("campaign.complete.duplicate", 0)
    if duplicates:
        lines.append(
            f"note: {duplicates} duplicate shard completion(s) — "
            "write-once checkpoints kept exactly one copy"
        )
    if aggregate.runs > aggregate.summaries:
        lines.append(
            f"note: {aggregate.runs - aggregate.summaries} of "
            f"{aggregate.runs} run(s) have no summary record (stream "
            f"truncated or writer still live)"
        )
    lines += [
        "",
        "phase / span              |  calls |   total s |  mean ms |  share",
        "-" * 68,
    ]
    ordered = list(KNOWN_PHASES) + sorted(
        phase for phase in groups if phase not in KNOWN_PHASES
    )
    for phase in ordered:
        group = groups[phase]
        share = group["total_s"] / grand_total if grand_total else 0.0
        lines.append(
            f"{phase:<25} | {group['calls']:>6} | {group['total_s']:>9.3f} | "
            f"{'':>8} | {share:>6.1%}"
        )
        for name, cell in group["spans"].items():
            lines.append(
                f"  {name:<23} | {cell['calls']:>6} | {cell['total_s']:>9.3f} "
                f"| {_mean_ms(cell):>8.2f} | {'':>6}"
            )
        for name in PHASE_COUNTERS:
            if name.split(".", 1)[0] != phase:
                continue
            if name not in aggregate.counters:
                continue
            value = aggregate.counters[name]
            lines.append(
                f"  {name + ' (count)':<23} | {value:>6} | {'':>9} "
                f"| {'':>8} | {'':>6}"
            )
    return "\n".join(lines)


def render_counters(aggregate: TelemetryAggregate) -> str:
    """The counter/gauge registry as aligned ``name = value`` lines."""
    lines = []
    for name, value in sorted(aggregate.counters.items()):
        lines.append(f"{name:<28} = {value}")
    for name, value in sorted(aggregate.gauges.items()):
        lines.append(f"{name:<28} = {value}  (gauge)")
    return "\n".join(lines) if lines else "(no counters recorded)"
