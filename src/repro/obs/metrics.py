"""Log-bucketed streaming histograms and the Prometheus text exposition.

The span/counter registries in :mod:`~repro.obs.telemetry` answer "how
much total time went where"; they cannot answer "what is the p99 right
now".  This module adds the missing primitive: :class:`LogHistogram`, a
fixed-memory streaming histogram with

* **geometric buckets** — boundaries at ``lowest * 10**(i/n)`` so one
  histogram covers sub-millisecond cache hits and multi-second cold
  certifications with constant relative error (one bucket ≈ ±26% at the
  default 5 buckets per decade);
* **cumulative totals** — monotone per-bucket counters plus ``count``
  and ``sum``, which is exactly the Prometheus histogram contract (the
  scraper derives windowed quantiles with ``histogram_quantile`` over
  ``rate()``);
* **a sliding window** — a ring of rotating slices so the process can
  answer "p50/p95/p99 over the last N seconds" locally, without a
  scraper (``repro top`` and the ``/metrics`` window gauges use this).

Quantiles are nearest-rank over bucket counts and report the bucket's
*upper* bound, so ``quantile(q)`` is monotone in ``q`` by construction
and never under-reports a latency.

A process-wide :class:`MetricsRegistry` (:func:`registry`) is the
default destination: every live :class:`~repro.obs.telemetry.Telemetry`
feeds its span timings into it, which is what wires ``serve.request``,
``serve.compute``, ``cache.*``, and ``worker.*`` distributions up for
``GET /metrics`` without any call-site changes.  Everything here is
stdlib-only and observation-only: no verdict depends on a histogram.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left

__all__ = [
    "LogHistogram",
    "MetricsRegistry",
    "parse_prometheus",
    "quantile_from_buckets",
    "registry",
    "render_prometheus",
]

#: Default histogram shape: 1 µs … 1000 s at 5 buckets per decade —
#: 45 buckets + one overflow, a few hundred bytes per histogram.
DEFAULT_LOWEST = 1e-6
DEFAULT_HIGHEST = 1e3
DEFAULT_BUCKETS_PER_DECADE = 5

#: Default sliding window: 5 minutes in 6 rotating slices, so windowed
#: quantiles lag at most 50 s behind a load change.
DEFAULT_WINDOW_S = 300.0
DEFAULT_SLICES = 6

#: Quantiles the window gauges on ``/metrics`` report.
WINDOW_QUANTILES = (0.5, 0.95, 0.99)


def _boundaries(lowest: float, highest: float, per_decade: int) -> tuple:
    """Geometric bucket upper bounds from ``lowest`` to ≥ ``highest``."""
    if lowest <= 0 or highest <= lowest:
        raise ValueError("need 0 < lowest < highest")
    if per_decade < 1:
        raise ValueError("buckets_per_decade must be at least 1")
    decades = math.log10(highest / lowest)
    steps = math.ceil(decades * per_decade)
    return tuple(lowest * 10 ** (i / per_decade) for i in range(steps + 1))


class LogHistogram:
    """A fixed-memory streaming histogram with a sliding window.

    Thread-safe: one lock guards both the cumulative totals and the
    window ring.  ``clock`` is injectable (tests rotate the window
    without sleeping); it must be monotone.
    """

    def __init__(
        self,
        lowest: float = DEFAULT_LOWEST,
        highest: float = DEFAULT_HIGHEST,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
        window_s: float = DEFAULT_WINDOW_S,
        slices: int = DEFAULT_SLICES,
        clock=time.monotonic,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if slices < 1:
            raise ValueError("slices must be at least 1")
        self.boundaries = _boundaries(lowest, highest, buckets_per_decade)
        self.window_s = float(window_s)
        self.slices = slices
        self._clock = clock
        self._lock = threading.Lock()
        # Cumulative (never reset): one cell per boundary + overflow.
        size = len(self.boundaries) + 1
        self.counts = [0] * size
        self.count = 0
        self.sum = 0.0
        # Window ring: (slice_start, per-bucket counts).  The head
        # slice is the one currently written to.
        self._slice_s = self.window_s / slices
        self._ring: list = [(self._clock(), [0] * size)]

    # -- recording --------------------------------------------------------
    def _bucket_index(self, value: float) -> int:
        # bisect_left on upper bounds: value == boundary lands in that
        # bucket (le semantics), anything above the top in overflow.
        return bisect_left(self.boundaries, value)

    def _rotate(self, now: float) -> None:
        head_start, _ = self._ring[-1]
        while now - head_start >= self._slice_s:
            head_start += self._slice_s
            self._ring.append((head_start, [0] * (len(self.boundaries) + 1)))
        horizon = now - self.window_s
        while len(self._ring) > 1 and self._ring[0][0] + self._slice_s <= horizon:
            self._ring.pop(0)

    def observe(self, value: float) -> None:
        """Record one sample (negative values clamp to the lowest bucket)."""
        index = self._bucket_index(value)
        with self._lock:
            now = self._clock()
            self._rotate(now)
            self.counts[index] += 1
            self.count += 1
            self.sum += value
            self._ring[-1][1][index] += 1

    # -- reading ----------------------------------------------------------
    def window_counts(self) -> list:
        """Per-bucket counts over the sliding window (a fresh list)."""
        with self._lock:
            self._rotate(self._clock())
            merged = [0] * (len(self.boundaries) + 1)
            for _, counts in self._ring:
                for index, value in enumerate(counts):
                    merged[index] += value
        return merged

    def quantile(self, q: float, *, window: bool = True) -> "float | None":
        """Nearest-rank quantile; ``None`` when no samples are in scope.

        Reports the matched bucket's upper bound (the overflow bucket
        reports the top boundary), so the estimate never under-reports
        and is monotone in ``q``.
        """
        if not 0 < q <= 1:
            raise ValueError("q must be in (0, 1]")
        if window:
            counts = self.window_counts()
        else:
            with self._lock:
                counts = list(self.counts)
        total = sum(counts)
        if not total:
            return None
        rank = max(1, math.ceil(q * total))
        seen = 0
        for index, value in enumerate(counts):
            seen += value
            if seen >= rank:
                return self.boundaries[min(index, len(self.boundaries) - 1)]
        return self.boundaries[-1]  # pragma: no cover - defensive

    def cumulative(self) -> "tuple[list, int, float]":
        """A consistent ``(per-bucket counts, count, sum)`` snapshot."""
        with self._lock:
            return list(self.counts), self.count, self.sum

    def snapshot(self) -> dict:
        """Cumulative totals plus window quantiles (for JSON surfaces)."""
        with self._lock:
            count, total = self.count, self.sum
        return {
            "count": count,
            "sum": round(total, 6),
            "quantiles": {
                f"p{int(q * 100)}": self.quantile(q)
                for q in WINDOW_QUANTILES
            },
        }


class MetricsRegistry:
    """A name → :class:`LogHistogram` registry (get-or-create, locked)."""

    def __init__(self, **histogram_kwargs) -> None:
        self._histogram_kwargs = histogram_kwargs
        self._histograms: dict = {}
        self._lock = threading.Lock()

    def histogram(self, name: str) -> LogHistogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = LogHistogram(**self._histogram_kwargs)
                    self._histograms[name] = histogram
        return histogram

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def names(self) -> list:
        with self._lock:
            return sorted(self._histograms)

    def snapshot(self) -> dict:
        return {name: self.histogram(name).snapshot() for name in self.names()}

    def clear(self) -> None:
        with self._lock:
            self._histograms.clear()


#: The process-wide registry live telemetry feeds span timings into.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process's shared metrics registry (always live, never None)."""
    return _REGISTRY


# ----------------------------------------------------------------------
# Prometheus text exposition (version 0.0.4)
# ----------------------------------------------------------------------
def _sanitize(name: str) -> str:
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return out if not out[:1].isdigit() else "_" + out


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_prometheus(
    metrics: "MetricsRegistry | None" = None,
    counters: "dict | None" = None,
    gauges: "dict | None" = None,
    prefix: str = "repro",
) -> str:
    """Render counters, gauges, and histograms as Prometheus text.

    Counters become ``<prefix>_<name>_total``, gauges ``<prefix>_<name>``,
    and each histogram ``<prefix>_<name>_seconds`` with the standard
    ``_bucket{le=...}`` / ``_sum`` / ``_count`` series plus sliding-window
    quantile gauges ``<prefix>_<name>_seconds_window{quantile=...}``
    (absent while the window is empty).
    """
    lines: list = []
    for name, value in sorted((counters or {}).items()):
        metric = f"{prefix}_{_sanitize(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in sorted((gauges or {}).items()):
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    if metrics is not None:
        for name in metrics.names():
            histogram = metrics.histogram(name)
            metric = f"{prefix}_{_sanitize(name)}_seconds"
            counts, count, total = histogram.cumulative()
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for boundary, cell in zip(histogram.boundaries, counts):
                cumulative += cell
                lines.append(
                    f'{metric}_bucket{{le="{boundary:.6g}"}} {cumulative}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{metric}_sum {_format_value(round(total, 6))}")
            lines.append(f"{metric}_count {count}")
            window = f"{metric}_window"
            quantile_lines = []
            for q in WINDOW_QUANTILES:
                value = histogram.quantile(q)
                if value is not None:
                    quantile_lines.append(
                        f'{window}{{quantile="{q:g}"}} {_format_value(value)}'
                    )
            if quantile_lines:
                lines.append(f"# TYPE {window} gauge")
                lines.extend(quantile_lines)
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus text into ``{(metric, labels): value}``.

    ``labels`` is a sorted tuple of ``(key, value)`` pairs (empty for
    unlabelled series).  Lines that do not parse are skipped — this is
    a scraping client (``repro top``), not a validator.
    """
    samples: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name_part, value_part = line.rsplit(None, 1)
            value = float(value_part)
        except ValueError:
            continue
        labels: tuple = ()
        if "{" in name_part:
            metric, _, label_blob = name_part.partition("{")
            label_blob = label_blob.rstrip("}")
            pairs = []
            for item in label_blob.split(","):
                if not item:
                    continue
                key, _, raw = item.partition("=")
                pairs.append((key.strip(), raw.strip().strip('"')))
            labels = tuple(sorted(pairs))
        else:
            metric = name_part
        samples[(metric.strip(), labels)] = value
    return samples


def quantile_from_buckets(buckets: dict, q: float) -> "float | None":
    """Nearest-rank quantile from ``{le_bound: cumulative_count}``.

    ``buckets`` is the parsed ``_bucket`` series of one histogram
    (``le`` keys as floats, ``math.inf`` for ``+Inf``); counts may be a
    *delta* between two scrapes, which is how ``repro top`` computes
    windowed quantiles.  Returns ``None`` when the total count is zero.
    """
    if not 0 < q <= 1:
        raise ValueError("q must be in (0, 1]")
    ordered = sorted(buckets.items())
    total = ordered[-1][1] if ordered else 0
    if total <= 0:
        return None
    rank = max(1, math.ceil(q * total))
    finite = [bound for bound, _ in ordered if bound != math.inf]
    top = finite[-1] if finite else math.inf
    for bound, cumulative in ordered:
        if cumulative >= rank:
            return top if bound == math.inf else bound
    return top  # pragma: no cover - defensive
