"""Distributed request tracing: trace/span IDs, propagation, span trees.

One ``repro query`` against a live daemon crosses at least two OS
processes (client → HTTP handler thread → singleflight → batch worker
thread → fan-out worker process).  Flat counters cannot say *which*
leader a joiner waited on or *which* worker ran a batch; this module
adds the causal layer:

* **IDs** — W3C-traceparent-style: a 16-byte ``trace_id`` names the
  end-to-end request, an 8-byte ``span_id`` names one timed operation
  inside it.  :meth:`TraceContext.to_traceparent` /
  :meth:`TraceContext.from_traceparent` round-trip the standard
  ``00-<trace>-<span>-01`` header form, so the IDs are also legible to
  off-the-shelf tooling.
* **Propagation** — in-process via a thread-local "current context"
  (:func:`current` / :func:`use`); across HTTP via the ``traceparent``
  header (:mod:`repro.serve`); across OS processes via the task payload
  (:class:`~repro.engine.parallel.ExplorationTask.traceparent`) and the
  :data:`TRACEPARENT_ENV_VAR` spawn environment.
* **Span events** — :func:`trace_span` wraps one operation, minting a
  child span of the current (or explicit) parent and emitting one
  schema-v2 JSONL record through the active telemetry::

      {"type": "span", "trace": ..., "span": ..., "parent": ...,
       "name": ..., "pid": ..., "start_ts": ..., "dur_s": ..., ...}

  With telemetry disabled *and* no parent in scope, the span is the
  shared no-op — untraced hot paths pay one attribute test.
* **Reconstruction** — :func:`collect_trace` /: func:`render_trace_tree`
  turn any number of telemetry JSONL streams (client + server + worker
  appenders interleave freely) back into the request's span tree:
  ``repro trace show <trace-id> --telemetry FILE...``.

Tracing is observation-only: no verdict, witness, or cache key depends
on whether a context is in scope (the telemetry differential suite pins
this with tracing armed).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from . import telemetry as _telemetry_module

__all__ = [
    "TRACEPARENT_ENV_VAR",
    "TraceContext",
    "collect_trace",
    "current",
    "from_environment",
    "new_span_id",
    "new_trace_id",
    "render_trace_tree",
    "trace_span",
    "use",
]

#: Environment variable carrying the traceparent across process spawns
#: (fan-out workers adopt it when their task payload does not carry one).
TRACEPARENT_ENV_VAR = "REPRO_TRACEPARENT"

_FLAGS = "01"  # sampled; repro traces everything it is asked to trace
_VERSION = "00"


def new_trace_id() -> str:
    """A fresh 32-hex-digit (16-byte) trace ID."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 16-hex-digit (8-byte) span ID."""
    return os.urandom(8).hex()


def _is_hex(value: str, length: int) -> bool:
    if len(value) != length:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


@dataclass(frozen=True)
class TraceContext:
    """One (trace, span) coordinate — the parent link a child span uses."""

    trace_id: str
    span_id: str

    @classmethod
    def root(cls) -> "TraceContext":
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self) -> "TraceContext":
        """A fresh span coordinate inside the same trace."""
        return TraceContext(trace_id=self.trace_id, span_id=new_span_id())

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this context."""
        return f"{_VERSION}-{self.trace_id}-{self.span_id}-{_FLAGS}"

    @classmethod
    def from_traceparent(cls, header) -> "TraceContext | None":
        """Parse a ``traceparent`` header; ``None`` on anything malformed.

        Malformed headers are dropped, not raised: a bad peer must cost
        a trace, never a request.
        """
        if not header or not isinstance(header, str):
            return None
        parts = header.strip().split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, _flags = parts
        if not _is_hex(version, 2) or version == "ff":
            return None
        if not _is_hex(trace_id, 32) or trace_id == "0" * 32:
            return None
        if not _is_hex(span_id, 16) or span_id == "0" * 16:
            return None
        return cls(trace_id=trace_id.lower(), span_id=span_id.lower())


# ----------------------------------------------------------------------
# The thread-local current context.
# ----------------------------------------------------------------------
_local = threading.local()


def current() -> "TraceContext | None":
    """The calling thread's current trace context, if any."""
    return getattr(_local, "context", None)


@contextmanager
def use(context: "TraceContext | None"):
    """Make ``context`` current for the calling thread (``None`` = no-op)."""
    if context is None:
        yield None
        return
    previous = current()
    _local.context = context
    try:
        yield context
    finally:
        _local.context = previous


def from_environment() -> "TraceContext | None":
    """The spawn-inherited context (:data:`TRACEPARENT_ENV_VAR`), if set."""
    return TraceContext.from_traceparent(os.environ.get(TRACEPARENT_ENV_VAR))


# ----------------------------------------------------------------------
# Span emission.
# ----------------------------------------------------------------------
class _NullTraceSpan:
    """Shared no-op span for untraced paths (no parent, telemetry off)."""

    __slots__ = ()

    context = None
    trace_id = None
    span_id = None

    def note(self, **fields) -> None:
        pass


_NULL_TRACE_SPAN = _NullTraceSpan()

_UNSET = object()


class TraceSpan:
    """A live span: its context plus fields accumulated before close."""

    __slots__ = ("context", "fields")

    def __init__(self, context: TraceContext, fields: dict) -> None:
        self.context = context
        self.fields = fields

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    def note(self, **fields) -> None:
        """Attach fields to the span record (e.g. outcome, hit tier)."""
        self.fields.update(fields)


@contextmanager
def trace_span(
    name: str, *, parent=_UNSET, context=None, timing: bool = False, **fields
):
    """Run one traced operation; yields a :class:`TraceSpan`.

    ``parent`` defaults to the thread's current context; pass an
    explicit :class:`TraceContext` (or ``None`` to force a fresh root).
    ``context`` instead pins the span's *own* coordinate — the client
    uses this to put its pre-minted root (already sent in the
    ``traceparent`` header) on the span record.  The span becomes the
    current context for the body, so nested ``trace_span`` calls chain
    parent links automatically.  The ``span`` JSONL record is emitted
    through the active telemetry at exit — nothing is written when
    telemetry is disabled.  ``timing=True`` additionally feeds the
    span's duration into the telemetry span registry (and thus the
    latency histograms) under ``name``.

    An exception propagating out of the body is recorded as an
    ``error`` field and re-raised — a failed request still traces.
    """
    tel = _telemetry_module.active()
    parent_context = current() if parent is _UNSET else parent
    if context is None and parent_context is None and not tel.enabled:
        # Untraced and unobserved: stay off the floor entirely.
        yield _NULL_TRACE_SPAN
        return
    if context is not None:
        parent_span = parent_context.span_id if parent_context else None
    elif parent_context is None:
        context = TraceContext.root()
        parent_span = None
    else:
        context = parent_context.child()
        parent_span = parent_context.span_id
    span = TraceSpan(context, dict(fields))
    start_wall = time.time()
    started = time.perf_counter()
    error: "BaseException | None" = None
    with use(context):
        try:
            yield span
        except BaseException as exc:
            error = exc
            raise
        finally:
            elapsed = time.perf_counter() - started
            if error is not None:
                span.fields.setdefault("error", type(error).__name__)
            if tel.enabled:
                if timing:
                    tel.timing(name, elapsed)
                tel.event(
                    "span",
                    trace=context.trace_id,
                    span=context.span_id,
                    parent=parent_span,
                    name=name,
                    pid=os.getpid(),
                    start_ts=round(start_wall, 6),
                    dur_s=round(elapsed, 6),
                    **span.fields,
                )


# ----------------------------------------------------------------------
# Reconstruction: JSONL streams → span tree.
# ----------------------------------------------------------------------
def collect_trace(records, trace_id: str) -> list:
    """Span records matching ``trace_id`` (unique-prefix matching).

    Raises :class:`ValueError` when the prefix is ambiguous across
    traces in ``records``; an exact 32-digit ID never is.
    """
    spans = [r for r in records if r.get("type") == "span" and r.get("trace")]
    matched = sorted({r["trace"] for r in spans if r["trace"].startswith(trace_id)})
    if len(matched) > 1:
        raise ValueError(
            f"trace id prefix {trace_id!r} is ambiguous: "
            + ", ".join(t[:12] + "…" for t in matched)
        )
    if not matched:
        return []
    full = matched[0]
    return [r for r in spans if r["trace"] == full]


_TREE_FIELD_SKIP = frozenset(
    {"ts", "type", "trace", "span", "parent", "name", "pid", "start_ts", "dur_s"}
)


def _render_node(record: dict, indent: str, last: bool, lines: list, children: dict):
    connector = "└─ " if last else "├─ "
    extras = " ".join(
        f"{key}={record[key]}"
        for key in sorted(record)
        if key not in _TREE_FIELD_SKIP
    )
    duration = record.get("dur_s", 0.0) * 1000.0
    host = record.get("host")
    where = f"pid {record.get('pid', '?')}"
    if host:
        where = f"{host}/{where}"
    line = f"{indent}{connector}{record.get('name', '?')}  [{where}]  {duration:.1f}ms"
    if extras:
        line += f"  {extras}"
    lines.append(line)
    child_indent = indent + ("   " if last else "│  ")
    kids = children.get(record.get("span"), [])
    for index, child in enumerate(kids):
        _render_node(child, child_indent, index == len(kids) - 1, lines, children)


def render_trace_tree(spans: list) -> str:
    """Render one trace's span records as an indented tree.

    Spans whose parent is absent from the set (a stream that was not
    collected, or the synthetic client root) render as roots — a
    partial trace degrades to a forest, never an error.  Duplicate span
    records (the same line read from two files) collapse.
    """
    if not spans:
        return "(no spans)"
    by_id: dict = {}
    for record in spans:
        by_id.setdefault(record.get("span"), record)
    spans = sorted(by_id.values(), key=lambda r: (r.get("start_ts", 0.0), r.get("span") or ""))
    children: dict = {}
    roots = []
    for record in spans:
        parent = record.get("parent")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    trace = spans[0].get("trace", "?")
    processes = {(r.get("host"), r.get("pid")) for r in spans}
    start = min(r.get("start_ts", 0.0) for r in spans)
    end = max(r.get("start_ts", 0.0) + r.get("dur_s", 0.0) for r in spans)
    lines = [
        f"trace {trace} — {len(spans)} span(s), "
        f"{len(processes)} process(es), {max(0.0, end - start) * 1000.0:.1f}ms"
    ]
    for index, root in enumerate(roots):
        _render_node(root, "", index == len(roots) - 1, lines, children)
    return "\n".join(lines)


def trace_tree_from_files(paths, trace_id: str) -> str:
    """``repro trace show``: merge JSONL files and render one trace."""
    from .stats import read_records

    records: list = []
    for path in paths:
        records.extend(read_records(path))
    spans = collect_trace(records, trace_id)
    if not spans:
        return f"(no spans for trace {trace_id!r})"
    return render_trace_tree(spans)


def list_traces(records) -> dict:
    """``{trace_id: span count}`` over ``records`` (for discovery)."""
    traces: dict = {}
    for record in records:
        if record.get("type") == "span" and record.get("trace"):
            traces[record["trace"]] = traces.get(record["trace"], 0) + 1
    return traces


def dump_trace_json(spans: list) -> str:
    """The matched span records as a JSON array (CI artifacts)."""
    ordered = sorted(spans, key=lambda r: (r.get("start_ts", 0.0), r.get("span") or ""))
    return json.dumps(ordered, indent=2, sort_keys=True)
