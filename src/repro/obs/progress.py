"""Live stderr progress for long explorations.

A :class:`ProgressReporter` subscribes to the active telemetry's
heartbeats (see :meth:`repro.obs.telemetry.Telemetry.add_listener`) and
prints one line per heartbeat to stderr.  Heartbeats fire at the
explorer's geometric state-count checkpoints, so even a multi-minute
search emits only a dozen-odd lines — safe for logs and CI, no cursor
tricks required.

Stdout is never touched: every ``repro`` command's machine-readable
output stays byte-identical with and without progress reporting.
"""

from __future__ import annotations

import sys

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Formats heartbeat events as single stderr lines."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.lines = 0

    def on_heartbeat(self, phase: str, fields: dict) -> None:
        parts = [f"[repro] {phase}"]
        where = fields.get("instance")
        model = fields.get("model")
        if where or model:
            parts.append(f"{where or '?'}/{model or '?'}")
        states = fields.get("states")
        if states is not None:
            parts.append(f"states={states:,}")
        pruned = fields.get("pruned")
        if pruned:
            parts.append(f"pruned={pruned:,}")
        frontier = fields.get("frontier")
        if frontier is not None:
            parts.append(f"frontier={frontier:,}")
        elapsed = fields.get("elapsed_s")
        if elapsed is not None:
            parts.append(f"{elapsed:.1f}s")
        print(" ".join(parts), file=self.stream, flush=True)
        self.lines += 1
