"""``repro.obs`` — runtime telemetry: spans, counters, JSONL events.

The observability layer the search/cache/fan-out stack reports into
(see ``docs/observability.md``).  Six pieces:

* :mod:`~repro.obs.telemetry` — the process-wide active sink: nested
  wall-time spans, a counter/gauge registry, and a structured JSONL
  event stream (run metadata, exploration heartbeats, per-verdict
  records, a final summary).  Disabled by default at negligible cost.
* :mod:`~repro.obs.tracing` — distributed request tracing: W3C-style
  trace/span IDs propagated across threads, HTTP hops, and worker
  processes; ``span`` JSONL records reconstructed by
  ``repro trace show``.
* :mod:`~repro.obs.metrics` — log-bucketed sliding-window histograms
  (p50/p95/p99) fed by span timings, exported as Prometheus text on
  the daemon's ``GET /metrics``.
* :mod:`~repro.obs.stats` — aggregates one or more JSONL files into a
  per-phase wall-time breakdown (``repro stats``).
* :mod:`~repro.obs.progress` — a live stderr heartbeat printer
  (``--progress`` on the search commands).
* :mod:`~repro.obs.dashboard` — ``repro top``, the live terminal
  dashboard polling ``/metrics`` or tailing a telemetry JSONL.

Everything here *observes only*: enabling telemetry changes no verdict,
witness, state count, or cache key.  ``repro.obs`` sits below the
engine in the layering — it imports nothing from the rest of the
package except the stdlib-only fault-injection leaf
:mod:`repro.faults`, so any module may report into it.  The JSONL sink
degrades rather than aborts: a write failure disables the stream with
a stderr warning and the run continues.
"""

from .metrics import (
    LogHistogram,
    MetricsRegistry,
    parse_prometheus,
    registry,
    render_prometheus,
)
from .progress import ProgressReporter
from .stats import (
    KNOWN_PHASES,
    TelemetryAggregate,
    aggregate_files,
    aggregate_records,
    read_records,
    render_counters,
    render_phase_table,
)
from .telemetry import (
    NULL,
    SCHEMA_VERSION,
    TELEMETRY_ENV_VAR,
    NullTelemetry,
    Telemetry,
    active,
    configure,
    install,
    shutdown,
)
from .tracing import (
    TRACEPARENT_ENV_VAR,
    TraceContext,
    collect_trace,
    render_trace_tree,
    trace_span,
)

__all__ = [
    "KNOWN_PHASES",
    "NULL",
    "SCHEMA_VERSION",
    "TELEMETRY_ENV_VAR",
    "TRACEPARENT_ENV_VAR",
    "LogHistogram",
    "MetricsRegistry",
    "NullTelemetry",
    "ProgressReporter",
    "Telemetry",
    "TelemetryAggregate",
    "TraceContext",
    "active",
    "aggregate_files",
    "aggregate_records",
    "collect_trace",
    "configure",
    "install",
    "parse_prometheus",
    "read_records",
    "registry",
    "render_counters",
    "render_phase_table",
    "render_prometheus",
    "render_trace_tree",
    "shutdown",
    "trace_span",
]
