"""Spans, counters, gauges, and the JSONL event sink.

One process owns one *active* telemetry object (module-level, like a
logging root).  By default it is :data:`NULL`, a no-op whose methods
cost one attribute lookup — the engines guard their per-checkpoint work
behind ``tel.enabled`` so a disabled run pays nothing measurable.
:func:`configure` swaps in a live :class:`Telemetry`, optionally backed
by a JSONL file (the CLI's ``--telemetry PATH``; the
:data:`TELEMETRY_ENV_VAR` environment variable is the fallback).

**Differential safety.**  Telemetry only *observes*: no verdict,
witness, state count, or cache key depends on whether it is enabled
(``tests/engine/test_telemetry_differential.py`` pins this).

**Spans** measure nested wall time::

    with tel.span("explore.search"):
        ...

Each span name accumulates ``(calls, total seconds, max seconds)``.
Span names are dot-separated; the first segment is the *phase* the
``repro stats`` aggregator groups by (``explore`` / ``reduction`` /
``cache`` / ``worker``).

**Counters and gauges** are a flat name → value registry: counters
accumulate (``cache.hit``, ``explore.states``), gauges keep the last
written value (``worker.count``).

**Events** are JSONL records ``{"ts": ..., "type": ..., ...}`` appended
to the sink: one ``run`` record at configure time, ``heartbeat``
records from long-running searches (geometric checkpoints, so the
stream stays small), ``verdict`` records per exploration, and one
``summary`` record — the counter/gauge/span totals — at close.  Lines
are written whole and flushed, so concurrent appenders (rare: workers
report through the parent by design) interleave without tearing on
POSIX.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import threading
import time

from ..faults import fault_point
from . import metrics as _metrics_module

__all__ = [
    "SCHEMA_VERSION",
    "TELEMETRY_ENV_VAR",
    "NULL",
    "NullTelemetry",
    "Telemetry",
    "active",
    "configure",
    "install",
    "shutdown",
]

#: Bumped whenever the JSONL record shapes change.  v2 added the
#: ``host`` field on ``run`` records and the ``span`` record type
#: (distributed tracing, :mod:`repro.obs.tracing`).
SCHEMA_VERSION = 2

#: Environment fallback for the CLI's ``--telemetry PATH``.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"


class _NullSpan:
    """Shared no-op context manager returned by the disabled sink."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled sink: every operation is a no-op.

    Kept API-compatible with :class:`Telemetry` so call sites never
    branch beyond the ``enabled`` guard they use for non-trivial work.
    """

    enabled = False

    def span(self, name: str):
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value) -> None:
        pass

    def timing(self, name: str, seconds: float) -> None:
        pass

    def event(self, type_: str, **fields) -> None:
        pass

    def heartbeat(self, phase: str, **fields) -> None:
        pass

    def add_listener(self, listener) -> None:
        pass

    def remove_listener(self, listener) -> None:
        pass

    def summary(self) -> dict:
        return {}

    def emit_summary(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL = NullTelemetry()


class _Span:
    """One timed region; records into the owning telemetry on exit."""

    __slots__ = ("_telemetry", "name", "_start")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self.name = name

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._telemetry.timing(self.name, time.perf_counter() - self._start)
        return False


class Telemetry:
    """A live instrumentation registry, optionally writing JSONL.

    ``path=None`` keeps the registry in memory only (used by the
    ``--progress`` reporter, which listens to heartbeats without a
    file).  The file is opened in append mode so several sequential
    runs can share one stream; each run is delimited by its ``run``
    and ``summary`` records.
    """

    enabled = True

    def __init__(
        self,
        path: "str | os.PathLike | None" = None,
        run: "dict | None" = None,
        metrics: "_metrics_module.MetricsRegistry | None" = None,
    ) -> None:
        self.path = None if path is None else os.fspath(path)
        self.counters: dict = {}
        self.gauges: dict = {}
        self.timings: dict = {}  # name → [calls, total_s, max_s]
        self.metrics = _metrics_module.registry() if metrics is None else metrics
        self._listeners: list = []
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self._closed = False
        self._handle = None
        self._sink_failed = False
        if self.path is not None:
            self._handle = open(self.path, "a", encoding="utf-8")
        meta = {
            "schema": SCHEMA_VERSION,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "python": sys.version.split()[0],
        }
        if run:
            meta.update(run)
        self.event("run", **meta)

    # -- registries -----------------------------------------------------
    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value) -> None:
        self.gauges[name] = value

    def timing(self, name: str, seconds: float) -> None:
        cell = self.timings.get(name)
        if cell is None:
            self.timings[name] = [1, seconds, seconds]
        else:
            cell[0] += 1
            cell[1] += seconds
            if seconds > cell[2]:
                cell[2] = seconds
        self.metrics.observe(name, seconds)

    # -- events ---------------------------------------------------------
    def event(self, type_: str, **fields) -> None:
        if self._handle is None:
            # Memory-only mode never "drops" anything — there is no sink
            # to miss.  A *failed* sink is different: every event that
            # would have been written is accounted for, so operators can
            # see exactly how much of a stream is missing.
            if self._sink_failed:
                self.count("telemetry.events_dropped")
            return
        record = {"ts": round(time.time(), 6), "type": type_}
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        try:
            line = fault_point("telemetry.emit", line)
            with self._lock:
                handle = self._handle
                if handle is None:
                    return
                handle.write(line + "\n")
                handle.flush()
        except OSError as error:
            # Telemetry observes only: a dead sink (disk full, pipe
            # closed) must never abort the run it is watching.  Drop
            # the stream, keep the in-memory registries.
            self._degrade_sink(error)

    def _degrade_sink(self, error: OSError) -> None:
        with self._lock:
            handle, self._handle = self._handle, None
            self._sink_failed = True
        if handle is None:
            return
        try:
            handle.close()
        except OSError:
            pass
        self.count("telemetry.emit_error")
        # The event that hit the failure never reached the file either.
        self.count("telemetry.events_dropped")
        print(
            f"repro: warning: telemetry sink disabled after write "
            f"failure: {error}",
            file=sys.stderr,
        )

    def heartbeat(self, phase: str, **fields) -> None:
        fields.setdefault("elapsed_s", self.elapsed())
        self.event("heartbeat", phase=phase, **fields)
        for listener in self._listeners:
            listener.on_heartbeat(phase, fields)

    # -- listeners (live progress reporters) ----------------------------
    def add_listener(self, listener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- lifecycle ------------------------------------------------------
    def elapsed(self) -> float:
        return round(time.perf_counter() - self._started, 6)

    def summary(self) -> dict:
        return {
            "elapsed_s": self.elapsed(),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": {
                name: {
                    "calls": calls,
                    "total_s": round(total, 6),
                    "max_s": round(peak, 6),
                }
                for name, (calls, total, peak) in sorted(self.timings.items())
            },
        }

    def emit_summary(self) -> None:
        self.event("summary", **self.summary())

    def close(self) -> None:
        """Emit the final summary record and release the sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.emit_summary()
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ----------------------------------------------------------------------
# The process-wide active telemetry.
# ----------------------------------------------------------------------
_active: "Telemetry | NullTelemetry" = NULL


def active() -> "Telemetry | NullTelemetry":
    """The process's current telemetry (the no-op sink by default)."""
    return _active


def install(telemetry) -> "Telemetry | NullTelemetry":
    """Swap the active telemetry; returns the previous one (for tests)."""
    global _active
    previous = _active
    _active = telemetry
    return previous


def configure(
    path: "str | os.PathLike | None" = None,
    run: "dict | None" = None,
) -> Telemetry:
    """Activate a live telemetry writing to ``path`` (or memory-only)."""
    telemetry = Telemetry(path, run=run)
    install(telemetry)
    return telemetry


def shutdown() -> None:
    """Close and deactivate the live telemetry, if one is installed."""
    global _active
    current = _active
    _active = NULL
    current.close()
