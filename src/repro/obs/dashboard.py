"""``repro top`` — a live terminal dashboard over the serving tier.

Two sources, one frame format:

* **Poll mode** (``repro top --url http://host:port``) scrapes the
  daemon's ``GET /metrics`` every interval.  Counters become rates by
  differencing consecutive scrapes; latency quantiles come from the
  exporter's sliding-window gauges, falling back to bucket-delta
  quantiles when the window series is absent.
* **Tail mode** (``repro top --telemetry run.jsonl``) follows a
  telemetry JSONL stream and derives the same frame from the ``span``
  records inside the window — useful for a daemon whose ``/metrics``
  port is unreachable, or to replay an incident from its stream.

Everything below the I/O edge is pure (``build_poll_frame`` /
``build_tail_frame`` / ``render_frame``), so the dashboard is testable
without a server or a TTY.  On a TTY the screen is redrawn in place;
piped output degrades to sequential frames (safe for logs).
"""

from __future__ import annotations

import math
import time

from .metrics import parse_prometheus, quantile_from_buckets
from .stats import read_records

__all__ = [
    "build_poll_frame",
    "build_tail_frame",
    "render_frame",
    "run_dashboard",
]

#: Hit tiers shown in the breakdown bar, in display order.
_TIERS = ("hot_hits", "mem_hits", "disk_hits", "computed", "joined")

_QUANTILES = (0.5, 0.95, 0.99)


def _sample(samples: dict, metric: str, labels: tuple = ()) -> "float | None":
    return samples.get((metric, labels))


def _counter(samples: dict, name: str) -> float:
    return _sample(samples, f"repro_serve_{name}_total") or 0.0


def _histogram_buckets(samples: dict, metric: str) -> dict:
    buckets: dict = {}
    for (name, labels), value in samples.items():
        if name != f"{metric}_bucket":
            continue
        for key, raw in labels:
            if key == "le":
                bound = math.inf if raw == "+Inf" else float(raw)
                buckets[bound] = value
    return buckets


def build_poll_frame(
    samples: dict, previous: "dict | None", elapsed_s: float
) -> dict:
    """One dashboard frame from a parsed ``/metrics`` scrape.

    ``previous`` is the prior scrape (or ``None`` on the first frame —
    rates show as 0 until there are two points).  Counter deltas are
    clamped at zero so a daemon restart between scrapes reads as a
    quiet frame, not a negative rate.
    """
    def rate(name: str) -> float:
        if not previous or elapsed_s <= 0:
            return 0.0
        delta = _counter(samples, name) - _counter(previous, name)
        return max(0.0, delta) / elapsed_s

    tiers = {tier: int(_counter(samples, tier)) for tier in _TIERS}
    metric = "repro_serve_request_seconds"
    quantiles: dict = {}
    for q in _QUANTILES:
        value = _sample(samples, f"{metric}_window", (("quantile", f"{q:g}"),))
        quantiles[f"p{int(q * 100)}"] = value
    if all(value is None for value in quantiles.values()) and previous:
        # No window gauges (e.g. a foreign exporter): difference the
        # cumulative buckets between scrapes instead.
        now_buckets = _histogram_buckets(samples, metric)
        before = _histogram_buckets(previous, metric)
        deltas = {
            bound: max(0.0, value - before.get(bound, 0.0))
            for bound, value in now_buckets.items()
        }
        for q in _QUANTILES:
            quantiles[f"p{int(q * 100)}"] = quantile_from_buckets(deltas, q)
    frame = {
        "source": "poll",
        "requests": int(_counter(samples, "requests")),
        "rps": rate("requests"),
        "shed_rate": rate("shed"),
        "errors": int(_counter(samples, "errors")),
        "shed": int(_counter(samples, "shed")),
        "tiers": tiers,
        "queue_depth": int(_sample(samples, "repro_serve_queue_depth") or 0),
        "queue_cap": int(_sample(samples, "repro_serve_queue_cap") or 0),
        "inflight": int(_sample(samples, "repro_serve_inflight") or 0),
        "draining": bool(_sample(samples, "repro_serve_draining") or 0),
        "retries": int(_sample(samples, "repro_serve_retries_total") or 0),
        "breaker": _sample(samples, "repro_serve_breaker_state"),
        "quantiles": quantiles,
    }
    # Scraping a campaign coordinator instead of (or alongside) a
    # verdict server: surface the shard queue and lease traffic.
    if _sample(samples, "repro_campaign_queue_depth") is not None:
        frame["campaign"] = {
            "open": int(_sample(samples, "repro_campaign_queue_depth") or 0),
            "leased": int(_sample(samples, "repro_campaign_queue_leased") or 0),
            "done": int(_sample(samples, "repro_campaign_queue_done") or 0),
            "claimed": int(
                _sample(samples, "repro_campaign_lease_claimed_total") or 0
            ),
            "reclaimed": int(
                _sample(samples, "repro_campaign_lease_reclaimed_total") or 0
            ),
            "lost": int(
                _sample(samples, "repro_campaign_lease_lost_total") or 0
            ),
            "duplicates": int(
                _sample(samples, "repro_campaign_complete_duplicate_total")
                or 0
            ),
            "quarantined": int(
                _sample(samples, "repro_campaign_shards_quarantined") or 0
            ),
            "complete": bool(_sample(samples, "repro_campaign_complete") or 0),
        }
    return frame


def build_tail_frame(records: list, window_s: float = 60.0) -> dict:
    """One dashboard frame from telemetry records (tail mode).

    Uses the ``span`` records' own wall-clock stamps, windowed against
    the newest stamp in the stream — replaying an old file shows the
    load shape it recorded, not an empty "now".
    """
    spans = [
        r
        for r in records
        if r.get("type") == "span" and r.get("name") == "serve.request"
    ]
    newest = max((r.get("start_ts", 0.0) for r in spans), default=0.0)
    horizon = newest - window_s
    windowed = [r for r in spans if r.get("start_ts", 0.0) >= horizon]
    durations = sorted(r.get("dur_s", 0.0) for r in windowed)

    def quantile(q: float) -> "float | None":
        if not durations:
            return None
        rank = max(1, math.ceil(q * len(durations)))
        return durations[rank - 1]

    waits = sum(
        1
        for r in records
        if r.get("type") == "span"
        and r.get("name") == "serve.wait"
        and r.get("start_ts", 0.0) >= horizon
    )
    if windowed:
        oldest = min(r.get("start_ts", newest) for r in windowed)
        # Observed stretch, floored at 1s so a burst of simultaneous
        # requests reads as a burst, not a division blow-up.
        span_window = max(1.0, min(window_s, newest - oldest))
        rps = len(windowed) / span_window
    else:
        rps = 0.0
    return {
        "source": "tail",
        "requests": len(spans),
        "rps": rps,
        "shed_rate": 0.0,
        "errors": sum(1 for r in windowed if r.get("error")),
        "shed": 0,
        "tiers": {
            "hot_hits": sum(1 for r in windowed if r.get("hot")),
            "mem_hits": 0,
            "disk_hits": 0,
            "computed": waits,
            "joined": 0,
        },
        "queue_depth": 0,
        "queue_cap": 0,
        "inflight": 0,
        "draining": False,
        "quantiles": {
            f"p{int(q * 100)}": quantile(q) for q in _QUANTILES
        },
    }


def _format_seconds(value: "float | None") -> str:
    if value is None:
        return "    —"
    if value < 1e-3:
        return f"{value * 1e6:4.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:4.1f}ms"
    return f"{value:4.2f}s"


def render_frame(frame: dict, width: int = 72) -> str:
    """Render one frame as a fixed-shape text block."""
    lines = []
    state = "DRAINING" if frame.get("draining") else "serving"
    lines.append(
        f"repro top — {state}   requests: {frame['requests']:,}   "
        f"{frame['rps']:.1f} req/s"
    )
    quantiles = frame.get("quantiles", {})
    lines.append(
        "latency  p50 " + _format_seconds(quantiles.get("p50"))
        + "   p95 " + _format_seconds(quantiles.get("p95"))
        + "   p99 " + _format_seconds(quantiles.get("p99"))
    )
    tiers = frame.get("tiers", {})
    total = sum(tiers.values()) or 1
    bar_parts = []
    for tier in _TIERS:
        count = tiers.get(tier, 0)
        bar_parts.append(f"{tier.replace('_hits', '')}:{count}")
    lines.append("tiers    " + "  ".join(bar_parts))
    # A proportional bar over the answered tiers.
    bar_width = max(10, width - 10)
    bar = ""
    glyphs = ("#", "=", "-", "*", "+")
    for glyph, tier in zip(glyphs, _TIERS):
        cells = round(tiers.get(tier, 0) / total * bar_width)
        bar += glyph * cells
    lines.append("         [" + bar[:bar_width].ljust(bar_width) + "]")
    lines.append(
        f"queue    depth {frame['queue_depth']}/{frame['queue_cap'] or '∞'}   "
        f"inflight {frame['inflight']}   shed {frame['shed']} "
        f"({frame['shed_rate']:.2f}/s)   errors {frame['errors']}"
    )
    # Resilience line: client retry pressure and the circuit breaker.
    # Only poll frames carry these; tail frames omit the line entirely.
    breaker = frame.get("breaker")
    if frame.get("retries") or breaker is not None:
        breaker_text = {0: "closed", 1: "half-open", 2: "OPEN"}.get(
            int(breaker) if breaker is not None else 0, "closed"
        )
        lines.append(
            f"resilience  retries {frame.get('retries', 0)}   "
            f"breaker {breaker_text}"
        )
    campaign = frame.get("campaign")
    if campaign:
        state = "complete" if campaign.get("complete") else "running"
        line = (
            f"campaign {state}   shards open {campaign['open']} "
            f"leased {campaign['leased']} done {campaign['done']}   "
            f"leases claimed {campaign['claimed']} "
            f"reclaimed {campaign['reclaimed']}"
        )
        if campaign.get("quarantined"):
            line += f"   QUARANTINED {campaign['quarantined']}"
        if campaign.get("lost") or campaign.get("duplicates"):
            line += (
                f"   lost {campaign.get('lost', 0)} "
                f"dup {campaign.get('duplicates', 0)}"
            )
        lines.append(line)
    return "\n".join(lines)


def run_dashboard(
    *,
    url: "str | None" = None,
    telemetry_paths=(),
    interval_s: float = 2.0,
    iterations: "int | None" = None,
    stream=None,
    clock=time.monotonic,
    sleep=time.sleep,
) -> int:
    """The ``repro top`` loop; returns a process exit code.

    ``iterations`` bounds the frame count (tests and ``--once``);
    ``None`` runs until interrupted.  Exactly one of ``url`` /
    ``telemetry_paths`` must be given.
    """
    import sys

    out = stream if stream is not None else sys.stdout
    if bool(url) == bool(telemetry_paths):
        raise ValueError("need exactly one of url or telemetry paths")
    previous: "dict | None" = None
    previous_at = clock()
    clear = getattr(out, "isatty", lambda: False)()
    count = 0
    while iterations is None or count < iterations:
        if count:
            sleep(interval_s)
        if url:
            from ..serve.client import ServeClient

            try:
                with ServeClient(url, timeout=max(5.0, interval_s)) as client:
                    text = client.metrics_text()
            except OSError as error:
                print(f"repro top: {url} unreachable: {error}", file=out)
                count += 1
                continue
            now = clock()
            samples = parse_prometheus(text)
            frame = build_poll_frame(samples, previous, now - previous_at)
            previous, previous_at = samples, now
        else:
            records: list = []
            for path in telemetry_paths:
                try:
                    records.extend(read_records(path))
                except OSError as error:
                    print(f"repro top: cannot read {path}: {error}", file=out)
                    return 1
            frame = build_tail_frame(records)
        if clear:
            print("\x1b[H\x1b[2J", end="", file=out)
        print(render_frame(frame), file=out, flush=True)
        count += 1
    return 0
