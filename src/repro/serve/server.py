"""HTTP transport for :class:`~repro.serve.service.VerdictService`.

A :class:`http.server.ThreadingHTTPServer` speaking HTTP/1.1 (keep-alive
matters: the hot-hit latency target is sub-millisecond, which a
per-request TCP handshake would dominate).  Endpoints:

* ``POST /v1/query`` — the verdict query (see :mod:`repro.serve.protocol`).
  A ``traceparent`` request header joins the request to the client's
  trace (spans land in the server's telemetry stream); the trace ID is
  echoed back in ``X-Repro-Trace``.
* ``GET /healthz`` — liveness: ``{"status": "ok"|"draining"}``.
* ``GET /statz`` — live service/cache/queue counters.
* ``GET /metrics`` — Prometheus text: counters, queue gauges, and the
  latency histograms (``repro top`` and any scraper consume this).

Error mapping: :class:`~repro.serve.protocol.ProtocolError` → 400,
:class:`~repro.serve.service.Shed` → 429 with ``Retry-After``,
:class:`~repro.serve.service.Draining` → 503 with ``Retry-After``,
:class:`~repro.serve.service.DeadlineExceeded` → 504, anything else
→ 500.  Every error body is ``{"error": ..., "status": ...}``; protocol
errors add a machine-readable ``"code"`` (e.g. ``unsupported-version``
when a client speaks an envelope version this server does not).

Shutdown: SIGTERM/SIGINT flip the service to draining (new queries get
503), stop the accept loop, then ``server_close()`` joins the
non-daemon handler threads — every admitted request finishes before the
process exits.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs import tracing
from .protocol import (
    DEADLINE_HEADER,
    TRACE_RESPONSE_HEADER,
    TRACEPARENT_HEADER,
    ProtocolError,
)
from .service import Draining, ServeError, Shed, VerdictService

__all__ = ["ReproServer"]

#: Cap on accepted request bodies; a full 24-model query over the
#: paper's gadgets is a few KB, so this is generous headroom, not a
#: functional limit.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    sys_version = ""
    # Headers and body leave in separate writes; with Nagle on, the
    # body write stalls ~40 ms behind the peer's delayed ACK — fatal
    # for a sub-millisecond hot path.
    disable_nagle_algorithm = True

    # The access log would dominate hot-hit latency (and stderr); the
    # telemetry stream is the intended observability channel.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def service(self) -> VerdictService:
        return self.server.service  # type: ignore[attr-defined]

    def _send(
        self,
        status: int,
        body: bytes,
        headers=(),
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict, headers=()) -> None:
        body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        self._send(status, body.encode("utf-8"), headers)

    def _send_error(
        self, status: int, message: str, headers=(), code: "str | None" = None
    ) -> None:
        payload = {"error": message, "status": status}
        if code is not None:
            payload["code"] = code
        self._send_json(status, payload, headers)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            status = "draining" if self.service.draining else "ok"
            self._send_json(200, {"status": status})
        elif self.path == "/statz":
            self._send_json(200, self.service.statz())
        elif self.path == "/metrics":
            self._send(
                200,
                self.service.metrics_text().encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._send_error(404, f"no such endpoint: {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/v1/query":
            self._send_error(404, f"no such endpoint: {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._send_error(411, "Content-Length required")
            return
        if length > MAX_BODY_BYTES:
            self._send_error(413, f"request body over {MAX_BODY_BYTES} bytes")
            return
        raw = self.rfile.read(length)
        # A client-sent traceparent becomes this handler thread's
        # current context, so the service's serve.* spans chain under
        # the client's span; a malformed or absent header leaves the
        # request untraced (context None) at no cost to the query.
        context = tracing.TraceContext.from_traceparent(
            self.headers.get(TRACEPARENT_HEADER)
        )
        trace_headers = (
            [(TRACE_RESPONSE_HEADER, context.trace_id)] if context else []
        )
        # A client-declared time budget clamps the server's own
        # deadline; malformed or non-positive values are ignored (the
        # header is advisory — it can only tighten, never extend).
        deadline_s = None
        raw_deadline = self.headers.get(DEADLINE_HEADER)
        if raw_deadline:
            try:
                parsed = float(raw_deadline)
            except ValueError:
                parsed = None
            if parsed is not None and parsed > 0:
                deadline_s = parsed
        try:
            with tracing.use(context):
                body, hot = self.service.handle_query(raw, deadline_s=deadline_s)
        except ProtocolError as exc:
            self._send_error(400, str(exc), code=exc.code)
        except Shed as exc:
            self._send_error(
                429, str(exc), [("Retry-After", f"{exc.retry_after:g}")]
            )
        except Draining as exc:
            self._send_error(
                503,
                str(exc),
                [("Retry-After", f"{self.service.config.retry_after_s:g}")],
            )
        except ServeError as exc:
            self._send_error(exc.status, str(exc))
        except Exception as exc:  # fault injection, bugs: still answer
            self._send_error(500, f"internal error: {exc!r}")
        else:
            headers = ([("X-Repro-Hot", "1")] if hot else []) + trace_headers
            self._send(200, body, headers)


class ReproServer:
    """A :class:`VerdictService` bound to an HTTP listener."""

    def __init__(self, service: VerdictService) -> None:
        self.service = service
        self.httpd = ThreadingHTTPServer(
            (service.config.host, service.config.port), _Handler
        )
        # Handler threads must be joinable so drain (server_close) can
        # wait for admitted requests instead of abandoning them.
        self.httpd.daemon_threads = False
        self.httpd.service = service  # type: ignore[attr-defined]
        self._thread: "threading.Thread | None" = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- background mode (tests, benchmarks) ----------------------------
    def start_background(self) -> None:
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, kwargs={"poll_interval": 0.05}
        )
        self._thread.start()

    def close(self) -> None:
        """Drain and shut down: stop accepting, finish admitted work."""
        self.service.drain()
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.httpd.server_close()  # joins handler threads
        self.service.close()

    def __enter__(self) -> "ReproServer":
        self.start_background()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- foreground mode (the CLI) --------------------------------------
    def serve_forever(self, install_signals: bool = True) -> None:
        """Run until SIGTERM/SIGINT, then drain and return.

        The signal handler flips the service to draining and stops the
        accept loop from a helper thread (``shutdown()`` must not run on
        the ``serve_forever`` thread — it would deadlock waiting for the
        loop it interrupted).
        """
        if install_signals:

            def _on_signal(signum, frame):
                self.service.drain()
                threading.Thread(target=self.httpd.shutdown).start()

            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        try:
            self.httpd.serve_forever(poll_interval=0.05)
        finally:
            self.httpd.server_close()
            self.service.close()
