"""Client for the verdict service: ``repro query`` and the library API.

:class:`ServeClient` keeps one HTTP/1.1 connection alive across
queries (the server's hot path is sub-millisecond, so per-request TCP
setup would dominate); :func:`query` is the one-shot convenience.
Responses decode back into :class:`~repro.engine.explorer.ExplorationResult`
objects via :func:`repro.engine.cache.result_from_payload`, so a
client-side result — witnesses included — is bit-identical to a local
``can_oscillate`` call with the same parameters.

Wire-level failures (dropped keep-alive, connection reset, timeout) are
retried under the shared :mod:`repro.serve.retry` policy with a
per-endpoint circuit breaker; HTTP-level rejections (429/503 shedding,
400s, 500s) still surface immediately as :class:`ServerShedding` /
:class:`ServerError` so callers keep their own admission-control loops.
Every request carries the remaining client timeout in the
``X-Repro-Deadline`` header, which the server clamps its per-request
deadline to.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from dataclasses import dataclass

from ..core.serialization import instance_to_dict
from ..core.spp import SPPInstance
from ..engine.cache import result_from_payload
from ..faults import fault_point
from ..obs import tracing
from .protocol import (
    DEADLINE_HEADER,
    PROTOCOL_VERSION,
    TRACE_RESPONSE_HEADER,
    TRACEPARENT_HEADER,
)
from .retry import (
    CircuitBreaker,
    RetryPolicy,
    TransientError,
    call_with_retry,
    parse_retry_after,
)

__all__ = [
    "QueryResponse",
    "ServeClient",
    "ServerError",
    "ServerShedding",
    "query",
]


class ServerError(RuntimeError):
    """A non-2xx answer from the verdict server."""

    def __init__(self, status: int, message: str, retry_after: "float | None" = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServerShedding(ServerError):
    """HTTP 429/503 — the server asked us to back off (admission control)."""


@dataclass(frozen=True)
class QueryResponse:
    """One decoded ``/v1/query`` answer."""

    #: The raw response object (per-model cache-entry payloads).
    data: dict
    #: True when the serve-level response hot tier answered
    #: (``X-Repro-Hot`` header).
    hot: bool
    #: The request's trace ID (``repro trace show`` takes it); ``None``
    #: when the query was sent untraced.
    trace_id: "str | None" = None

    @property
    def canonical_hash(self) -> str:
        return self.data["canonical_hash"]

    @property
    def served(self) -> dict:
        return self.data["served"]

    def results(self, instance: SPPInstance) -> dict:
        """``{model name: ExplorationResult}``, verified and re-labeled
        into ``instance``'s node names (checksum and cache version are
        validated per payload; raises :class:`ValueError` on tamper)."""
        return {
            model_name: result_from_payload(payload, instance)
            for model_name, payload in self.data["results"].items()
        }


def build_query_body(
    instance: SPPInstance,
    models=None,
    *,
    queue_bound: "int | None" = None,
    max_states: "int | None" = None,
    reliable_twin_first: "bool | None" = None,
    engine: "str | None" = None,
    reduction: "str | None" = None,
) -> bytes:
    """Encode one ``/v1/query`` request body.

    Deterministic (sorted keys, fixed separators) so identical queries
    are byte-identical on the wire — that is what makes the server's
    response hot tier, keyed by the raw body hash, effective.
    """
    body: dict = {"v": PROTOCOL_VERSION, "instance": instance_to_dict(instance)}
    if models is not None:
        body["models"] = list(models)
    bounds = {}
    if queue_bound is not None:
        bounds["queue_bound"] = queue_bound
    if max_states is not None:
        bounds["max_states"] = max_states
    if reliable_twin_first is not None:
        bounds["reliable_twin_first"] = reliable_twin_first
    if bounds:
        body["bounds"] = bounds
    config = {}
    if engine is not None:
        config["engine"] = engine
    if reduction is not None:
        config["reduction"] = reduction
    if config:
        body["config"] = config
    return json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8")


#: Wire-level retry shape for interactive clients: a handful of quick
#: attempts, never more than ~1 s apart.
DEFAULT_RETRY_POLICY = RetryPolicy(retries=3, base_delay_s=0.05, max_delay_s=1.0)


class ServeClient:
    """A persistent connection to one verdict server."""

    def __init__(
        self,
        url: str,
        timeout: float = 60.0,
        *,
        retry_policy: "RetryPolicy | None" = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 1.0,
    ) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {url!r}")
        host = parsed.hostname or "127.0.0.1"
        port = parsed.port or 80
        self._timeout = timeout
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)
        self._policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        self._breakers: dict = {}

    def _breaker(self, path: str) -> CircuitBreaker:
        breaker = self._breakers.get(path)
        if breaker is None:
            breaker = self._breakers[path] = CircuitBreaker(
                self._breaker_threshold, self._breaker_cooldown_s
            )
        return breaker

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send_once(
        self,
        method: str,
        path: str,
        body: "bytes | None",
        headers: dict,
        deadline: float,
    ):
        """One wire attempt.  Wire-level failures become
        :class:`TransientError` (retryable); anything the server actually
        answered comes back as ``(response, raw)``."""
        headers = dict(headers)
        headers[DEADLINE_HEADER] = f"{max(0.0, deadline - time.monotonic()):.3f}"
        try:
            fault_point("serve.client.send", path)
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError) as exc:
            # The keep-alive connection is in an unknown state after any
            # wire-level failure; drop it so the next attempt redials.
            self._conn.close()
            raise TransientError(str(exc), cause=exc) from exc
        return response, raw

    def _request(
        self,
        method: str,
        path: str,
        body: "bytes | None" = None,
        extra_headers: "dict | None" = None,
    ):
        headers = {"Content-Type": "application/json"} if body else {}
        if extra_headers:
            headers.update(extra_headers)
        deadline = time.monotonic() + self._timeout
        response, raw = call_with_retry(
            lambda: self._send_once(method, path, body, headers, deadline),
            policy=self._policy,
            endpoint=path,
            breaker=self._breaker(path),
            deadline=deadline,
        )
        try:
            data = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServerError(
                response.status, f"non-JSON response: {exc}"
            ) from exc
        if response.status != 200:
            message = data.get("error", raw.decode("utf-8", "replace"))
            retry = parse_retry_after(response.headers.get("Retry-After"))
            if response.status in (429, 503):
                raise ServerShedding(response.status, message, retry)
            raise ServerError(response.status, message, retry)
        return data, response.headers

    def healthz(self) -> dict:
        data, _ = self._request("GET", "/healthz")
        return data

    def statz(self) -> dict:
        data, _ = self._request("GET", "/statz")
        return data

    def metrics_text(self) -> str:
        """``GET /metrics`` — the raw Prometheus text (``repro top``)."""
        deadline = time.monotonic() + self._timeout
        response, raw = call_with_retry(
            lambda: self._send_once("GET", "/metrics", None, {}, deadline),
            policy=self._policy,
            endpoint="/metrics",
            breaker=self._breaker("/metrics"),
            deadline=deadline,
        )
        if response.status != 200:
            raise ServerError(response.status, raw.decode("utf-8", "replace"))
        return raw.decode("utf-8")

    def query_raw(self, body: bytes, *, trace: bool = True) -> QueryResponse:
        """POST a pre-encoded body (the benchmark's zero-encode path).

        By default the request carries a freshly minted traceparent —
        the root of the query's distributed trace.  The root span is
        recorded only when this process has telemetry configured; the
        server records its side regardless, so the returned
        ``trace_id`` is always worth printing.
        """
        if not trace:
            data, headers = self._request("POST", "/v1/query", body)
            return QueryResponse(
                data=data, hot=headers.get("X-Repro-Hot") == "1"
            )
        root = tracing.TraceContext.root()
        request_headers = {TRACEPARENT_HEADER: root.to_traceparent()}
        with tracing.trace_span(
            "client.query", context=root, timing=True
        ) as span:
            data, headers = self._request(
                "POST", "/v1/query", body, extra_headers=request_headers
            )
            hot = headers.get("X-Repro-Hot") == "1"
            span.note(hot=hot)
        return QueryResponse(
            data=data,
            hot=hot,
            trace_id=headers.get(TRACE_RESPONSE_HEADER, root.trace_id),
        )

    def query(
        self,
        instance: SPPInstance,
        models=None,
        *,
        queue_bound: "int | None" = None,
        max_states: "int | None" = None,
        reliable_twin_first: "bool | None" = None,
        engine: "str | None" = None,
        reduction: "str | None" = None,
    ) -> QueryResponse:
        body = build_query_body(
            instance,
            models,
            queue_bound=queue_bound,
            max_states=max_states,
            reliable_twin_first=reliable_twin_first,
            engine=engine,
            reduction=reduction,
        )
        return self.query_raw(body)


def query(url: str, instance: SPPInstance, models=None, **kwargs) -> QueryResponse:
    """One-shot :meth:`ServeClient.query` against ``url``."""
    timeout = kwargs.pop("timeout", 60.0)
    with ServeClient(url, timeout=timeout) as client:
        return client.query(instance, models, **kwargs)
