"""Shared retry policy for every HTTP client in the package.

Both :class:`repro.serve.client.ServeClient` and the campaign worker's
claim/heartbeat/complete loop funnel their attempts through
:func:`call_with_retry`, so a flapping server degrades every caller to
*slow progress* instead of an unhandled exception:

* **Capped exponential backoff with deterministic jitter** — the i-th
  retry sleeps ``min(max_delay_s, base_delay_s * multiplier**i)``
  scaled into ``[1 - jitter, 1)`` by a :class:`random.Random` seeded
  from ``sha256(seed, endpoint, i)``.  Under a fixed seed the whole
  delay sequence is a pure function of the endpoint — replayable by
  chaos tests, byte-for-byte.
* **Per-call retry budget** — ``retries`` bounds the number of
  *re*-tries; the budget exhausted, the last underlying error is
  re-raised unchanged.
* **``Retry-After``** — a server-provided hint (seconds or HTTP-date,
  parsed defensively by :func:`parse_retry_after`) overrides the
  computed backoff for that step.
* **Half-open circuit breaker** — after ``failure_threshold``
  consecutive failures a :class:`CircuitBreaker` opens and attempts
  wait out the cooldown before a single half-open probe; a probe
  success closes it, a failure re-opens it.  State is published as the
  ``serve.breaker.state`` gauge (0 closed / 1 half-open / 2 open).
* **Deadline propagation** — an optional monotonic ``deadline`` stops
  the retry loop early instead of sleeping past the caller's budget.

The attempt callable signals "worth retrying" by raising
:class:`TransientError` (wrapping the real error); any other exception
propagates immediately.  Every retry increments the ``serve.retries``
counter (``repro_serve_retries_total`` on ``/metrics``).
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass
from email.utils import parsedate_to_datetime

from ..obs import active as _telemetry

__all__ = [
    "RETRY_SEED_ENV_VAR",
    "BreakerOpen",
    "CircuitBreaker",
    "RetryPolicy",
    "TransientError",
    "call_with_retry",
    "parse_retry_after",
]

#: Environment fallback for the jitter seed, so multi-process chaos
#: harnesses can pin every worker's backoff schedule from outside.
RETRY_SEED_ENV_VAR = "REPRO_RETRY_SEED"

#: Process-level default seed: random per process (retries across a
#: fleet should not synchronize), overridable for determinism.
_PROCESS_SEED = int.from_bytes(os.urandom(8), "big")


class TransientError(Exception):
    """Raised by an attempt callable to request a retry.

    Wraps the underlying failure (``cause``) and an optional
    server-provided ``retry_after`` hint in seconds.
    """

    def __init__(self, message: str, *, retry_after=None, cause=None):
        super().__init__(message)
        self.retry_after = retry_after
        self.cause = cause


class BreakerOpen(Exception):
    """Raised when a call is refused because its circuit breaker is open
    and the retry budget cannot cover the remaining cooldown."""


def parse_retry_after(value) -> "float | None":
    """Parse an HTTP ``Retry-After`` header value defensively.

    Accepts delta-seconds (``"1.5"``) or an HTTP-date; anything
    malformed — including the empty string and garbage like
    ``"soon"`` — yields ``None`` rather than an exception.
    """
    if value is None:
        return None
    text = str(value).strip()
    if not text:
        return None
    try:
        seconds = float(text)
    except ValueError:
        try:
            when = parsedate_to_datetime(text)
        except (TypeError, ValueError):
            return None
        if when is None:
            return None
        if when.tzinfo is None:
            return None
        import datetime

        seconds = (when - datetime.datetime.now(datetime.timezone.utc)).total_seconds()
    return max(0.0, seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff shape and budget for one logical call."""

    #: Maximum number of *re*-tries after the first attempt.
    retries: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    #: Fraction of each delay randomized: the i-th delay lands in
    #: ``[cap * (1 - jitter), cap)``.  0 disables jitter entirely.
    jitter: float = 0.5
    #: Jitter seed; ``None`` uses :data:`RETRY_SEED_ENV_VAR` when set,
    #: else a per-process random seed.
    seed: "int | None" = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def effective_seed(self) -> int:
        if self.seed is not None:
            return self.seed
        env = os.environ.get(RETRY_SEED_ENV_VAR)
        if env:
            try:
                return int(env)
            except ValueError:
                pass
        return _PROCESS_SEED

    def delay(self, attempt: int, endpoint: str = "") -> float:
        """The backoff before retry ``attempt`` (0-based), deterministic
        given the seed and endpoint."""
        cap = min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)
        if self.jitter == 0.0 or cap == 0.0:
            return cap
        digest = hashlib.sha256(
            f"{self.effective_seed()}:{endpoint}:{attempt}".encode("utf-8")
        ).digest()
        u = random.Random(int.from_bytes(digest[:8], "big")).random()
        return cap * (1.0 - self.jitter + self.jitter * u)


# Breaker states, published as the ``serve.breaker.state`` gauge.
CLOSED, HALF_OPEN, OPEN = 0, 1, 2


class CircuitBreaker:
    """A half-open circuit breaker for one endpoint.

    Not thread-safe by itself; callers that share a breaker across
    threads (the campaign worker's heartbeat thread does) accept the
    benign race — the worst case is one extra probe.
    """

    def __init__(self, failure_threshold: int = 5, cooldown_s: float = 1.0, *, clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.state = CLOSED
        self.failures = 0
        self._opened_at = 0.0

    def _publish(self) -> None:
        _telemetry().gauge("serve.breaker.state", self.state)

    def acquire(self) -> float:
        """Gate one attempt.  Returns 0.0 when the attempt may proceed,
        else the seconds left on the cooldown."""
        if self.state == OPEN:
            remaining = self._opened_at + self.cooldown_s - self._clock()
            if remaining > 0:
                return remaining
            self.state = HALF_OPEN
            self._publish()
        return 0.0

    def record_success(self) -> None:
        if self.state != CLOSED or self.failures:
            self.state = CLOSED
            self.failures = 0
            self._publish()

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.failure_threshold:
            if self.state != OPEN:
                _telemetry().count("serve.breaker.opened")
            self.state = OPEN
            self._opened_at = self._clock()
            self._publish()


def call_with_retry(
    send,
    *,
    policy: RetryPolicy,
    endpoint: str = "",
    breaker: "CircuitBreaker | None" = None,
    deadline: "float | None" = None,
    sleep=time.sleep,
    clock=time.monotonic,
):
    """Run ``send()`` under ``policy``, retrying on :class:`TransientError`.

    ``deadline`` is a monotonic timestamp; once a computed backoff would
    sleep past it the loop stops and re-raises the underlying error.
    ``send`` takes no arguments — close over whatever the attempt needs.
    """
    attempt = 0
    while True:
        if breaker is not None:
            wait = breaker.acquire()
            if wait > 0.0:
                if attempt >= policy.retries or (
                    deadline is not None and clock() + wait > deadline
                ):
                    raise BreakerOpen(
                        f"circuit breaker open for {endpoint or 'endpoint'}; "
                        f"{wait:.2f}s of cooldown left"
                    )
                _telemetry().count("serve.retries")
                sleep(wait)
                attempt += 1
                continue
        try:
            result = send()
        except TransientError as exc:
            if breaker is not None:
                breaker.record_failure()
            if attempt >= policy.retries:
                _raise_cause(exc)
            delay = exc.retry_after
            if delay is None:
                delay = policy.delay(attempt, endpoint)
            if deadline is not None and clock() + delay > deadline:
                _raise_cause(exc)
            _telemetry().count("serve.retries")
            sleep(delay)
            attempt += 1
            continue
        if breaker is not None:
            breaker.record_success()
        return result


def _raise_cause(exc: TransientError):
    if exc.cause is not None:
        raise exc.cause from exc
    raise exc
