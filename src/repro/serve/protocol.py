"""Wire protocol for the verdict service: request parsing and validation.

One endpoint, ``POST /v1/query``, takes a JSON object::

    {
      "v": 2,                       # envelope version; absent = legacy v1
      "instance": {...},            # core.serialization.instance_to_dict form
      "models":   ["R1O", ...],     # optional; default: all 24 models
      "bounds":   {                 # optional; all fields optional
        "queue_bound": 3,
        "max_states": 200000,
        "reliable_twin_first": true
      },
      "config":   {                 # optional; server-safe fields only
        "engine": "compiled",
        "reduction": "ample"
      }
    }

and answers::

    {
      "v": 2,
      "protocol": 2,
      "instance": "<name>",
      "canonical_hash": "<sha256>",
      "results": {"<model>": <cache-entry payload>, ...},
      "served":  {"<model>": "memory"|"disk"|"computed"|"joined", ...}
    }

Each per-model result is *exactly* the checksummed cache-entry payload
the disk store holds for that verdict (witnesses in canonical-index
space, ``cache_version``, ``checksum``), so clients decode with
:func:`repro.engine.cache.result_from_payload` against their own
instance object and get results bit-identical to a local
``can_oscillate`` call.  ``served`` records which tier answered each
model *for the request that produced the response*; a response replayed
from the serve-level hot tier is flagged by the ``X-Repro-Hot: 1``
header instead.

Request ``config`` deliberately accepts only ``engine`` and
``reduction``: cache location, worker width, and telemetry are
deployment decisions owned by the server, and neither accepted field
changes the verdict (engines are pinned bit-identical by the
differential suites; the reducer is part of the cache key).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..config import DEFAULT_MAX_STATES
from ..core.serialization import instance_from_dict
from ..core.spp import SPPInstance

__all__ = [
    "DEADLINE_HEADER",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "TRACEPARENT_HEADER",
    "TRACE_RESPONSE_HEADER",
    "ProtocolError",
    "QueryRequest",
    "UnsupportedVersion",
    "check_version",
    "envelope",
    "parse_query",
]

#: Bumped whenever the request/response JSON shape changes.  v2 added
#: the explicit ``"v"`` envelope field shared by verdict queries and
#: campaign lease brokering; v1 bodies (no ``"v"``) are still accepted
#: on the verdict endpoint for old clients.
PROTOCOL_VERSION = 2

#: Versions this server parses.  Campaign coordination endpoints are
#: v2-only (they did not exist before v2); the verdict endpoint keeps
#: accepting version-less v1 bodies.
SUPPORTED_VERSIONS = (1, 2)

#: Request header carrying the client's trace context (W3C form,
#: ``00-<trace>-<span>-01``).  Optional; a missing or malformed header
#: costs the trace, never the request.
TRACEPARENT_HEADER = "traceparent"

#: Response header echoing the trace ID back to a tracing client, so
#: ``repro query`` can print the ID that ``repro trace show`` takes.
TRACE_RESPONSE_HEADER = "X-Repro-Trace"

#: Request header carrying the client's remaining time budget as
#: decimal seconds (``"12.5"``).  The server clamps its own per-request
#: deadline to the smaller of the two, so work the client has already
#: given up on is not computed to completion.  Optional; a missing or
#: malformed value costs nothing — the server deadline applies alone.
DEADLINE_HEADER = "X-Repro-Deadline"

#: Request ``config`` fields a client may set.
_CLIENT_CONFIG_FIELDS = frozenset({"engine", "reduction"})

_ENGINES = ("compiled", "reference", "packed")
_REDUCTIONS = ("ample", "none")


class ProtocolError(ValueError):
    """A malformed or out-of-contract query (HTTP 400)."""

    #: Machine-readable error code echoed in the JSON error body.
    code = "bad-request"


class UnsupportedVersion(ProtocolError):
    """An envelope version this server does not speak (HTTP 400).

    The error body carries ``"code": "unsupported-version"`` plus the
    versions the server does support, so old clients fail with an
    actionable message instead of a shape mismatch deeper in.
    """

    code = "unsupported-version"

    def __init__(self, version) -> None:
        super().__init__(
            f"unsupported protocol version {version!r}; this server "
            f"speaks {', '.join(str(v) for v in SUPPORTED_VERSIONS)}"
        )
        self.version = version


def check_version(body: dict, *, minimum: int = 1) -> int:
    """Validate a request envelope's ``"v"`` field; the effective version.

    A missing ``"v"`` is a legacy v1 body — accepted when ``minimum``
    allows it (the verdict endpoint), rejected by v2-only endpoints
    (campaign lease brokering).  Anything outside
    :data:`SUPPORTED_VERSIONS` raises :class:`UnsupportedVersion`.
    """
    version = body.get("v", 1)
    if (
        not isinstance(version, int)
        or isinstance(version, bool)
        or version not in SUPPORTED_VERSIONS
        or version < minimum
    ):
        raise UnsupportedVersion(version)
    return version


def envelope(payload: dict) -> dict:
    """``payload`` stamped as a v2 envelope (``"v"`` first-class field)."""
    out = {"v": PROTOCOL_VERSION}
    out.update(payload)
    return out


@dataclass(frozen=True)
class QueryRequest:
    """One parsed, validated ``/v1/query`` body."""

    instance: SPPInstance
    models: tuple
    queue_bound: int = 3
    max_states: int = DEFAULT_MAX_STATES
    reliable_twin_first: bool = True
    engine: str = "compiled"
    reduction: str = "ample"

    def group_key(self, canonical: str) -> tuple:
        """The micro-batching group: requests whose cold misses can
        merge into one certification run share this key."""
        return (
            canonical,
            self.queue_bound,
            self.max_states,
            self.reliable_twin_first,
            self.engine,
            self.reduction,
        )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _parse_models(raw) -> tuple:
    from ..models.taxonomy import ALL_MODELS, MODELS_BY_NAME

    if raw is None:
        return tuple(m.name for m in ALL_MODELS)
    _require(
        isinstance(raw, list) and raw,
        "'models' must be a non-empty list of model names",
    )
    seen = []
    for name in raw:
        _require(
            isinstance(name, str) and name in MODELS_BY_NAME,
            f"unknown model {name!r}",
        )
        if name not in seen:
            seen.append(name)
    return tuple(seen)


def _parse_bounds(raw) -> dict:
    if raw is None:
        return {}
    _require(isinstance(raw, dict), "'bounds' must be a JSON object")
    unknown = sorted(set(raw) - {"queue_bound", "max_states", "reliable_twin_first"})
    _require(not unknown, f"unknown bounds field(s): {', '.join(unknown)}")
    out = {}
    if "queue_bound" in raw:
        value = raw["queue_bound"]
        _require(
            isinstance(value, int) and not isinstance(value, bool) and value >= 1,
            "'queue_bound' must be an integer >= 1",
        )
        out["queue_bound"] = value
    if "max_states" in raw:
        value = raw["max_states"]
        _require(
            isinstance(value, int) and not isinstance(value, bool) and value >= 1,
            "'max_states' must be an integer >= 1",
        )
        out["max_states"] = value
    if "reliable_twin_first" in raw:
        value = raw["reliable_twin_first"]
        _require(isinstance(value, bool), "'reliable_twin_first' must be a boolean")
        out["reliable_twin_first"] = value
    return out


def _parse_config(raw) -> dict:
    if raw is None:
        return {}
    _require(isinstance(raw, dict), "'config' must be a JSON object")
    unknown = sorted(set(raw) - _CLIENT_CONFIG_FIELDS)
    _require(
        not unknown,
        "config field(s) not accepted over the wire: " + ", ".join(unknown),
    )
    out = {}
    if "engine" in raw:
        _require(raw["engine"] in _ENGINES, f"unknown engine {raw['engine']!r}")
        out["engine"] = raw["engine"]
    if "reduction" in raw:
        _require(
            raw["reduction"] in _REDUCTIONS,
            f"unknown reduction {raw['reduction']!r}",
        )
        out["reduction"] = raw["reduction"]
    return out


def parse_query(body, *, default_engine: str = "compiled") -> QueryRequest:
    """Parse and validate a ``/v1/query`` body (bytes, str, or dict).

    Raises :class:`ProtocolError` on any malformed field; never returns
    a partially validated request.
    """
    if isinstance(body, (bytes, bytearray, str)):
        try:
            body = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
    _require(isinstance(body, dict), "request body must be a JSON object")
    unknown = sorted(set(body) - {"v", "instance", "models", "bounds", "config"})
    _require(not unknown, f"unknown request field(s): {', '.join(unknown)}")
    check_version(body)
    _require("instance" in body, "request is missing 'instance'")
    try:
        instance = instance_from_dict(body["instance"])
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ProtocolError(f"bad 'instance': {exc}") from exc
    models = _parse_models(body.get("models"))
    bounds = _parse_bounds(body.get("bounds"))
    config = _parse_config(body.get("config"))
    return QueryRequest(
        instance=instance,
        models=models,
        engine=config.get("engine", default_engine),
        reduction=config.get("reduction", "ample"),
        **bounds,
    )
