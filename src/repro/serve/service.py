"""The serving tier: two-tier cache, singleflight, micro-batching,
admission control.

:class:`VerdictService` is transport-agnostic — `server.py` wires it to
HTTP, and tests drive :meth:`VerdictService.handle_query` directly with
raw request bytes.  One request flows through:

1. **Response hot tier** — an LRU of complete response bodies keyed by
   the sha256 of the raw request bytes.  A repeat of a byte-identical
   query returns without parsing anything (this is what makes the p50
   hot-hit < 1 ms: no JSON decode, no canonical hash, no disk).
2. **Verdict lookup** — per requested model, the content-addressed
   :func:`~repro.engine.cache.verdict_key` is probed through the
   :class:`~repro.engine.cache.VerdictCache` payload memo and then the
   checksummed disk store (:meth:`VerdictCache.get_payload`).
3. **Singleflight** — each still-missing key either *joins* an
   in-flight computation (another request is already producing it) or
   *owns* a new one.  Owners never hold a lock while computing; joiners
   block on an event with the request deadline.  A failed computation
   resolves its waiters with the error — they never hang.
4. **Micro-batching** — owned keys for the same
   ``(instance, bounds, engine, reduction)`` group merge into one batch
   while that batch is still queued; a worker turns a batch into one
   ``run_explorations`` call over a *shared instance object*, so codec
   and reduction tables are built once per instance, not per model.
5. **Admission control** — the batch queue is bounded
   (``queue_cap``); a full queue sheds the request with
   :class:`Shed` (HTTP 429 + Retry-After) after failing its own
   in-flight registrations so joiners elsewhere are not stranded.

Fault points: ``serve.request`` fires at request admission,
``serve.compute`` at batch execution (a raise here exercises the
leader-dies path), ``serve.shed`` on queue overflow.
"""

from __future__ import annotations

import hashlib
import json
import queue as queue_module
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..config import RunConfig
from ..core.canonical import canonical_hash
from ..engine.cache import result_to_payload, shared_cache, verdict_key
from ..engine.parallel import ExplorationTask, run_explorations
from ..faults import fault_point
from ..obs import active as _telemetry
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from .protocol import PROTOCOL_VERSION, QueryRequest, parse_query

__all__ = [
    "ComputeFailed",
    "DeadlineExceeded",
    "Draining",
    "ServeConfig",
    "ServeError",
    "Shed",
    "VerdictService",
]


class ServeError(Exception):
    """Base of the service's request-rejection hierarchy."""

    status = 500


class Shed(ServeError):
    """Admission control rejected the request (queue full)."""

    status = 429

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"compute queue is full; retry after {retry_after:g}s"
        )
        self.retry_after = retry_after


class Draining(ServeError):
    """The server is shutting down and not admitting new work."""

    status = 503

    def __init__(self) -> None:
        super().__init__("server is draining")


class DeadlineExceeded(ServeError):
    """The request's deadline elapsed before its verdicts resolved."""

    status = 504

    def __init__(self, deadline_s: float) -> None:
        super().__init__(f"deadline of {deadline_s:g}s exceeded")


class ComputeFailed(ServeError):
    """The computation this request waited on raised."""

    status = 500

    def __init__(self, cause: BaseException) -> None:
        super().__init__(f"verdict computation failed: {cause!r}")
        self.cause = cause


@dataclass(frozen=True)
class ServeConfig:
    """Deployment knobs for one :class:`VerdictService`.

    ``workers`` is the number of serving worker *threads* draining the
    batch queue; ``compute_procs`` is the process fan-out *inside* one
    batch (1 keeps batches in-process, which is what lets a batch share
    one instance object and build reduction tables once — raise it only
    for huge per-batch workloads).
    """

    cache_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    engine: str = "compiled"
    workers: int = 2
    compute_procs: int = 1
    queue_cap: int = 64
    deadline_s: float = 30.0
    retry_after_s: float = 1.0
    response_cache_entries: int = 256

    def __post_init__(self) -> None:
        if not self.cache_dir:
            raise ValueError("cache_dir is required")
        if self.engine not in ("compiled", "reference", "packed"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.compute_procs < 1:
            raise ValueError("compute_procs must be at least 1")
        # queue.Queue treats maxsize<=0 as unbounded, which would turn
        # admission control off silently — reject it here instead.
        if self.queue_cap < 1:
            raise ValueError("queue_cap must be at least 1")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.retry_after_s <= 0:
            raise ValueError("retry_after_s must be positive")
        if self.response_cache_entries < 0:
            raise ValueError("response_cache_entries must be non-negative")


class _InFlight:
    """One in-progress verdict computation; waiters block on ``event``.

    ``leader_span`` is the owning request's span ID at registration
    time (``None`` when the owner was untraced): a joiner's
    ``serve.wait`` span records it, which is how ``repro trace show``
    names the singleflight leader a request waited on.
    """

    __slots__ = ("event", "payload", "error", "leader_span")

    def __init__(self, leader_span: "str | None" = None) -> None:
        self.event = threading.Event()
        self.payload = None
        self.error: "BaseException | None" = None
        self.leader_span = leader_span


@dataclass
class _Batch:
    """Cold misses for one (instance, bounds, engine, reduction) group.

    ``jobs`` maps verdict key -> model name; new jobs merge in only
    while ``started`` is false (i.e. while the batch is still queued).
    ``instance`` is the first owner's instance object, shared by every
    job so per-instance memoized tables are built once.
    """

    group: tuple
    request: QueryRequest
    jobs: "OrderedDict[str, str]" = field(default_factory=OrderedDict)
    started: bool = False
    #: The creating request's trace context — the worker thread parents
    #: its ``serve.compute`` span on it, crossing the queue boundary.
    trace: "_tracing.TraceContext | None" = None


_COUNTERS = (
    "requests",
    "hot_hits",
    "mem_hits",
    "disk_hits",
    "computed",
    "joined",
    "inflight_joins",
    "batches",
    "batch_joins",
    "shed",
    "errors",
)


class VerdictService:
    """The verdict-serving engine behind ``repro serve``."""

    def __init__(self, config: ServeConfig, *, start_workers: bool = True) -> None:
        self.config = config
        self.cache = shared_cache(config.cache_dir)
        self._lock = threading.Lock()
        self._inflight: "dict[str, _InFlight]" = {}
        self._pending: "dict[tuple, _Batch]" = {}
        self._queue: "queue_module.Queue[_Batch]" = queue_module.Queue(
            maxsize=config.queue_cap
        )
        self._responses: "OrderedDict[str, bytes]" = OrderedDict()
        self._draining = False
        self._stopping = False
        self._threads: list = []
        self.counters = {name: 0 for name in _COUNTERS}
        if start_workers:
            self.start()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Start the batch-queue worker threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.config.workers):
            # Daemon so an abandoned service never blocks interpreter
            # exit; graceful shutdown still joins via close()/drain().
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"verdict-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def drain(self) -> None:
        """Stop admitting queries; queued/in-flight batches still finish."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def close(self) -> None:
        """Drain and stop: workers finish every queued batch, then exit."""
        self.drain()
        self._stopping = True
        for thread in self._threads:
            thread.join()
        self._threads.clear()

    # -- bookkeeping ----------------------------------------------------
    def _count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters[name] += value
        _telemetry().count(f"serve.{name}", value)

    def statz(self) -> dict:
        """Live counters for ``/statz`` (service + cache + queue state)."""
        with self._lock:
            counters = dict(self.counters)
            inflight = len(self._inflight)
            pending = len(self._pending)
            responses = len(self._responses)
        return {
            "v": PROTOCOL_VERSION,
            "protocol": PROTOCOL_VERSION,
            "serve": counters,
            "queue_depth": self._queue.qsize(),
            "queue_cap": self.config.queue_cap,
            "inflight": inflight,
            "pending_batches": pending,
            "response_cache": responses,
            "draining": self._draining,
            "cache": self.cache.stats(),
        }

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body (Prometheus text exposition).

        Counters merge the live telemetry registry (cache, explore, and
        worker counters) with the service's own — the service values
        win for ``serve.*`` since they are authoritative even when
        telemetry is disabled.  Latency histograms come from the
        process-wide metrics registry that span timings feed.
        """
        tel = _telemetry()
        counters = dict(getattr(tel, "counters", None) or {})
        gauges = dict(getattr(tel, "gauges", None) or {})
        with self._lock:
            for name, value in self.counters.items():
                counters[f"serve.{name}"] = value
            gauges["serve.inflight"] = len(self._inflight)
            gauges["serve.pending_batches"] = len(self._pending)
            gauges["serve.response_cache"] = len(self._responses)
            gauges["serve.draining"] = self._draining
        gauges["serve.queue_depth"] = self._queue.qsize()
        gauges["serve.queue_cap"] = self.config.queue_cap
        registry = getattr(tel, "metrics", None) or _metrics.registry()
        return _metrics.render_prometheus(
            metrics=registry, counters=counters, gauges=gauges
        )

    # -- request path ---------------------------------------------------
    def handle_query(
        self, raw: bytes, *, deadline_s: "float | None" = None
    ) -> "tuple[bytes, bool]":
        """Answer one raw ``/v1/query`` body.

        Returns ``(response_bytes, hot)`` where ``hot`` marks a
        response-tier replay.  Raises :class:`ProtocolError` or a
        :class:`ServeError` subclass on rejection.  ``deadline_s``, if
        given (the ``X-Repro-Deadline`` header), clamps this request's
        deadline below the configured one.
        """
        tel = _telemetry()
        # trace_span(timing=True) keeps the serve.request wall-time
        # accounting the flat span gave us, and additionally emits the
        # request's span record under the caller's trace (the HTTP
        # layer installs the client's traceparent as the current
        # context before calling in).
        with _tracing.trace_span("serve.request", timing=True) as req_span:
            self._count("requests")
            fault_point("serve.request", None)
            if self._draining:
                raise Draining()
            body_key = hashlib.sha256(raw).hexdigest()
            with self._lock:
                cached = self._responses.get(body_key)
                if cached is not None:
                    self._responses.move_to_end(body_key)
                    self.counters["hot_hits"] += 1
            if cached is not None:
                tel.count("serve.hot_hits")
                req_span.note(hot=True)
                return cached, True
            request = parse_query(raw, default_engine=self.config.engine)
            req_span.note(instance=request.instance.name, models=len(request.models))
            response = self._resolve(request, tel, deadline_s=deadline_s)
            body = json.dumps(response, separators=(",", ":"), sort_keys=True)
            encoded = body.encode("utf-8")
            if self.config.response_cache_entries:
                with self._lock:
                    self._responses[body_key] = encoded
                    self._responses.move_to_end(body_key)
                    while len(self._responses) > self.config.response_cache_entries:
                        self._responses.popitem(last=False)
            return encoded, False

    def _resolve(
        self, request: QueryRequest, tel, *, deadline_s: "float | None" = None
    ) -> dict:
        canonical = canonical_hash(request.instance)
        budget = self.config.deadline_s
        if deadline_s is not None:
            budget = min(budget, deadline_s)
        deadline = time.monotonic() + budget
        keys = {
            model_name: verdict_key(
                request.instance,
                model_name,
                queue_bound=request.queue_bound,
                max_states=request.max_states,
                reliable_twin_first=request.reliable_twin_first,
                reduction=request.reduction,
            )
            for model_name in request.models
        }
        results: dict = {}
        served: dict = {}
        missing: dict = {}
        with _tracing.trace_span("serve.lookup", timing=True) as lookup_span:
            for model_name, key in keys.items():
                payload, tier = self.cache.get_payload(key)
                if payload is not None:
                    results[model_name] = payload
                    served[model_name] = tier
                else:
                    missing[model_name] = key
            lookup_span.note(hits=len(served), misses=len(missing))
        if served:
            mem = sum(1 for tier in served.values() if tier == "memory")
            if mem:
                self._count("mem_hits", mem)
            disk = len(served) - mem
            if disk:
                self._count("disk_hits", disk)
        if missing:
            owned, joined = self._register(request, canonical, missing, results, served)
            with _tracing.trace_span("serve.wait", timing=True) as wait_span:
                leaders = sorted(
                    {e.leader_span for e in joined.values() if e.leader_span}
                )
                if leaders:
                    # Which singleflight leader(s) this request's
                    # joined keys are waiting on — the cross-request
                    # edge the span tree cannot express as a parent
                    # link (the leader belongs to another trace).
                    wait_span.note(waited_on=",".join(leaders))
                wait_span.note(owned=len(owned), joined=len(joined))
                self._await(owned, joined, results, served, deadline)
        return {
            "v": PROTOCOL_VERSION,
            "protocol": PROTOCOL_VERSION,
            "instance": request.instance.name,
            "canonical_hash": canonical,
            "results": results,
            "served": served,
        }

    def _register(
        self, request: QueryRequest, canonical: str, missing: dict, results: dict, served: dict
    ) -> "tuple[dict, dict]":
        """Singleflight admission for this request's cold keys.

        Returns ``(owned, joined)`` — both map model name to the
        :class:`_InFlight` entry to wait on.  Owned keys have been
        merged into a pending batch or submitted as a new one; a full
        queue fails the owned entries (so their joiners see the error)
        and raises :class:`Shed`.
        """
        owned: dict = {}
        joined: dict = {}
        new_batch = None
        group = request.group_key(canonical)
        trace_context = _tracing.current()
        leader_span = trace_context.span_id if trace_context else None
        with self._lock:
            for model_name, key in missing.items():
                entry = self._inflight.get(key)
                if entry is not None:
                    joined[model_name] = entry
                    self.counters["inflight_joins"] += 1
                    continue
                # Close the lookup/registration race: the computation
                # we would have joined may have finished (and warmed
                # the memo) between our cache probe and here.
                payload = self.cache.peek_memo(key)
                if payload is not None:
                    results[model_name] = payload
                    served[model_name] = "memory"
                    continue
                entry = _InFlight(leader_span=leader_span)
                self._inflight[key] = entry
                owned[model_name] = entry
                batch = self._pending.get(group)
                if batch is not None and not batch.started:
                    batch.jobs[key] = model_name
                    self.counters["batch_joins"] += 1
                    continue
                if new_batch is None:
                    new_batch = _Batch(
                        group=group, request=request, trace=trace_context
                    )
                    self._pending[group] = new_batch
                new_batch.jobs[key] = model_name
        if joined:
            _telemetry().count("serve.inflight_joins", len(joined))
        if new_batch is not None:
            self._submit(new_batch, owned)
        return owned, joined

    def _submit(self, batch: _Batch, owned: dict) -> None:
        try:
            self._queue.put_nowait(batch)
        except queue_module.Full:
            shed = Shed(self.config.retry_after_s)
            with self._lock:
                self._pending.pop(batch.group, None)
            self._fail_jobs(batch.jobs, shed)
            self._count("shed")
            fault_point("serve.shed", batch.group)
            raise shed
        self._count("batches")

    def _await(
        self, owned: dict, joined: dict, results: dict, served: dict, deadline: float
    ) -> None:
        for tier, waiting in (("computed", owned), ("joined", joined)):
            for model_name, entry in waiting.items():
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not entry.event.wait(remaining):
                    self._count("errors")
                    raise DeadlineExceeded(self.config.deadline_s)
                if entry.error is not None:
                    self._count("errors")
                    if isinstance(entry.error, ServeError):
                        raise entry.error
                    raise ComputeFailed(entry.error)
                results[model_name] = entry.payload
                served[model_name] = tier
        if owned:
            self._count("computed", len(owned))
        if joined:
            self._count("joined", len(joined))

    # -- compute path ---------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            try:
                batch = self._queue.get(timeout=0.1)
            except queue_module.Empty:
                if self._stopping:
                    return
                continue
            with self._lock:
                batch.started = True
                if self._pending.get(batch.group) is batch:
                    del self._pending[batch.group]
            try:
                fault_point("serve.compute", batch.group)
                self._compute(batch)
            except BaseException as exc:  # waiters must never hang
                self._fail_jobs(batch.jobs, exc)

    def _compute(self, batch: _Batch) -> None:
        """Run one merged batch as a single multi-model certification.

        Every task shares ``batch.request.instance`` — the per-instance
        memoized artifacts (canonical labeling, route universe,
        reduction tables, codec) are built once for the whole batch.
        """
        request = batch.request
        run_config = RunConfig(
            engine=request.engine,
            reduction=request.reduction,
            cache_dir=self.config.cache_dir,
            workers=self.config.compute_procs,
            queue_bound=request.queue_bound,
            step_bound=request.max_states,
        )
        # The worker thread has no ambient trace context — the batch
        # carries its creator's, crossing the queue boundary explicitly.
        with _tracing.trace_span(
            "serve.compute", parent=batch.trace, timing=True
        ) as compute_span:
            compute_span.note(batch_size=len(batch.jobs))
            traceparent = (
                compute_span.context.to_traceparent()
                if compute_span.context is not None
                else None
            )
            tasks = [
                ExplorationTask(
                    instance=request.instance,
                    model_name=model_name,
                    key=(model_name,),
                    queue_bound=request.queue_bound,
                    max_states=request.max_states,
                    reliable_twin_first=request.reliable_twin_first,
                    engine=request.engine,
                    reduction=request.reduction,
                    cache_dir=self.config.cache_dir,
                    traceparent=traceparent,
                )
                for model_name in batch.jobs.values()
            ]
            outcomes = run_explorations(tasks, config=run_config)
        for (key, (_, result)) in zip(batch.jobs, outcomes):
            # can_oscillate already stored the verdict through the
            # shared cache, warming the payload memo; fall back to
            # encoding directly when the hot tier is disabled.
            payload = self.cache.peek_memo(key)
            if payload is None:
                payload = result_to_payload(result, request.instance)
            self._finish_job(key, payload)

    def _finish_job(self, key: str, payload: dict) -> None:
        with self._lock:
            entry = self._inflight.pop(key, None)
        if entry is not None:
            entry.payload = payload
            entry.event.set()

    def _fail_jobs(self, jobs, error: BaseException) -> None:
        for key in jobs:
            with self._lock:
                entry = self._inflight.pop(key, None)
            if entry is not None:
                entry.error = error
                entry.event.set()
