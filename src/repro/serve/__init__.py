"""``repro.serve`` — verdict-as-a-service over the content-addressed cache.

The batch CLI answers a warm 24-model certification in ~9 ms, but every
query pays process startup, disk JSON parsing, and checksum
verification.  This package turns the verdict store into a long-running
stdlib-only HTTP/JSON daemon (``repro serve``) with a thin client
(``repro query``):

* **Hot path** — answers come from a two-tier cache: a serve-level
  response-bytes LRU (keyed by the sha256 of the raw request body) in
  front of the :class:`~repro.engine.cache.VerdictCache` payload memo,
  itself in front of the checksummed disk store.  A repeat query skips
  request parsing, disk I/O, and sha256 work entirely.
* **Singleflight** — concurrent identical cold queries coalesce onto
  one in-flight computation per verdict key; waiters share the result
  (and share the *error* if the leader dies — they never hang).
* **Micro-batching** — cold misses for the same instance across models
  merge into one matrix-certification run while queued, so per-model
  codec and reduction-table builds are paid once per instance.
* **Admission control** — a bounded batch queue sheds overload with
  429/Retry-After, every request carries a deadline, and SIGTERM
  drains in-flight work before exit.

See ``docs/serving.md`` for the wire protocol and deployment notes.
"""

from .client import QueryResponse, ServeClient, ServerError, ServerShedding, query
from .protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    ProtocolError,
    QueryRequest,
    UnsupportedVersion,
    check_version,
    envelope,
    parse_query,
)
from .retry import (
    BreakerOpen,
    CircuitBreaker,
    RetryPolicy,
    TransientError,
    call_with_retry,
    parse_retry_after,
)
from .server import ReproServer
from .service import (
    ComputeFailed,
    DeadlineExceeded,
    Draining,
    ServeConfig,
    ServeError,
    Shed,
    VerdictService,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "BreakerOpen",
    "CircuitBreaker",
    "ComputeFailed",
    "DeadlineExceeded",
    "Draining",
    "ProtocolError",
    "QueryRequest",
    "QueryResponse",
    "ReproServer",
    "RetryPolicy",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerError",
    "ServerShedding",
    "Shed",
    "TransientError",
    "UnsupportedVersion",
    "VerdictService",
    "call_with_retry",
    "check_version",
    "envelope",
    "parse_query",
    "parse_retry_after",
    "query",
]
