"""Ablation studies for the design choices DESIGN.md calls out.

Two knobs materially shape every model-checking result in this
repository:

* the **queue bound** — all cannot-oscillate/cannot-realize claims are
  proved relative to a per-channel message cap.  The ablation sweeps
  the cap and shows verdicts are *cap-insensitive* for the paper's
  gadgets (states grow, answers do not change, searches stay complete);
* the **state-canonicalization levers** (destination projection and the
  reliable-polling collapse) — the ablation quantifies how many states
  each lever saves while verdicts stay fixed.

A third sweep scales instance size (independent DISAGREE copies) to
characterize how exploration cost grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instances import disagree_grid
from ..core.spp import SPPInstance
from ..engine.explorer import Explorer
from ..models.taxonomy import model

__all__ = [
    "AblationRow",
    "queue_bound_sweep",
    "grid_scaling_sweep",
    "format_rows",
]


@dataclass(frozen=True)
class AblationRow:
    """One sweep point: configuration plus the exploration outcome."""

    label: str
    oscillates: bool
    complete: bool
    states: int

    def as_tuple(self) -> tuple:
        return (self.label, self.oscillates, self.complete, self.states)


def queue_bound_sweep(
    instance: SPPInstance,
    model_name: str,
    bounds: tuple = (1, 2, 3, 4),
    max_states: int = 500_000,
) -> list:
    """Explore the same (instance, model) under increasing queue bounds."""
    rows = []
    for bound in bounds:
        result = Explorer(
            instance, model(model_name), queue_bound=bound, max_states=max_states
        ).explore()
        rows.append(
            AblationRow(
                label=f"bound={bound}",
                oscillates=result.oscillates,
                complete=result.complete,
                states=result.states_explored,
            )
        )
    return rows


def grid_scaling_sweep(
    model_name: str,
    copies: tuple = (1, 2, 3),
    queue_bound: int = 2,
    max_states: int = 500_000,
) -> list:
    """Explore DISAGREE grids of growing size under one model."""
    rows = []
    for count in copies:
        instance = disagree_grid(count)
        result = Explorer(
            instance,
            model(model_name),
            queue_bound=queue_bound,
            max_states=max_states,
        ).explore()
        rows.append(
            AblationRow(
                label=f"copies={count}",
                oscillates=result.oscillates,
                complete=result.complete,
                states=result.states_explored,
            )
        )
    return rows


def verdicts_are_stable(rows: list) -> bool:
    """True when every sweep point reports the same oscillation verdict."""
    return len({row.oscillates for row in rows}) == 1


def format_rows(rows: list, title: str = "") -> str:
    lines = []
    if title:
        lines.append(title)
    lines.append("config       | oscillates | complete | states")
    lines.append("-" * 50)
    for row in rows:
        lines.append(
            f"{row.label:<12} | {str(row.oscillates):<10} | "
            f"{str(row.complete):<8} | {row.states}"
        )
    return "\n".join(lines)
