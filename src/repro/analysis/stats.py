"""Convergence-rate statistics across models and instance families.

The paper's conclusions predict a qualitative ordering: polling models
(count A) converge on instances where message-passing models may not,
and the queueing models admit every behaviour any model admits.  The
survey here quantifies that shape on random instance families
(experiment E10 in DESIGN.md): for each (instance, model) pair it runs
many independent fair random executions and reports how often they
reach a fixed point within the step budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import mean
from typing import Iterable, Sequence

from ..config import RunConfig, resolve_config
from ..core.spp import SPPInstance
from ..models.taxonomy import CommunicationModel

__all__ = [
    "ModelStats",
    "ConvergenceSurvey",
    "survey_convergence",
    "wilson_interval",
]


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> "tuple[float, float]":
    """Wilson score interval for a binomial proportion.

    The campaign reports quote it instead of the normal approximation
    because survey rates routinely sit at 0% or 100% (every seed of a
    dispute-wheel-free instance converges), where the Wald interval
    collapses to a width of zero.  ``trials == 0`` yields the vacuous
    ``(0.0, 1.0)``.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError("need 0 <= successes <= trials")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = p + z * z / (2 * trials)
    spread = z * math.sqrt(p * (1.0 - p) / trials + z * z / (4 * trials * trials))
    return (
        max(0.0, (center - spread) / denom),
        min(1.0, (center + spread) / denom),
    )


@dataclass
class ModelStats:
    """Aggregated outcomes of many runs under one model."""

    model_name: str
    runs: int = 0
    converged: int = 0
    steps_to_converge: list = field(default_factory=list)

    @property
    def convergence_rate(self) -> float:
        return self.converged / self.runs if self.runs else 0.0

    @property
    def mean_steps(self) -> float:
        """Mean steps to fixed point among converged runs."""
        return mean(self.steps_to_converge) if self.steps_to_converge else 0.0

    def steps_percentile(self, fraction: float) -> float:
        """Steps-to-convergence percentile (0 < fraction ≤ 1).

        Nearest-rank over the converged runs; 0.0 when none converged.
        Tail latency (p95) separates deployment styles more sharply
        than the mean — polling's worst cases stay close to its median,
        while queue-backlog models exhibit long tails.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if not self.steps_to_converge:
            return 0.0
        ordered = sorted(self.steps_to_converge)
        rank = max(1, math.ceil(fraction * len(ordered)))
        return float(ordered[rank - 1])

    def rate_ci(self, z: float = 1.96) -> "tuple[float, float]":
        """Wilson confidence interval on the convergence rate."""
        return wilson_interval(self.converged, self.runs, z=z)

    def record(self, converged: bool, steps: int) -> None:
        self.runs += 1
        if converged:
            self.converged += 1
            self.steps_to_converge.append(steps)


@dataclass
class ConvergenceSurvey:
    """Results of a full sweep: per-model statistics plus metadata."""

    per_model: dict
    instances: int
    seeds_per_instance: int
    max_steps: int

    def rate(self, model_name: str) -> float:
        return self.per_model[model_name].convergence_rate

    def ordered_by_rate(self) -> list:
        return sorted(
            self.per_model.values(),
            key=lambda stats: (-stats.convergence_rate, stats.model_name),
        )

    def as_dict(self) -> dict:
        """Machine-readable form (``repro experiments --json``)."""
        return {
            "instances": self.instances,
            "seeds_per_instance": self.seeds_per_instance,
            "max_steps": self.max_steps,
            "per_model": {
                stats.model_name: {
                    "runs": stats.runs,
                    "converged": stats.converged,
                    "rate": round(stats.convergence_rate, 6),
                    "mean_steps": round(stats.mean_steps, 3),
                    "p95_steps": stats.steps_percentile(0.95),
                }
                for stats in self.ordered_by_rate()
            },
        }

    def format_table(self) -> str:
        lines = ["model | runs | converged | rate   | mean steps | p95 steps"]
        lines.append("-" * 64)
        for stats in self.ordered_by_rate():
            lines.append(
                f"{stats.model_name:<5} | {stats.runs:>4} | "
                f"{stats.converged:>9} | {stats.convergence_rate:6.2%} | "
                f"{stats.mean_steps:8.1f}   | {stats.steps_percentile(0.95):7.0f}"
            )
        return "\n".join(lines)


def survey_convergence(
    instances: Sequence[SPPInstance],
    models: Iterable[CommunicationModel],
    seeds_per_instance: int = 5,
    max_steps: "int | None" = None,
    drop_prob: float = 0.2,
    workers: "int | None" = None,
    config: "RunConfig | None" = None,
) -> ConvergenceSurvey:
    """Run the sweep: every instance × model × seed.

    Each (instance, model) pair becomes one :class:`SimulationTask`
    carrying its explicit seed range, so the survey is deterministic
    for every worker count: outcomes depend only on the seeds, and the
    fan-out merges results in task order.  ``config`` carries the
    fan-out width (``workers=None`` = one per core) and the step budget
    (``step_bound``, default 600); the ``max_steps``/``workers``
    keywords are a deprecated shim.
    """
    from ..engine.parallel import SimulationTask, run_simulations

    explicit_config = config is not None
    config = resolve_config(
        config, caller="survey_convergence",
        max_steps=max_steps, workers=workers,
    )
    if not explicit_config and workers is None and config.workers is None:
        # Preserve the historical in-process default for bare calls.
        config = config.replace(workers=1)
    models = tuple(models)
    per_model = {m.name: ModelStats(model_name=m.name) for m in models}
    tasks = [
        SimulationTask.from_config(
            instance,
            model.name,
            config,
            seeds=tuple(range(seeds_per_instance)),
            drop_prob=drop_prob,
        )
        for instance in instances
        for model in models
    ]
    for (_, model_name), outcomes in run_simulations(tasks, config=config):
        for converged, steps in outcomes:
            per_model[model_name].record(converged, steps)
    return ConvergenceSurvey(
        per_model=per_model,
        instances=len(instances),
        seeds_per_instance=seeds_per_instance,
        max_steps=config.max_steps,
    )
