"""Write the reproduction's artifacts to disk.

``generate_artifacts(directory)`` regenerates the paper-facing outputs
— the derived Figures 3/4 with their comparison reports, the
realization lattice (DOT), the per-gadget oscillation verdicts, and the
extension experiments' tables — as plain-text files suitable for
diffing against future runs or attaching to a report.

The heavyweight exhaustive verifications (Fig. 6 polling, multi-node
sweeps) are included only with ``full=True``.
"""

from __future__ import annotations

from pathlib import Path

from ..realization.closure import derive_matrix
from . import experiments, reporting

__all__ = ["generate_artifacts"]


def _write(directory: Path, name: str, content: str) -> Path:
    path = directory / name
    path.write_text(content.rstrip() + "\n", encoding="utf-8")
    return path


def generate_artifacts(directory: "str | Path", full: bool = False) -> list:
    """Write every artifact; returns the list of paths created."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list = []

    matrix = derive_matrix()
    fig3 = experiments.experiment_figure3()
    fig4 = experiments.experiment_figure4()
    written.append(_write(directory, "figure3.txt", fig3.matrix_text))
    written.append(_write(directory, "figure4.txt", fig4.matrix_text))
    written.append(
        _write(
            directory,
            "figure3_comparison.txt",
            fig3.summary,
        )
    )
    written.append(
        _write(
            directory,
            "figure4_comparison.txt",
            fig4.summary,
        )
    )
    written.append(
        _write(
            directory,
            "realization_exact.dot",
            reporting.render_realization_dot(matrix, level_name="EXACT"),
        )
    )
    written.append(
        _write(
            directory,
            "realization_oscillation.dot",
            reporting.render_realization_dot(matrix, level_name="OSCILLATION"),
        )
    )

    disagree = experiments.experiment_disagree()
    written.append(_write(directory, "disagree_verdicts.txt", disagree.summary))

    polling = ("R1A", "RMA", "REA") if full else ("REA",)
    fig6 = experiments.experiment_fig6(polling_models=polling)
    written.append(_write(directory, "fig6_separation.txt", fig6.summary))

    for name, driver in (
        ("fig7_exact.txt", experiments.experiment_fig7),
        ("fig8_repetition.txt", experiments.experiment_fig8),
        ("fig9_r1s.txt", experiments.experiment_fig9),
    ):
        written.append(_write(directory, name, driver().summary))

    written.append(
        _write(
            directory,
            "multinode_exa6.txt",
            experiments.experiment_multinode().summary,
        )
    )
    written.append(
        _write(
            directory,
            "dispute_wheels.txt",
            experiments.experiment_dispute_wheels().summary,
        )
    )
    written.append(
        _write(
            directory,
            "message_overhead.txt",
            experiments.experiment_message_overhead().summary,
        )
    )
    written.append(
        _write(
            directory,
            "convergence_survey.txt",
            experiments.experiment_convergence_rates().format_table(),
        )
    )
    return written
