"""Trace inspection utilities — render executions the way the paper does.

The paper presents executions as tables of ``t``, the activated node
``U(t)``, and the path chosen by that node, ``π_{U(t)}(t)``.  This
module produces and checks such tables against recorded
:class:`~repro.engine.execution.Trace` objects.
"""

from __future__ import annotations

from typing import Sequence

from ..core.paths import format_path, parse_path
from ..engine.execution import Trace

__all__ = [
    "active_node_choices",
    "format_channel_timeline",
    "format_trace_table",
    "matches_paper_trace",
    "node_assignment_sequence",
]


def active_node_choices(trace: Trace) -> tuple:
    """``(node, chosen path)`` per step, for single-node schedules.

    This is the paper's ``π_{U(t)}(t)`` row.
    """
    choices = []
    for state, record in zip(trace.states, trace.records):
        node = record.entry.node
        choices.append((node, state.path_of(node)))
    return tuple(choices)


def node_assignment_sequence(trace: Trace, node) -> tuple:
    """The sequence of assignments of one node across all steps."""
    return tuple(state.path_of(node) for state in trace.states)


def matches_paper_trace(trace: Trace, expected: Sequence[str]) -> bool:
    """Check ``π_{U(t)}(t)`` against the paper's compact path strings.

    ``expected`` uses the paper notation: ``"xyd"`` for a path, ``"e"``
    or ``"ε"`` for the empty route.  Only as many steps as given are
    checked.
    """
    choices = active_node_choices(trace)
    if len(choices) < len(expected):
        return False
    for (node, path), text in zip(choices, expected):
        want = parse_path(text if text not in ("e",) else "ε")
        if path != want:
            return False
    return True


def format_channel_timeline(trace: Trace, max_channels: int = 12) -> str:
    """Per-step queue depths, one column per channel.

    Renders how backlog builds and drains over an execution — the
    quantity the message-count dimension (O/S/F/A) manipulates.  ``*``
    marks channels processed at that step.
    """
    channels = [
        channel
        for channel in trace.instance.channels
        if any(state.channel_contents(channel) for state in trace.states)
    ][:max_channels]
    if not channels:
        return "(no channel ever held a message)"
    header = "  t | " + " ".join(
        f"{channel[0]}->{channel[1]}" for channel in channels
    )
    lines = [header, "-" * len(header)]
    for index, (state, record) in enumerate(
        zip(trace.states, trace.records), start=1
    ):
        cells = []
        for channel in channels:
            depth = state.message_count(channel)
            mark = "*" if channel in record.entry.channels else " "
            width = len(f"{channel[0]}->{channel[1]}")
            cells.append(f"{depth}{mark}".center(width))
        lines.append(f"{index:>3} | " + " ".join(cells))
    return "\n".join(lines)


def format_trace_table(trace: Trace) -> str:
    """A paper-style table: step, activated node(s), chosen path(s)."""
    lines = ["  t | U(t)        | pi_U(t)"]
    lines.append("-" * 40)
    for index, (state, record) in enumerate(
        zip(trace.states, trace.records), start=1
    ):
        nodes = sorted(record.entry.nodes, key=repr)
        chosen = ", ".join(format_path(state.path_of(n)) for n in nodes)
        names = ",".join(str(n) for n in nodes)
        lines.append(f"{index:>3} | {names:<11} | {chosen}")
    return "\n".join(lines)
