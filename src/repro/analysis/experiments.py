"""Experiment drivers — one per table/figure of the paper (see DESIGN.md).

Each ``experiment_*`` function reproduces one artifact and returns a
result object whose fields the benchmarks assert on and whose
``summary`` string the CLI prints.  The scripted activation sequences
are the paper's own (Appendix A); expected values are transcribed
verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import RunConfig, resolve_config
from ..core import instances as canonical
from ..core.dispute import has_dispute_wheel
from ..core.generators import instance_family
from ..core.solutions import enumerate_stable_solutions
from ..engine.activation import INFINITY, ActivationEntry
from ..engine.convergence import find_oscillation_evidence
from ..engine.execution import Execution
from ..engine.explorer import can_oscillate
from ..models.taxonomy import model
from ..realization.closure import derive_matrix
from ..realization.paper_tables import (
    FIGURE3_COLUMNS,
    FIGURE4_COLUMNS,
    compare_with_derived,
)
from ..realization.search import RealizationSearch
from . import reporting
from .stats import survey_convergence
from .traces import matches_paper_trace

__all__ = [
    "MATRIX_CERTIFIED_SAFE",
    "MatrixExperiment",
    "OscillationExperiment",
    "TraceRealizationExperiment",
    "matrix_certification",
    "experiment_figure3",
    "experiment_figure4",
    "experiment_disagree",
    "experiment_fig6",
    "experiment_fig7",
    "experiment_fig8",
    "experiment_fig9",
    "experiment_multinode",
    "experiment_dispute_wheels",
    "experiment_convergence_rates",
    "experiment_message_overhead",
    "suite_as_dict",
    "OverheadExperiment",
    "FIG6_REO_SCHEDULE",
    "FIG6_REO_EXPECTED",
    "FIG7_REO_SCHEDULE",
    "FIG7_REO_EXPECTED",
    "FIG8_REA_SCHEDULE",
    "FIG8_REA_EXPECTED",
    "FIG9_REA_SCHEDULE",
    "FIG9_REA_EXPECTED",
]


def _experiment_config(
    config: "RunConfig | None",
    caller: str,
    workers: "int | None" = None,
    queue_bound: "int | None" = None,
    engine: "str | None" = None,
    reduction: "str | None" = None,
    cache_dir: "str | None" = None,
    max_steps: "int | None" = None,
) -> RunConfig:
    """The experiments' legacy-kwarg shim.

    Folds the deprecated per-call kwargs into ``config`` (warning when
    any were passed), and — purely to preserve the drivers' historical
    default — pins ``workers=1`` when the caller supplied neither a
    config nor an explicit worker count.
    """
    resolved = resolve_config(
        config,
        caller=caller,
        workers=workers,
        queue_bound=queue_bound,
        engine=engine,
        reduction=reduction,
        cache_dir=cache_dir,
        max_steps=max_steps,
    )
    if config is None and workers is None and resolved.workers is None:
        resolved = resolved.replace(workers=1)
    return resolved


# ----------------------------------------------------------------------
# E1/E2 — Figures 3 and 4.
# ----------------------------------------------------------------------
@dataclass
class MatrixExperiment:
    """Derived matrix compared against a published figure."""

    figure: str
    comparisons: list
    matrix_text: str
    #: Optional explorer cross-check: model name → ExplorationResult on
    #: DISAGREE (see :func:`matrix_certification`).  ``None`` when the
    #: experiment ran without certification.
    certification: "dict | None" = None

    @property
    def matches(self) -> int:
        return sum(1 for c in self.comparisons if c.verdict == "match")

    @property
    def tighter(self) -> int:
        return sum(1 for c in self.comparisons if c.verdict == "tighter")

    @property
    def problems(self) -> list:
        return [
            c
            for c in self.comparisons
            if c.verdict in ("looser", "incomparable", "contradiction")
        ]

    @property
    def summary(self) -> str:
        text = (
            f"{self.figure}: {self.matches} entries match the paper, "
            f"{self.tighter} derived strictly tighter, "
            f"{len(self.problems)} problems\n"
            + reporting.render_comparison_summary(self.comparisons)
        )
        if self.certification is not None:
            oscillating = sorted(
                name
                for name, result in self.certification.items()
                if result.oscillates
            )
            safe = sorted(
                name
                for name, result in self.certification.items()
                if not result.oscillates and result.complete
            )
            text += (
                f"\ncertified on DISAGREE: {len(oscillating)} models "
                f"oscillate, {len(safe)} proved safe "
                f"(safe: {', '.join(safe)})\n"
                + reporting.render_certification_table(self.certification)
            )
        return text

    def as_dict(self) -> dict:
        """Machine-readable form (``repro experiments --json``)."""
        return {
            "figure": self.figure,
            "matches": self.matches,
            "tighter": self.tighter,
            "problems": len(self.problems),
            "certification": (
                None
                if self.certification is None
                else {
                    name: result.as_dict()
                    for name, result in sorted(self.certification.items())
                }
            ),
        }


#: The models that provably cannot oscillate on DISAGREE — the five of
#: Thm. 3.8 plus the unreliable twins the exhaustive search also proves
#: safe (dropping messages does not rescue an oscillation here).
MATRIX_CERTIFIED_SAFE = frozenset(
    ("REO", "REF", "R1A", "RMA", "REA", "UEO", "UEF", "U1A", "UMA", "UEA")
)


def matrix_certification(
    workers: "int | None" = None,
    queue_bound: "int | None" = None,
    instance=None,
    engine: "str | None" = None,
    reduction: "str | None" = None,
    cache_dir: "str | None" = None,
    config: "RunConfig | None" = None,
) -> dict:
    """Explorer cross-check of the derived matrices on DISAGREE.

    Runs the bounded model checker for **all 24 models** on the paper's
    central counterexample and returns ``{model name: ExplorationResult}``.
    The expected split (:data:`MATRIX_CERTIFIED_SAFE` versus the rest)
    is exactly what the realization orderings behind Figures 3/4
    predict, so the fan-out certifies the rule-derived matrices against
    direct search.  Verdicts are identical for every worker count.

    ``config`` (a :class:`repro.RunConfig`) carries the worker count,
    bounds, execution core, partial-order reducer, and shared verdict
    cache; the individual keyword arguments are a deprecated shim.
    ``instance`` substitutes another gadget for DISAGREE (the perf
    benchmark certifies Fig. 7, whose state space actually stresses the
    reducer).
    """
    from ..engine.parallel import ExplorationTask, run_explorations
    from ..models.taxonomy import ALL_MODELS

    config = _experiment_config(
        config,
        "matrix_certification",
        workers=workers,
        queue_bound=queue_bound,
        engine=engine,
        reduction=reduction,
        cache_dir=cache_dir,
    )
    if instance is None:
        instance = canonical.disagree()
    tasks = [
        ExplorationTask.from_config(instance, m.name, config, key=(m.name,))
        for m in ALL_MODELS
    ]
    return {
        key[0]: result
        for key, result in run_explorations(tasks, config=config)
    }


def experiment_figure3(
    workers: "int | None" = None,
    engine: "str | None" = None,
    reduction: "str | None" = None,
    cache_dir: "str | None" = None,
    config: "RunConfig | None" = None,
) -> MatrixExperiment:
    """E1: regenerate Figure 3 (realization by reliable models).

    With ``config`` (or the deprecated ``workers``) set, additionally
    runs :func:`matrix_certification` across that many processes and
    attaches the verdicts.
    """
    certify = config is not None or workers is not None
    config = _experiment_config(
        config, "experiment_figure3", workers=workers, engine=engine,
        reduction=reduction, cache_dir=cache_dir,
    )
    matrix = derive_matrix()
    return MatrixExperiment(
        figure="Figure 3",
        comparisons=compare_with_derived(matrix, columns=FIGURE3_COLUMNS),
        matrix_text=reporting.render_figure3(matrix),
        certification=matrix_certification(config=config) if certify else None,
    )


def experiment_figure4(
    workers: "int | None" = None,
    engine: "str | None" = None,
    reduction: "str | None" = None,
    cache_dir: "str | None" = None,
    config: "RunConfig | None" = None,
) -> MatrixExperiment:
    """E2: regenerate Figure 4 (realization by unreliable models)."""
    certify = config is not None or workers is not None
    config = _experiment_config(
        config, "experiment_figure4", workers=workers, engine=engine,
        reduction=reduction, cache_dir=cache_dir,
    )
    matrix = derive_matrix()
    return MatrixExperiment(
        figure="Figure 4",
        comparisons=compare_with_derived(matrix, columns=FIGURE4_COLUMNS),
        matrix_text=reporting.render_figure4(matrix),
        certification=matrix_certification(config=config) if certify else None,
    )


# ----------------------------------------------------------------------
# E3 — DISAGREE (Fig. 5 / Ex. A.1).
# ----------------------------------------------------------------------
@dataclass
class OscillationExperiment:
    """Explorer verdicts for one instance across models."""

    instance_name: str
    results: dict  # model name → ExplorationResult
    expected_oscillating: frozenset
    expected_safe: frozenset

    @property
    def correct(self) -> bool:
        for name in self.expected_oscillating:
            result = self.results[name]
            if not result.oscillates:
                return False
        for name in self.expected_safe:
            result = self.results[name]
            if result.oscillates or not result.complete:
                return False
        return True

    @property
    def summary(self) -> str:
        verdict = "REPRODUCED" if self.correct else "MISMATCH"
        return (
            f"{self.instance_name}: {verdict}\n"
            + reporting.render_oscillation_table(self.results)
        )

    def as_dict(self) -> dict:
        return {
            "instance": self.instance_name,
            "correct": self.correct,
            "results": {
                name: result.as_dict()
                for name, result in sorted(self.results.items())
            },
        }


#: The models Ex. A.1 proves cannot oscillate on DISAGREE.
DISAGREE_SAFE_MODELS = ("REO", "REF", "R1A", "RMA", "REA")
#: A representative set that can (R1O plus everything realizing it).
DISAGREE_OSCILLATING_MODELS = (
    "R1O", "RMO", "R1S", "RMS", "RES", "R1F", "RMF",
    "U1O", "UMO", "U1S", "UMS",
)


def experiment_disagree(
    queue_bound: "int | None" = None,
    workers: "int | None" = None,
    engine: "str | None" = None,
    reduction: "str | None" = None,
    cache_dir: "str | None" = None,
    config: "RunConfig | None" = None,
) -> OscillationExperiment:
    """E3: DISAGREE oscillates in R1O & co. but never in the five
    models of Thm. 3.8."""
    from ..engine.parallel import ExplorationTask, run_explorations

    config = _experiment_config(
        config, "experiment_disagree", workers=workers,
        queue_bound=queue_bound, engine=engine, reduction=reduction,
        cache_dir=cache_dir,
    )
    instance = canonical.disagree()
    names = DISAGREE_OSCILLATING_MODELS + DISAGREE_SAFE_MODELS
    tasks = [
        ExplorationTask.from_config(instance, name, config, key=(name,))
        for name in names
    ]
    results = {
        key[0]: result
        for key, result in run_explorations(tasks, config=config)
    }
    return OscillationExperiment(
        instance_name=instance.name,
        results=results,
        expected_oscillating=frozenset(DISAGREE_OSCILLATING_MODELS),
        expected_safe=frozenset(DISAGREE_SAFE_MODELS),
    )


# ----------------------------------------------------------------------
# E4 — the Fig. 6 gadget (Ex. A.2).
# ----------------------------------------------------------------------
#: The scripted REO prefix of Ex. A.2 (t = 1…13) and its path choices.
FIG6_REO_SCHEDULE = ("d", "x", "a", "u", "v", "y", "a", "u", "v", "z", "a", "v", "u")
FIG6_REO_EXPECTED = (
    "d", "xd", "axd", "uaxd", "vuaxd", "yd", "ayd", "ε", "vayd",
    "zd", "azd", "vazd", "uazd",
)


@dataclass
class Fig6Experiment:
    """Scripted REO oscillation plus polling-impossibility verdicts."""

    trace_matches: bool
    recurrence: "tuple | None"
    polling_results: dict = field(default_factory=dict)

    @property
    def oscillates_in_reo(self) -> bool:
        return self.trace_matches and self.recurrence is not None

    @property
    def polling_safe(self) -> bool:
        return all(
            not result.oscillates and result.complete
            for result in self.polling_results.values()
        )

    @property
    def summary(self) -> str:
        lines = [
            f"Fig. 6 REO scripted trace matches paper: {self.trace_matches}",
            f"full-state recurrence (oscillation) at: {self.recurrence}",
        ]
        if self.polling_results:
            lines.append(reporting.render_oscillation_table(self.polling_results))
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "trace_matches": self.trace_matches,
            "oscillates_in_reo": self.oscillates_in_reo,
            "recurrence": (
                None if self.recurrence is None else list(self.recurrence)
            ),
            "polling_safe": self.polling_safe,
            "polling_results": {
                name: result.as_dict()
                for name, result in sorted(self.polling_results.items())
            },
        }


def run_fig6_reo_trace(extra_rounds: int = 8) -> "tuple":
    """Run the Ex. A.2 REO schedule and extend it with the fair cycle.

    Returns ``(trace, matched, recurrence)`` where ``matched`` checks
    the scripted prefix against the paper's table and ``recurrence`` is
    evidence of oscillation (a repeated full network state) under the
    fair extension [v, u, a, d, x, y, z] repeated.
    """
    instance = canonical.fig6_gadget()
    execution = Execution(instance)
    execution.run_nodes(FIG6_REO_SCHEDULE, kind="one-each")
    matched = matches_paper_trace(execution.trace, FIG6_REO_EXPECTED)
    for _ in range(extra_rounds):
        execution.run_nodes(("v", "u", "a", "d", "x", "y", "z"), kind="one-each")
    recurrence = find_oscillation_evidence(execution.trace)
    return execution.trace, matched, recurrence


def experiment_fig6(
    polling_models: "tuple | None" = ("REA",),
    queue_bound: int = 2,
    workers: "int | None" = None,
    engine: "str | None" = None,
    reduction: "str | None" = None,
    cache_dir: "str | None" = None,
    config: "RunConfig | None" = None,
) -> Fig6Experiment:
    """E4: Fig. 6 oscillates in REO but not in the polling models.

    ``polling_models`` defaults to REA only (seconds); pass
    ``("R1A", "RMA", "REA")`` for the full — minutes-long — Thm. 3.9
    verification, as the benchmark does.  The polling explorations are
    independent and fan out across ``config.workers`` processes.
    ``queue_bound`` and the 2M-state budget are experiment-defined
    bounds (Thm. 3.9's search needs exactly these), so they override
    whatever ``config`` carries.
    """
    from ..engine.parallel import ExplorationTask, run_explorations

    config = _experiment_config(
        config, "experiment_fig6", workers=workers, engine=engine,
        reduction=reduction, cache_dir=cache_dir,
    )
    search = config.replace(queue_bound=queue_bound, step_bound=2_000_000)
    _, matched, recurrence = run_fig6_reo_trace()
    instance = canonical.fig6_gadget()
    tasks = [
        ExplorationTask.from_config(instance, name, search, key=(name,))
        for name in polling_models or ()
    ]
    results = {
        key[0]: result
        for key, result in run_explorations(tasks, config=config)
    }
    return Fig6Experiment(
        trace_matches=matched,
        recurrence=recurrence,
        polling_results=results,
    )


# ----------------------------------------------------------------------
# E5/E6/E7 — the trace-realization gadgets (Figs. 7, 8, 9).
# ----------------------------------------------------------------------
FIG7_REO_SCHEDULE = ("d", "b", "u", "v", "a", "u", "v", "s", "s", "s")
FIG7_REO_EXPECTED = (
    "d", "bd", "ubd", "vbd", "ad", "uad", "vad", "subd", "suad", "suad",
)

FIG8_REA_SCHEDULE = ("d", "a", "u", "b", "u", "s")
FIG8_REA_EXPECTED = ("d", "ad", "uad", "bd", "ubd", "subd")

FIG9_REA_SCHEDULE = ("d", "b", "c", "x", "s", "a", "c", "s")
FIG9_REA_EXPECTED = ("d", "bd", "cbd", "xd", "scbd", "ad", "cad", "sxd")


@dataclass
class TraceRealizationExperiment:
    """A scripted source trace and the verdicts of target-model searches."""

    figure: str
    trace_matches: bool
    target_model: str
    impossible_mode: str
    impossible_proved: bool
    search_states: int
    possible_mode: "str | None" = None
    possible_schedule: "tuple | None" = None

    @property
    def correct(self) -> bool:
        ok = self.trace_matches and self.impossible_proved
        if self.possible_mode is not None:
            ok = ok and self.possible_schedule is not None
        return ok

    @property
    def summary(self) -> str:
        lines = [
            f"{self.figure}: scripted trace matches paper: {self.trace_matches}",
            f"  {self.target_model} cannot realize it "
            f"[{self.impossible_mode}]: proved={self.impossible_proved} "
            f"(visited {self.search_states} search states)",
        ]
        if self.possible_mode is not None:
            found = self.possible_schedule is not None
            lines.append(
                f"  but CAN realize it [{self.possible_mode}]: found={found}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "figure": self.figure,
            "trace_matches": self.trace_matches,
            "target_model": self.target_model,
            "impossible_mode": self.impossible_mode,
            "impossible_proved": self.impossible_proved,
            "search_states": self.search_states,
            "possible_mode": self.possible_mode,
            "possible_found": (
                None
                if self.possible_mode is None
                else self.possible_schedule is not None
            ),
            "correct": self.correct,
        }


def _scripted_trace(instance, schedule, kind: str):
    execution = Execution(instance)
    execution.run_nodes(schedule, kind=kind)
    return execution.trace


def experiment_fig7(queue_bound: int = 4) -> TraceRealizationExperiment:
    """E5 (Ex. A.3): the Fig. 7 REO execution has no exact R1O realization."""
    instance = canonical.fig7_gadget()
    trace = _scripted_trace(instance, FIG7_REO_SCHEDULE, "one-each")
    matched = matches_paper_trace(trace, FIG7_REO_EXPECTED)
    search = RealizationSearch(instance, model("R1O"), queue_bound=queue_bound)
    outcome = search.find_exact(trace.pi_sequence)
    return TraceRealizationExperiment(
        figure="Figure 7 (Ex. A.3)",
        trace_matches=matched,
        target_model="R1O",
        impossible_mode="exact",
        impossible_proved=outcome.proves_impossible,
        search_states=outcome.states_visited,
    )


def experiment_fig8(queue_bound: int = 4) -> TraceRealizationExperiment:
    """E6 (Ex. A.4): the Fig. 8 REA execution cannot be realized with
    repetition in R1O — but embeds as a subsequence."""
    instance = canonical.fig8_gadget()
    trace = _scripted_trace(instance, FIG8_REA_SCHEDULE, "poll")
    matched = matches_paper_trace(trace, FIG8_REA_EXPECTED)
    search = RealizationSearch(instance, model("R1O"), queue_bound=queue_bound)
    impossible = search.find_with_repetition(trace.pi_sequence)
    possible = search.find_subsequence(trace.pi_sequence, max_steps=16)
    return TraceRealizationExperiment(
        figure="Figure 8 (Ex. A.4)",
        trace_matches=matched,
        target_model="R1O",
        impossible_mode="repetition",
        impossible_proved=impossible.proves_impossible,
        search_states=impossible.states_visited,
        possible_mode="subsequence",
        possible_schedule=possible.schedule,
    )


def experiment_fig9(queue_bound: int = 4) -> TraceRealizationExperiment:
    """E7 (Ex. A.5): the Fig. 9 REA execution has no exact R1S realization."""
    instance = canonical.fig9_gadget()
    trace = _scripted_trace(instance, FIG9_REA_SCHEDULE, "poll")
    matched = matches_paper_trace(trace, FIG9_REA_EXPECTED)
    search = RealizationSearch(instance, model("R1S"), queue_bound=queue_bound)
    outcome = search.find_exact(trace.pi_sequence)
    return TraceRealizationExperiment(
        figure="Figure 9 (Ex. A.5)",
        trace_matches=matched,
        target_model="R1S",
        impossible_mode="exact",
        impossible_proved=outcome.proves_impossible,
        search_states=outcome.states_visited,
    )


# ----------------------------------------------------------------------
# E8 — multi-node activation (Ex. A.6).
# ----------------------------------------------------------------------
@dataclass
class MultiNodeExperiment:
    """Ex. A.6: simultaneous polling can oscillate on DISAGREE."""

    recurrence: "tuple | None"
    assignments_seen: int

    @property
    def oscillates(self) -> bool:
        return self.recurrence is not None and self.assignments_seen >= 2

    @property
    def summary(self) -> str:
        return (
            "Ex. A.6 multi-node R1A on DISAGREE: "
            f"recurrence={self.recurrence}, distinct assignments="
            f"{self.assignments_seen} → oscillates={self.oscillates}"
        )

    def as_dict(self) -> dict:
        return {
            "recurrence": (
                None if self.recurrence is None else list(self.recurrence)
            ),
            "assignments_seen": self.assignments_seen,
            "oscillates": self.oscillates,
        }


def experiment_multinode(rounds: int = 6) -> MultiNodeExperiment:
    """E8: run the Ex. A.6 schedule — x and y polling in lockstep."""
    instance = canonical.disagree()
    execution = Execution(instance)

    def entry(nodes_channels) -> ActivationEntry:
        channels = [channel for _, channel in nodes_channels]
        return ActivationEntry(
            nodes=[node for node, _ in nodes_channels],
            channels=channels,
            reads={channel: INFINITY for channel in channels},
        )

    execution.step(entry([("d", ("x", "d"))]))
    cycle = [
        entry([("x", ("d", "x")), ("y", ("d", "y"))]),
        entry([("x", ("y", "x")), ("y", ("x", "y"))]),
        entry([("d", ("x", "d"))]),
        entry([("d", ("y", "d"))]),
    ]
    for _ in range(rounds):
        for step in cycle:
            execution.step(step)
    recurrence = find_oscillation_evidence(execution.trace)
    distinct = len(set(execution.trace.pi_sequence))
    return MultiNodeExperiment(recurrence=recurrence, assignments_seen=distinct)


# ----------------------------------------------------------------------
# E11 — dispute wheels and guaranteed convergence.
# ----------------------------------------------------------------------
@dataclass
class DisputeWheelExperiment:
    """Wheel presence versus solvability/oscillation for the gadgets."""

    rows: list  # (name, has_wheel, n_solutions, oscillates_in_RMS)

    @property
    def summary(self) -> str:
        lines = ["instance        | wheel | stable solutions | RMS oscillation"]
        lines.append("-" * 62)
        for name, wheel, solutions, oscillates in self.rows:
            lines.append(
                f"{name:<15} | {str(wheel):<5} | {solutions:>16} | {oscillates}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "rows": [
                {
                    "instance": name,
                    "dispute_wheel": wheel,
                    "stable_solutions": solutions,
                    "oscillates_in_rms": oscillates,
                }
                for name, wheel, solutions, oscillates in self.rows
            ]
        }


def experiment_dispute_wheels() -> DisputeWheelExperiment:
    """E11: no dispute wheel ⇒ unique solution and no oscillation anywhere."""
    rows = []
    for factory in (
        canonical.disagree,
        canonical.bad_gadget,
        canonical.good_gadget,
        lambda: canonical.shortest_paths_ring(3),
    ):
        instance = factory()
        wheel = has_dispute_wheel(instance)
        solutions = len(list(enumerate_stable_solutions(instance)))
        oscillates = can_oscillate(
            instance, model("RMS"), config=RunConfig(queue_bound=2)
        ).oscillates
        rows.append((instance.name, wheel, solutions, oscillates))
    return DisputeWheelExperiment(rows=rows)


# ----------------------------------------------------------------------
# E10 — convergence-rate survey.
# ----------------------------------------------------------------------
def experiment_convergence_rates(
    n_instances: int = 6,
    seeds_per_instance: int = 3,
    model_names: tuple = ("R1O", "REO", "RMS", "REA", "U1O", "UMS"),
    max_steps: "int | None" = None,
    workers: "int | None" = None,
    config: "RunConfig | None" = None,
):
    """E10: convergence frequency per model on random policy instances.

    The historical 400-step budget applies unless ``max_steps`` (legacy)
    or ``config.step_bound`` says otherwise.
    """
    config = _experiment_config(
        config, "experiment_convergence_rates",
        workers=workers, max_steps=max_steps,
    )
    if config.step_bound is None:
        config = config.replace(step_bound=400)
    instances = list(
        instance_family(n_instances, base_seed=7, n_nodes=4, policy="random")
    )
    return survey_convergence(
        instances,
        [model(name) for name in model_names],
        seeds_per_instance=seeds_per_instance,
        config=config,
    )


# ----------------------------------------------------------------------
# E13 — message overhead per model (extension; Sec. 4 trade-offs).
# ----------------------------------------------------------------------
@dataclass
class OverheadExperiment:
    """Per-model message accounting on one instance until fixed point."""

    instance_name: str
    rows: dict  # model name → (converged, steps, ExecutionMetrics)

    @property
    def summary(self) -> str:
        lines = [
            f"{self.instance_name}: message overhead to convergence",
            "model | steps | announcements | processed | dropped | msg/change",
        ]
        lines.append("-" * 68)
        for name in sorted(self.rows):
            converged, steps, metrics = self.rows[name]
            lines.append(
                f"{name:<5} | {steps:>5} | {metrics.announcements:>13} | "
                f"{metrics.messages_processed:>9} | "
                f"{metrics.messages_dropped:>7} | "
                f"{metrics.announcements_per_change:>10.2f}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "instance": self.instance_name,
            "rows": {
                name: {
                    "converged": converged,
                    "steps": steps,
                    "metrics": metrics.as_dict(),
                }
                for name, (converged, steps, metrics) in sorted(
                    self.rows.items()
                )
            },
        }


def experiment_message_overhead(
    instance=None,
    model_names: tuple = ("R1O", "REO", "RMS", "REA", "UMS"),
    seed: int = 0,
    max_steps: int = 4000,
    drop_prob: float = 0.2,
) -> OverheadExperiment:
    """E13: protocol chattiness across deployment styles.

    Runs each model to a fixed point on the same (convergent) instance
    with the same scheduler seed and tallies message counters — the
    operational face of the Sec. 4 wait-time/announcement trade-off.
    """
    from ..engine.convergence import is_fixed_point
    from ..engine.metrics import measure
    from ..engine.schedulers import RandomScheduler

    instance = instance or canonical.fig7_gadget()
    rows = {}
    for name in model_names:
        execution = Execution(instance)
        scheduler = RandomScheduler(
            instance, model(name), seed=seed, drop_prob=drop_prob
        )
        converged = False
        steps = 0
        for steps in range(1, max_steps + 1):
            execution.step(scheduler.next_entry(execution.state))
            if is_fixed_point(instance, execution.state):
                converged = True
                break
        rows[name] = (converged, steps, measure(execution.trace))
    return OverheadExperiment(instance_name=instance.name, rows=rows)


# ----------------------------------------------------------------------
# Machine-readable suite (``repro experiments --json``).
# ----------------------------------------------------------------------
def suite_as_dict(
    full: bool = False,
    workers: "int | None" = None,
    engine: "str | None" = None,
    reduction: "str | None" = None,
    cache_dir: "str | None" = None,
    config: "RunConfig | None" = None,
) -> dict:
    """Run the experiment suite and return one JSON-serializable dict.

    Mirrors the CLI's text path experiment for experiment (E1–E13), but
    every result is reported through its ``as_dict()`` instead of its
    ``summary`` string, so downstream tooling never scrapes tables.
    """
    from ..engine.multinode import can_oscillate_multinode
    from ..models.taxonomy import model as model_by_name

    config = _experiment_config(
        config, "suite_as_dict", workers=workers, engine=engine,
        reduction=reduction, cache_dir=cache_dir,
    )
    polling = ("R1A", "RMA", "REA") if full else ("REA",)
    lockstep = can_oscillate_multinode(
        canonical.disagree(), model_by_name("R1A"), queue_bound=2
    )
    staggered = can_oscillate_multinode(
        canonical.disagree(),
        model_by_name("R1A"),
        queue_bound=2,
        require_solo_activations=True,
    )
    survey = experiment_convergence_rates(config=config.replace(step_bound=None))
    return {
        "figure3": experiment_figure3(config=config).as_dict(),
        "figure4": experiment_figure4(config=config).as_dict(),
        "disagree": experiment_disagree(config=config).as_dict(),
        "fig6": experiment_fig6(polling_models=polling, config=config).as_dict(),
        "fig7": experiment_fig7().as_dict(),
        "fig8": experiment_fig8().as_dict(),
        "fig9": experiment_fig9().as_dict(),
        "multinode": experiment_multinode().as_dict(),
        "multinode_exhaustive": {
            "lockstep_oscillates": lockstep.oscillates,
            "solo_activation_oscillates": staggered.oscillates,
        },
        "dispute_wheels": experiment_dispute_wheels().as_dict(),
        "message_overhead": experiment_message_overhead().as_dict(),
        "convergence_rates": survey.as_dict(),
    }
