"""Experiment drivers, statistics, and reporting."""

from . import ablation, artifacts, experiments, reporting, stats, traces
from .artifacts import generate_artifacts
from .experiments import (
    experiment_convergence_rates,
    experiment_disagree,
    experiment_dispute_wheels,
    experiment_fig6,
    experiment_fig7,
    experiment_fig8,
    experiment_fig9,
    experiment_figure3,
    experiment_figure4,
    experiment_message_overhead,
    experiment_multinode,
    matrix_certification,
)
from .stats import ConvergenceSurvey, ModelStats, survey_convergence, wilson_interval

__all__ = [
    "ConvergenceSurvey",
    "ModelStats",
    "experiment_convergence_rates",
    "experiment_disagree",
    "experiment_dispute_wheels",
    "experiment_fig6",
    "experiment_fig7",
    "experiment_fig8",
    "experiment_fig9",
    "experiment_figure3",
    "experiment_figure4",
    "experiment_message_overhead",
    "experiment_multinode",
    "ablation",
    "artifacts",
    "generate_artifacts",
    "experiments",
    "matrix_certification",
    "reporting",
    "stats",
    "survey_convergence",
    "traces",
    "wilson_interval",
]
