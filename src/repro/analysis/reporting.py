"""ASCII rendering of realization matrices and experiment summaries.

The goal is byte-for-byte comparability with the paper: matrices print
in the row/column order of Figures 3 and 4 using the paper's cell
notation (``4``, ``>=3``, ``2,3``, ``-1``, blank).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from ..models.taxonomy import MODELS_BY_NAME
from ..realization.closure import RealizationMatrix
from ..realization.paper_tables import (
    FIGURE3_COLUMNS,
    FIGURE4_COLUMNS,
    ROW_ORDER,
    EntryComparison,
)

__all__ = [
    "render_matrix",
    "render_realization_dot",
    "render_figure3",
    "render_figure4",
    "render_comparison_summary",
    "render_certification_table",
    "render_oscillation_table",
]


def render_matrix(
    matrix: RealizationMatrix,
    columns: Sequence[str],
    rows: Sequence[str] = ROW_ORDER,
    diagonal: str = "~",
) -> str:
    """Render the matrix region with the given rows and columns."""
    width = 5
    header = "     |" + "".join(f"{c:>{width}}" for c in columns)
    lines = [header, "-" * len(header)]
    for row_name in rows:
        realized = MODELS_BY_NAME[row_name]
        cells = []
        for column_name in columns:
            realizer = MODELS_BY_NAME[column_name]
            if realizer is realized:
                cells.append(f"{diagonal:>{width}}")
                continue
            text = matrix.get(realized, realizer).render() or "."
            cells.append(f"{text:>{width}}")
        lines.append(f"{row_name:<5}|" + "".join(cells))
    return "\n".join(lines)


def render_figure3(matrix: RealizationMatrix) -> str:
    """The derived counterpart of the paper's Figure 3."""
    return render_matrix(matrix, FIGURE3_COLUMNS)


def render_figure4(matrix: RealizationMatrix) -> str:
    """The derived counterpart of the paper's Figure 4."""
    return render_matrix(matrix, FIGURE4_COLUMNS)


def render_comparison_summary(comparisons: Iterable[EntryComparison]) -> str:
    """Aggregate verdicts plus a listing of every non-matching entry."""
    comparisons = list(comparisons)
    counts = Counter(comparison.verdict for comparison in comparisons)
    lines = [
        "entries compared: "
        + ", ".join(f"{verdict}={count}" for verdict, count in sorted(counts.items()))
    ]
    for comparison in comparisons:
        if comparison.verdict != "match":
            lines.append(
                f"  {comparison.realized.name} realized by "
                f"{comparison.realizer.name}: paper={comparison.published} "
                f"derived={comparison.derived} [{comparison.verdict}]"
            )
    return "\n".join(lines)


def render_realization_dot(
    matrix: RealizationMatrix,
    level_name: str = "EXACT",
    transitive_reduction: bool = True,
) -> str:
    """Graphviz DOT source for the realizes-at-≥level digraph.

    An edge ``A -> B`` means "B realizes A at level ≥ ``level_name``".
    With ``transitive_reduction`` (default) implied edges are omitted,
    yielding the Hasse-style diagram of the taxonomy's power structure.
    The output is plain text — render with ``dot -Tsvg`` if Graphviz is
    available, or read directly (the structure is small).
    """
    from ..realization.relations import Level

    level = Level[level_name.upper()]
    models = matrix.models
    edge_set = {
        (a, b)
        for a in models
        for b in models
        if a is not b and matrix.get(a, b).lo >= level
    }
    if transitive_reduction:
        # Remove an edge only when reachability survives without it —
        # correct even on the cyclic (mutual-realization) components,
        # where the classical DAG reduction is not applicable.
        def reachable(edges, source, target):
            frontier = [source]
            seen = {source}
            while frontier:
                current = frontier.pop()
                for x, y in edges:
                    if x is current and y not in seen:
                        if y is target:
                            return True
                        seen.add(y)
                        frontier.append(y)
            return False

        reduced = set(edge_set)
        for edge in sorted(edge_set, key=lambda e: (e[0].name, e[1].name)):
            trial = reduced - {edge}
            if reachable(trial, edge[0], edge[1]):
                reduced = trial
        edge_set = reduced
    lines = [
        "digraph realization {",
        '  rankdir="BT";',
        f'  label="B realizes A at >= {level.name} (edge from A to B)";',
        "  node [shape=box, fontname=monospace];",
    ]
    for m in models:
        shape = []
        if m.is_queueing:
            shape.append("style=filled fillcolor=lightgrey")
        lines.append(
            f'  "{m.name}"' + (f" [{' '.join(shape)}];" if shape else ";")
        )
    for a, b in sorted(edge_set, key=lambda e: (e[0].name, e[1].name)):
        lines.append(f'  "{a.name}" -> "{b.name}";')
    lines.append("}")
    return "\n".join(lines)


def render_certification_table(results: dict) -> str:
    """Per-cell explorer accounting: states, pruning, and cache status.

    ``results`` maps model name → ExplorationResult.  Surfaces the
    ``states_pruned`` accounting and the verdict-cache outcome
    (``hit``/``miss``; ``-`` when the run did not consult a cache) that
    the matrix certification always computes but the verdict tables
    omit.
    """
    lines = ["model | oscillates | proof    |  states | pruned | cache"]
    lines.append("-" * 60)
    for name in sorted(results):
        result = results[name]
        proof = "complete" if result.complete else (
            "witness" if result.oscillates else "bounded"
        )
        cache = (
            "-"
            if result.cache_hit is None
            else ("hit" if result.cache_hit else "miss")
        )
        lines.append(
            f"{name:<5} | {str(result.oscillates):<10} | {proof:<8} | "
            f"{result.states_explored:>7} | {result.states_pruned:>6} | "
            f"{cache}"
        )
    return "\n".join(lines)


def render_oscillation_table(results: dict) -> str:
    """Tabulate explorer verdicts: model → can the instance oscillate?

    ``results`` maps model name → ExplorationResult.
    """
    lines = ["model | oscillates | proof    | states"]
    lines.append("-" * 44)
    for name in sorted(results):
        result = results[name]
        proof = "complete" if result.complete else (
            "witness" if result.oscillates else "bounded"
        )
        lines.append(
            f"{name:<5} | {str(result.oscillates):<10} | {proof:<8} | "
            f"{result.states_explored}"
        )
    return "\n".join(lines)
