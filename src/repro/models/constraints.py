"""Per-model legality of activation entries.

Each communication model is a restricted class of activation sequences
(Sec. 2.2).  This module decides whether a concrete
:class:`~repro.engine.activation.ActivationEntry` is legal for a given
model on a given instance, and explains violations — the engine and the
schedulers use it as the single source of truth.
"""

from __future__ import annotations

from ..core.spp import SPPInstance
from ..engine.activation import INFINITY, ActivationEntry
from .dimensions import MessageCount, NeighborScope, NodeConcurrency, Reliability
from .taxonomy import CommunicationModel

__all__ = ["entry_violations", "is_legal_entry", "require_legal_entry"]


def entry_violations(
    model: CommunicationModel,
    instance: SPPInstance,
    entry: ActivationEntry,
) -> list:
    """Return a list of human-readable constraint violations (empty = legal)."""
    violations: list = []
    _check_concurrency(model, instance, entry, violations)
    for node in entry.nodes:
        _check_scope(model, instance, entry, node, violations)
    for channel, count in entry.reads.items():
        _check_count(model, channel, count, violations)
    if model.reliability is Reliability.RELIABLE:
        for channel, dropped in entry.drops.items():
            if dropped:
                violations.append(
                    f"reliable model {model} cannot drop messages on {channel!r}"
                )
    return violations


def _check_concurrency(model, instance, entry, violations) -> None:
    if model.concurrency is NodeConcurrency.ONE and len(entry.nodes) != 1:
        violations.append(
            f"model {model} activates exactly one node per step, got "
            f"{len(entry.nodes)}"
        )
    elif model.concurrency is NodeConcurrency.EVERY and entry.nodes != instance.nodes:
        violations.append(f"model {model} requires every node to update each step")


def _check_scope(model, instance, entry, node, violations) -> None:
    processed = entry.channels_of(node)
    in_channels = instance.in_channels(node)
    unknown = set(processed) - set(in_channels)
    if unknown:
        violations.append(f"{node!r} processes non-incident channels {unknown}")
    if model.scope is NeighborScope.ONE and len(processed) != 1:
        violations.append(
            f"model {model}: node {node!r} must process exactly one channel, "
            f"got {len(processed)}"
        )
    elif model.scope is NeighborScope.EVERY and set(processed) != set(in_channels):
        violations.append(
            f"model {model}: node {node!r} must process all of its "
            f"{len(in_channels)} channels, got {len(processed)}"
        )


def _check_count(model, channel, count, violations) -> None:
    kind = model.count
    if kind is MessageCount.ONE and count != 1:
        violations.append(f"model {model}: f({channel!r}) must be 1, got {count}")
    elif kind is MessageCount.ALL and count is not INFINITY:
        violations.append(f"model {model}: f({channel!r}) must be ∞, got {count}")
    elif kind is MessageCount.FORCED and (count is not INFINITY and count < 1):
        violations.append(f"model {model}: f({channel!r}) must be ≥ 1, got {count}")
    # MessageCount.SOME: unrestricted.


def is_legal_entry(
    model: CommunicationModel,
    instance: SPPInstance,
    entry: ActivationEntry,
) -> bool:
    """True iff ``entry`` is a legal step under ``model``."""
    return not entry_violations(model, instance, entry)


def require_legal_entry(
    model: CommunicationModel,
    instance: SPPInstance,
    entry: ActivationEntry,
) -> None:
    """Raise ``ValueError`` with every violation if the entry is illegal."""
    violations = entry_violations(model, instance, entry)
    if violations:
        raise ValueError(
            f"illegal activation entry for {model}: " + "; ".join(violations)
        )
