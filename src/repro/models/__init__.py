"""The communication-model taxonomy of Sec. 2.2–2.3."""

from .constraints import entry_violations, is_legal_entry, require_legal_entry
from .dimensions import MessageCount, NeighborScope, NodeConcurrency, Reliability
from .taxonomy import (
    ALL_MODELS,
    MESSAGE_PASSING_MODELS,
    MODELS_BY_NAME,
    POLLING_MODELS,
    QUEUEING_MODELS,
    RELIABLE_MODELS,
    UNRELIABLE_MODELS,
    CommunicationModel,
    model,
    parse_model,
)

__all__ = [
    "ALL_MODELS",
    "MESSAGE_PASSING_MODELS",
    "MODELS_BY_NAME",
    "POLLING_MODELS",
    "QUEUEING_MODELS",
    "RELIABLE_MODELS",
    "UNRELIABLE_MODELS",
    "CommunicationModel",
    "MessageCount",
    "NeighborScope",
    "NodeConcurrency",
    "Reliability",
    "entry_violations",
    "is_legal_entry",
    "model",
    "parse_model",
    "require_legal_entry",
]
