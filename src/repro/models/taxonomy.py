"""The 24-model communication taxonomy (Sec. 2.2–2.3).

A :class:`CommunicationModel` is a point in the three-dimensional space
``{R, U} × {1, M, E} × {O, S, F, A}``; its name concatenates the
dimension symbols (``"RMA"``, ``"U1O"``, …).  The module also names the
paper's families of interest:

* **polling** models ``w x A`` — nodes learn neighbors' *current*
  state; ``R1A`` "poll one", ``RMA`` "poll some", ``REA`` "poll all"
  (the model of Fabrikant–Papadimitriou and of the mechanism-design
  line of work);
* **message-passing** models ``w x O`` — one message per processed
  channel (the model of Griffin–Shepherd–Wilfong; ``R1O`` is the
  event-driven reading of BGP);
* **queueing** models ``RMS`` / ``UMS`` — unrestricted processing,
  newly identified by the paper as the closest fit to deployed BGP and
  the strongest realizers in the taxonomy.

The paper restricts attention to one updating node per step; the
optional ``concurrency`` field models Ex. A.6's multi-node extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dimensions import MessageCount, NeighborScope, NodeConcurrency, Reliability

__all__ = [
    "CommunicationModel",
    "ALL_MODELS",
    "MODELS_BY_NAME",
    "RELIABLE_MODELS",
    "UNRELIABLE_MODELS",
    "POLLING_MODELS",
    "MESSAGE_PASSING_MODELS",
    "QUEUEING_MODELS",
    "model",
    "parse_model",
]


@dataclass(frozen=True)
class CommunicationModel:
    """One communication model: a triple of dimension values.

    Instances are value objects; use :func:`model` / :func:`parse_model`
    or the :data:`MODELS_BY_NAME` registry rather than constructing ad
    hoc duplicates.
    """

    reliability: Reliability
    scope: NeighborScope
    count: MessageCount
    concurrency: NodeConcurrency = field(default=NodeConcurrency.ONE)

    @property
    def name(self) -> str:
        """The paper's abbreviation, e.g. ``"RMA"``."""
        base = self.reliability.symbol + self.scope.symbol + self.count.symbol
        if self.concurrency is not NodeConcurrency.ONE:
            base += f"[{self.concurrency.value}]"
        return base

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"CommunicationModel({self.name})"

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def is_polling(self) -> bool:
        """Polling models process *all* messages per channel (count A)."""
        return self.count is MessageCount.ALL

    @property
    def is_message_passing(self) -> bool:
        """Message-passing models process one message per channel (count O)."""
        return self.count is MessageCount.ONE

    @property
    def is_queueing(self) -> bool:
        """The queueing models are RMS and UMS."""
        return (
            self.scope is NeighborScope.MULTIPLE
            and self.count is MessageCount.SOME
        )

    @property
    def is_reliable(self) -> bool:
        return self.reliability is Reliability.RELIABLE

    def syntactically_contains(self, other: "CommunicationModel") -> bool:
        """True if every activation sequence of ``other`` is legal here.

        This is the containment underlying Prop. 3.3: dimension-wise
        generalization (U ⊇ R, M ⊇ {1, E}, S ⊇ F ⊇ {O, A}).
        """
        return (
            self.reliability.generalizes(other.reliability)
            and self.scope.generalizes(other.scope)
            and self.count.generalizes(other.count)
            and self.concurrency.generalizes(other.concurrency)
        )

    def with_concurrency(self, concurrency: NodeConcurrency) -> "CommunicationModel":
        """A copy of this model with a different node-concurrency setting."""
        return CommunicationModel(
            self.reliability, self.scope, self.count, concurrency
        )


def model(name: str) -> CommunicationModel:
    """Look up a model by its paper abbreviation (``"R1O"``, ``"UMS"``, …)."""
    try:
        return MODELS_BY_NAME[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; expected one of {sorted(MODELS_BY_NAME)}"
        ) from None


def parse_model(name: str) -> CommunicationModel:
    """Parse a model name character by character (accepts lower case)."""
    text = name.strip().upper()
    if len(text) != 3:
        raise ValueError(f"model name must have 3 characters, got {name!r}")
    try:
        reliability = Reliability(text[0])
        scope = NeighborScope(text[1])
        count = MessageCount(text[2])
    except ValueError as exc:
        raise ValueError(f"cannot parse model name {name!r}: {exc}") from None
    return CommunicationModel(reliability, scope, count)


#: Every model in the taxonomy, in the row order of Figures 3 and 4:
#: reliable models first, O/S/F/A major order within each reliability.
ALL_MODELS: tuple = tuple(
    CommunicationModel(reliability, scope, count)
    for reliability in (Reliability.RELIABLE, Reliability.UNRELIABLE)
    for count in (
        MessageCount.ONE,
        MessageCount.SOME,
        MessageCount.FORCED,
        MessageCount.ALL,
    )
    for scope in (NeighborScope.ONE, NeighborScope.MULTIPLE, NeighborScope.EVERY)
)

MODELS_BY_NAME: dict = {m.name: m for m in ALL_MODELS}

RELIABLE_MODELS: tuple = tuple(m for m in ALL_MODELS if m.is_reliable)
UNRELIABLE_MODELS: tuple = tuple(m for m in ALL_MODELS if not m.is_reliable)
POLLING_MODELS: tuple = tuple(m for m in ALL_MODELS if m.is_polling)
MESSAGE_PASSING_MODELS: tuple = tuple(m for m in ALL_MODELS if m.is_message_passing)
QUEUEING_MODELS: tuple = tuple(m for m in ALL_MODELS if m.is_queueing)

assert len(ALL_MODELS) == 24
assert len({m.name for m in ALL_MODELS}) == 24
