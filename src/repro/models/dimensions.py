"""The dimensions of the communication-model space (Def. 2.6).

Three dimensions abbreviate into model names such as ``RMA``:

* **Channel reliability** — ``R`` (reliable: no drops) or ``U``
  (unreliable: the drop sets ``g`` may be non-empty).
* **Number of neighbors processed** — ``1`` (exactly one channel per
  activation), ``M`` (any subset, possibly empty or all), or ``E``
  (every channel).
* **Messages per processed channel** — ``O`` (exactly one), ``S`` (any
  number, including zero), ``F`` (at least one — "forced"), or ``A``
  (all messages in the channel).

The paper fixes the fourth dimension — number of nodes updating per
step — to one, but Ex. A.6 explores simultaneous activation, so we also
model it (:class:`NodeConcurrency`) as an extension.
"""

from __future__ import annotations

import enum

__all__ = ["Reliability", "NeighborScope", "MessageCount", "NodeConcurrency"]


class Reliability(enum.Enum):
    """Channel reliability: may announcements be lost?"""

    RELIABLE = "R"
    UNRELIABLE = "U"

    @property
    def symbol(self) -> str:
        return self.value

    def generalizes(self, other: "Reliability") -> bool:
        """True if every legal drop pattern of ``other`` is legal here.

        Unreliable channels generalize reliable ones (``g ≡ ∅`` is one
        allowed choice).
        """
        return self is other or self is Reliability.UNRELIABLE


class NeighborScope(enum.Enum):
    """How many incoming channels an activated node processes."""

    ONE = "1"
    MULTIPLE = "M"
    EVERY = "E"

    @property
    def symbol(self) -> str:
        return self.value

    def generalizes(self, other: "NeighborScope") -> bool:
        """``M`` admits every channel set that ``1`` or ``E`` admit."""
        return self is other or self is NeighborScope.MULTIPLE


class MessageCount(enum.Enum):
    """How many messages are processed from each selected channel."""

    ONE = "O"
    SOME = "S"
    FORCED = "F"
    ALL = "A"

    @property
    def symbol(self) -> str:
        return self.value

    def generalizes(self, other: "MessageCount") -> bool:
        """Whether every per-channel count legal in ``other`` is legal here.

        ``S`` (unrestricted: f ∈ ℤ≥0 ∪ {∞}) generalizes everything;
        ``F`` (f ≥ 1, ∞ allowed) generalizes both ``O`` (f ≡ 1) and
        ``A`` (f ≡ ∞), which makes the inclusions of Prop. 3.3 purely
        syntactic.
        """
        if self is other:
            return True
        if self is MessageCount.SOME:
            return True
        if self is MessageCount.FORCED:
            return other in (MessageCount.ONE, MessageCount.ALL)
        return False


class NodeConcurrency(enum.Enum):
    """How many nodes update per step (paper: ONE; Ex. A.6: more)."""

    ONE = "one"
    UNRESTRICTED = "unrestricted"
    EVERY = "every"

    def generalizes(self, other: "NodeConcurrency") -> bool:
        return self is other or self is NodeConcurrency.UNRESTRICTED
