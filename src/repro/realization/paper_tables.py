"""Figures 3 and 4 of the paper, transcribed verbatim.

The entry in row A, column B reports what the paper proved about *B's
ability to realize A*: ``4`` exact, ``3`` with repetition, ``2`` as a
subsequence, ``-1`` oscillations not preserved; ``>=``/``<=`` mark
lower/upper bounds, ``2,3`` both bounds, a blank an open pair.  The
diagonal (printed ``—`` in the paper) is the trivial exact
self-realization.

These tables are the ground truth that experiment E1/E2 compares the
mechanically derived closure against; see
:func:`compare_with_derived`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.taxonomy import MODELS_BY_NAME, CommunicationModel
from .closure import RealizationMatrix
from .relations import Bounds, Level

__all__ = [
    "ROW_ORDER",
    "FIGURE3_COLUMNS",
    "FIGURE4_COLUMNS",
    "paper_bounds",
    "paper_matrix",
    "parse_cell",
    "EntryComparison",
    "compare_with_derived",
]

#: Row order shared by both figures (reliable models first).
ROW_ORDER = (
    "R1O", "RMO", "REO", "R1S", "RMS", "RES", "R1F", "RMF", "REF",
    "R1A", "RMA", "REA",
    "U1O", "UMO", "UEO", "U1S", "UMS", "UES", "U1F", "UMF", "UEF",
    "U1A", "UMA", "UEA",
)

FIGURE3_COLUMNS = ROW_ORDER[:12]
FIGURE4_COLUMNS = ROW_ORDER[12:]

# Cells use the paper's notation; "." is a blank (unknown), "~" the diagonal.
_FIGURE3_ROWS = {
    "R1O": "~    4    -1   4    4    4    4    4    -1   -1   -1   -1",
    "RMO": "3    ~    -1   3    4    4    3    4    -1   -1   -1   -1",
    "REO": "3    4    ~    3    4    4    3    4    4    -1   -1   -1",
    "R1S": "2    2    -1   ~    4    4    >=2  >=2  -1   -1   -1   -1",
    "RMS": "2    2    -1   3    ~    4    2,3  >=2  -1   -1   -1   -1",
    "RES": "2    2    -1   3    4    ~    2,3  >=2  -1   -1   -1   -1",
    "R1F": "2    2    -1   4    4    4    ~    4    -1   -1   -1   -1",
    "RMF": "2    2    -1   3    4    4    3    ~    -1   -1   -1   -1",
    "REF": "2    2    <=2  3    4    4    3    4    ~    -1   -1   -1",
    "R1A": "2    2    <=2  4    4    4    4    4    .    ~    4    .",
    "RMA": "2    2    <=2  3    4    4    3    4    .    3    ~    .",
    "REA": "2    2    <=2  3    4    4    3    4    4    3    4    ~",
    "U1O": ">=2  >=2  -1   4    4    4    >=2  >=2  -1   -1   -1   -1",
    "UMO": "2,3  >=2  -1   3    >=3  >=3  2,3  >=2  -1   -1   -1   -1",
    "UEO": "2,3  >=2  .    3    >=3  >=3  2,3  >=2  .    -1   -1   -1",
    "U1S": "2    2    -1   >=3  >=3  >=3  >=2  >=2  -1   -1   -1   -1",
    "UMS": "2    2    -1   3    >=3  >=3  2,3  >=2  -1   -1   -1   -1",
    "UES": "2    2    -1   3    >=3  >=3  2,3  >=2  -1   -1   -1   -1",
    "U1F": "2    2    -1   >=3  >=3  >=3  >=2  >=2  -1   -1   -1   -1",
    "UMF": "2    2    -1   3    >=3  >=3  2,3  >=2  -1   -1   -1   -1",
    "UEF": "2    2    <=2  3    >=3  >=3  2,3  >=2  .    -1   -1   -1",
    "U1A": "2    2    <=2  >=3  >=3  >=3  >=2  >=2  .    .    .    .",
    "UMA": "2    2    <=2  3    >=3  >=3  2,3  >=2  .    <=3  .    .",
    "UEA": "2    2    <=2  3    >=3  >=3  2,3  >=2  .    <=3  .    .",
}

_FIGURE4_ROWS = {
    "R1O": "4    4    .    4    4    4    4    4    .    .    .    .",
    "RMO": "3    4    .    >=3  4    4    >=3  4    .    .    .    .",
    "REO": "3    4    4    >=3  4    4    >=3  4    4    .    .    .",
    "R1S": ">=3  >=3  .    4    4    4    >=3  >=3  .    .    .    .",
    "RMS": "3    >=3  .    >=3  4    4    >=3  >=3  .    .    .    .",
    "RES": "3    >=3  .    >=3  4    4    >=3  >=3  .    .    .    .",
    "R1F": ">=3  >=3  .    4    4    4    4    4    .    .    .    .",
    "RMF": "3    >=3  .    >=3  4    4    >=3  4    .    .    .    .",
    "REF": "3    >=3  .    >=3  4    4    >=3  4    4    .    .    .",
    "R1A": ">=3  >=3  .    4    4    4    4    4    .    4    4    .",
    "RMA": "3    >=3  .    >=3  4    4    >=3  4    .    >=3  4    .",
    "REA": "3    >=3  .    >=3  4    4    >=3  4    4    >=3  4    4",
    "U1O": "~    4    .    4    4    4    4    4    .    .    .    .",
    "UMO": "3    ~    .    >=3  4    4    >=3  4    .    .    .    .",
    "UEO": "3    4    ~    >=3  4    4    >=3  4    4    .    .    .",
    "U1S": ">=3  >=3  .    ~    4    4    >=3  >=3  .    .    .    .",
    "UMS": "3    >=3  .    >=3  ~    4    >=3  >=3  .    .    .    .",
    "UES": "3    >=3  .    >=3  4    ~    >=3  >=3  .    .    .    .",
    "U1F": ">=3  >=3  .    4    4    4    ~    4    .    .    .    .",
    "UMF": "3    >=3  .    >=3  4    4    >=3  ~    .    .    .    .",
    "UEF": "3    >=3  .    >=3  4    4    >=3  4    ~    .    .    .",
    "U1A": ">=3  >=3  .    4    4    4    4    4    .    ~    4    .",
    "UMA": "3    >=3  .    >=3  4    4    >=3  4    .    >=3  ~    .",
    "UEA": "3    >=3  .    >=3  4    4    >=3  4    4    >=3  4    ~",
}


def parse_cell(cell: str) -> Bounds:
    """Parse one cell of the paper's matrices into interval bounds."""
    cell = cell.strip()
    if cell == ".":
        return Bounds()
    if cell == "~":
        return Bounds.exactly(Level.EXACT)
    if cell == "-1":
        return Bounds.exactly(Level.NONE)
    if cell.startswith(">="):
        return Bounds.at_least(Level(int(cell[2:])))
    if cell.startswith("<="):
        return Bounds(lo=Level.NONE, hi=Level(int(cell[2:])))
    if "," in cell:
        lo_text, hi_text = cell.split(",")
        return Bounds(lo=Level(int(lo_text)), hi=Level(int(hi_text)))
    value = Level(int(cell))
    return Bounds.exactly(value)


def paper_bounds() -> dict:
    """(realized, realizer) → published bounds, both figures combined."""
    published: dict = {}
    for rows, columns in (
        (_FIGURE3_ROWS, FIGURE3_COLUMNS),
        (_FIGURE4_ROWS, FIGURE4_COLUMNS),
    ):
        for row_name, cells in rows.items():
            parts = cells.split()
            if len(parts) != len(columns):
                raise AssertionError(
                    f"row {row_name} has {len(parts)} cells, expected "
                    f"{len(columns)}"
                )
            for column_name, cell in zip(columns, parts):
                key = (MODELS_BY_NAME[row_name], MODELS_BY_NAME[column_name])
                published[key] = parse_cell(cell)
    return published


def paper_matrix() -> RealizationMatrix:
    """The published tables as a :class:`RealizationMatrix` (not closed)."""
    matrix = RealizationMatrix()
    for (realized, realizer), bounds in paper_bounds().items():
        matrix.set(realized, realizer, bounds)
    return matrix


@dataclass(frozen=True)
class EntryComparison:
    """How one derived entry relates to the published one."""

    realized: CommunicationModel
    realizer: CommunicationModel
    published: Bounds
    derived: Bounds

    @property
    def verdict(self) -> str:
        """``match`` / ``tighter`` / ``looser`` / ``incomparable``.

        * ``match`` — identical intervals.
        * ``tighter`` — the derivation pins the entry down further than
          the published table (possible: the paper leaves blanks its own
          rules resolve).
        * ``looser`` — the published entry is sharper than pure
          rule-chasing yields (the paper used an extra argument).
        * ``incomparable`` — overlapping but neither contains the other.
        * ``contradiction`` — disjoint intervals (must never happen).
        """
        if self.published == self.derived:
            return "match"
        if self.derived.implies(self.published):
            return "tighter"
        if self.published.implies(self.derived):
            return "looser"
        if (
            self.derived.lo > self.published.hi
            or self.published.lo > self.derived.hi
        ):
            return "contradiction"
        return "incomparable"


def compare_with_derived(
    derived: RealizationMatrix, columns: "tuple | None" = None
) -> list:
    """Compare a derived matrix against the published figures.

    Returns one :class:`EntryComparison` per published (row, column)
    pair; restrict to one figure by passing ``FIGURE3_COLUMNS`` or
    ``FIGURE4_COLUMNS``.
    """
    published = paper_bounds()
    comparisons = []
    for (realized, realizer), bounds in sorted(
        published.items(), key=lambda item: (item[0][0].name, item[0][1].name)
    ):
        if columns is not None and realizer.name not in columns:
            continue
        comparisons.append(
            EntryComparison(
                realized=realized,
                realizer=realizer,
                published=bounds,
                derived=derived.get(realized, realizer),
            )
        )
    return comparisons
