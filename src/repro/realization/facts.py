"""The paper's foundational realization results, with provenance.

Each :class:`Fact` states bounds on "B realizes A" for one ordered model
pair, tagged with the proposition or theorem that proves it:

* **Prop. 3.3** — syntactic containments (exact): Uxy ⊇ Rxy,
  wxS ⊇ wxF, wxF ⊇ wxO and wxA, wMy ⊇ w1y and wEy.
* **Prop. 3.4** — wES exactly realizes wMS (pad with f = 0 reads).
* **Thm. 3.5** — w1y realizes wMy *with repetition* (split a
  multi-channel step into single-channel steps, selected channel first
  or last).
* **Prop. 3.6** — R1O realizes R1S as a *subsequence*; U1O realizes
  U1S *with repetition* (drop exactly the unused messages).
* **Thm. 3.7** — R1S *exactly* realizes U1O (batch each delivery with
  the drops preceding it).
* **Thm. 3.8** — R1O's oscillations are **not** preserved by REO, REF,
  R1A, RMA, REA (DISAGREE, Ex. A.1).
* **Thm. 3.9** — the oscillations of REO and REF are **not** preserved
  by R1A, RMA, REA (Fig. 6, Ex. A.2).
* **Prop. 3.10** — REO cannot be *exactly* realized by R1O (Ex. A.3).
* **Prop. 3.11** — REA cannot be realized *with repetition* by R1O
  (Ex. A.4).
* **Props. 3.12/3.13** — REA and REO cannot be *exactly* realized by
  R1S (Ex. A.5).

Feeding these to :mod:`repro.realization.closure` and running the
Sec. 3.4 transitivity rules to fixpoint regenerates Figures 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..models.taxonomy import ALL_MODELS, CommunicationModel, model
from .relations import Bounds, Level

__all__ = ["Fact", "foundational_facts", "positive_facts", "negative_facts"]


@dataclass(frozen=True)
class Fact:
    """Proved bounds on "``realizer`` realizes ``realized``"."""

    realized: CommunicationModel  # the model A whose executions are mimicked
    realizer: CommunicationModel  # the model B doing the mimicking
    bounds: Bounds
    source: str

    def __str__(self) -> str:
        return (
            f"{self.realizer} realizes {self.realized} within "
            f"[{self.bounds.lo.name}, {self.bounds.hi.name}] ({self.source})"
        )


def _at_least(realized, realizer, level, source) -> Fact:
    return Fact(realized, realizer, Bounds.at_least(level), source)


def _at_most(realized, realizer, level, source) -> Fact:
    return Fact(realized, realizer, Bounds.at_most(level), source)


_SCOPES = "1ME"
_COUNTS = "OSFA"
_RELIABILITIES = "RU"


def positive_facts() -> Iterator[Fact]:
    """Yield every positive foundational fact (lower bounds)."""
    # Identity: every model realizes itself exactly.
    for m in ALL_MODELS:
        yield _at_least(m, m, Level.EXACT, "identity")

    # Prop. 3.3(1): Uxy exactly realizes Rxy.
    for scope in _SCOPES:
        for count in _COUNTS:
            yield _at_least(
                model(f"R{scope}{count}"),
                model(f"U{scope}{count}"),
                Level.EXACT,
                "Prop. 3.3(1)",
            )
    for reliability in _RELIABILITIES:
        for scope in _SCOPES:
            # Prop. 3.3(2): wxS exactly realizes wxF.
            yield _at_least(
                model(f"{reliability}{scope}F"),
                model(f"{reliability}{scope}S"),
                Level.EXACT,
                "Prop. 3.3(2)",
            )
            # Prop. 3.3(3): wxF exactly realizes wxO and wxA.
            for count in "OA":
                yield _at_least(
                    model(f"{reliability}{scope}{count}"),
                    model(f"{reliability}{scope}F"),
                    Level.EXACT,
                    "Prop. 3.3(3)",
                )
        for count in _COUNTS:
            # Prop. 3.3(4): wMy exactly realizes w1y and wEy.
            for scope in "1E":
                yield _at_least(
                    model(f"{reliability}{scope}{count}"),
                    model(f"{reliability}M{count}"),
                    Level.EXACT,
                    "Prop. 3.3(4)",
                )
        # Prop. 3.4: wES exactly realizes wMS.
        yield _at_least(
            model(f"{reliability}MS"),
            model(f"{reliability}ES"),
            Level.EXACT,
            "Prop. 3.4",
        )
        # Thm. 3.5: w1y realizes wMy with repetition.
        for count in _COUNTS:
            yield _at_least(
                model(f"{reliability}M{count}"),
                model(f"{reliability}1{count}"),
                Level.REPETITION,
                "Thm. 3.5",
            )

    # Prop. 3.6: R1O realizes R1S as a subsequence; U1O realizes U1S
    # with repetition.
    yield _at_least(model("R1S"), model("R1O"), Level.SUBSEQUENCE, "Prop. 3.6")
    yield _at_least(model("U1S"), model("U1O"), Level.REPETITION, "Prop. 3.6")

    # Thm. 3.7: R1S exactly realizes U1O.
    yield _at_least(model("U1O"), model("R1S"), Level.EXACT, "Thm. 3.7")


def negative_facts() -> Iterator[Fact]:
    """Yield every negative foundational fact (upper bounds)."""
    # Thm. 3.8 (Ex. A.1, DISAGREE).
    for blocked in ("REO", "REF", "R1A", "RMA", "REA"):
        yield _at_most(model("R1O"), model(blocked), Level.NONE, "Thm. 3.8")
    # Thm. 3.9 (Ex. A.2, Fig. 6 gadget).
    for oscillating in ("REO", "REF"):
        for blocked in ("R1A", "RMA", "REA"):
            yield _at_most(
                model(oscillating), model(blocked), Level.NONE, "Thm. 3.9"
            )
    # Prop. 3.10 (Ex. A.3, Fig. 7).
    yield _at_most(model("REO"), model("R1O"), Level.REPETITION, "Prop. 3.10")
    # Prop. 3.11 (Ex. A.4, Fig. 8).
    yield _at_most(model("REA"), model("R1O"), Level.SUBSEQUENCE, "Prop. 3.11")
    # Prop. 3.12 (Ex. A.5, Fig. 9).
    yield _at_most(model("REA"), model("R1S"), Level.REPETITION, "Prop. 3.12")
    # Prop. 3.13 (same example as an REO sequence).
    yield _at_most(model("REO"), model("R1S"), Level.REPETITION, "Prop. 3.13")


def foundational_facts() -> tuple:
    """All foundational facts, positives then negatives."""
    return tuple(positive_facts()) + tuple(negative_facts())
