"""Realization relations between communication models (Sec. 3)."""

from .closure import RealizationMatrix, derive_matrix
from .facts import Fact, foundational_facts, negative_facts, positive_facts
from .paper_tables import (
    FIGURE3_COLUMNS,
    FIGURE4_COLUMNS,
    ROW_ORDER,
    EntryComparison,
    compare_with_derived,
    paper_bounds,
    paper_matrix,
    parse_cell,
)
from .relations import UNKNOWN, Bounds, Level
from .search import RealizationSearch, SearchOutcome
from .transforms import (
    batch_u1o_to_r1s,
    embed,
    expand_r1s_to_r1o,
    expand_u1s_to_u1o,
    find_noop_entry,
    pad_to_every_scope,
    split_multi_scope,
)
from .verify import (
    collapse_repeats,
    is_exact,
    is_repetition,
    is_subsequence,
    strongest_relation,
)

__all__ = [
    "Bounds",
    "EntryComparison",
    "FIGURE3_COLUMNS",
    "FIGURE4_COLUMNS",
    "Fact",
    "Level",
    "ROW_ORDER",
    "RealizationMatrix",
    "RealizationSearch",
    "SearchOutcome",
    "UNKNOWN",
    "batch_u1o_to_r1s",
    "collapse_repeats",
    "compare_with_derived",
    "derive_matrix",
    "embed",
    "expand_r1s_to_r1o",
    "expand_u1s_to_u1o",
    "find_noop_entry",
    "foundational_facts",
    "is_exact",
    "is_repetition",
    "is_subsequence",
    "negative_facts",
    "pad_to_every_scope",
    "paper_bounds",
    "paper_matrix",
    "parse_cell",
    "positive_facts",
    "split_multi_scope",
    "strongest_relation",
]
