"""Realization relations between communication models (Sec. 3.1).

The paper orders four relation strengths (Defs. 3.1–3.2), each implying
the next:

====== ============================  =====================================
level  name                          meaning ("B realizes A at level ℓ")
====== ============================  =====================================
4      exact                         every A-execution's π-sequence is
                                     induced verbatim by some B-sequence
3      with repetition               … after replacing each π(t) by one
                                     or more consecutive copies
2      as a subsequence              … as a subsequence of B's π-sequence
1      oscillation-preserving        if A can diverge on I, so can B
0      (none)                        no relation established
====== ============================  =====================================

Knowledge about a model pair is an interval ``[lo, hi]`` of levels:
``lo`` from positive results (B realizes A at least this strongly),
``hi`` from negative results (B provably cannot realize A more strongly
than this).  The paper's matrix entries map onto intervals — ``4`` is
``[4,4]``, ``≥3`` is ``[3,4]``, ``2,3`` is ``[2,3]``, ``-1`` is
``[0,0]``, a blank is ``[0,4]``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Level", "Bounds", "UNKNOWN"]


class Level(enum.IntEnum):
    """Strength of a realization relation, ordered by implication."""

    NONE = 0
    OSCILLATION = 1
    SUBSEQUENCE = 2
    REPETITION = 3
    EXACT = 4

    @property
    def short(self) -> str:
        return {
            Level.NONE: "-1",
            Level.OSCILLATION: "1",
            Level.SUBSEQUENCE: "2",
            Level.REPETITION: "3",
            Level.EXACT: "4",
        }[self]


@dataclass(frozen=True, order=True)
class Bounds:
    """An interval of possible realization levels ``[lo, hi]``."""

    lo: Level = Level.NONE
    hi: Level = Level.EXACT

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"contradictory bounds lo={self.lo} > hi={self.hi}")

    # ------------------------------------------------------------------
    @classmethod
    def exactly(cls, level: Level) -> "Bounds":
        return cls(lo=level, hi=level)

    @classmethod
    def at_least(cls, level: Level) -> "Bounds":
        return cls(lo=level, hi=Level.EXACT)

    @classmethod
    def at_most(cls, level: Level) -> "Bounds":
        return cls(lo=Level.NONE, hi=level)

    # ------------------------------------------------------------------
    @property
    def is_resolved(self) -> bool:
        """A single level remains."""
        return self.lo == self.hi

    @property
    def is_unknown(self) -> bool:
        return self.lo == Level.NONE and self.hi == Level.EXACT

    def tighten(self, other: "Bounds") -> "Bounds":
        """Intersect two intervals; raises if they contradict."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            raise ValueError(
                f"inconsistent realization bounds: {self} versus {other}"
            )
        return Bounds(lo=lo, hi=hi)

    def allows(self, level: Level) -> bool:
        """Whether ``level`` lies inside the interval."""
        return self.lo <= level <= self.hi

    def implies(self, other: "Bounds") -> bool:
        """Whether this interval is contained in ``other``."""
        return other.lo <= self.lo and self.hi <= other.hi

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The paper's cell notation for this interval."""
        if self.is_unknown:
            return ""
        if self.hi == Level.NONE:
            return "-1"
        if self.is_resolved:
            return self.lo.short
        if self.hi == Level.EXACT and self.lo > Level.NONE:
            return f">={self.lo.short}"
        if self.lo == Level.NONE:
            return f"<={self.hi.short}"
        return f"{self.lo.short},{self.hi.short}"

    def __str__(self) -> str:
        return self.render() or "?"


#: The vacuous interval: nothing known.
UNKNOWN = Bounds()
