"""Constructive activation-sequence transformations from the proofs.

Each function takes a schedule that is legal in the *realized* model and
returns a schedule legal in the *realizing* model whose induced
π-sequence relates to the original as the corresponding result claims:

=========================== ============ =======================
function                    result       relation
=========================== ============ =======================
:func:`embed`               Prop. 3.3    exact (same schedule)
:func:`pad_to_every_scope`  Prop. 3.4    exact
:func:`split_multi_scope`   Thm. 3.5     with repetition
:func:`expand_r1s_to_r1o`   Prop. 3.6    subsequence
:func:`expand_u1s_to_u1o`   Prop. 3.6    with repetition
:func:`batch_u1o_to_r1s`    Thm. 3.7     exact
=========================== ============ =======================

The transforms that depend on runtime quantities (how many messages a
step actually consumed, which channel supplied the selected route) run
the source execution to obtain them — the proofs do the same thing
implicitly when they speak of "the channel from which v learns the path
it selects".  Every transform is verified end-to-end by the test suite
using :mod:`repro.realization.verify`.
"""

from __future__ import annotations

from typing import Sequence

from ..core.paths import EPSILON, next_hop
from ..core.spp import SPPInstance
from ..engine.activation import INFINITY, ActivationEntry
from ..engine.execution import Execution, apply_entry
from ..engine.state import NetworkState
from ..models.constraints import require_legal_entry
from ..models.taxonomy import CommunicationModel

__all__ = [
    "embed",
    "pad_to_every_scope",
    "split_multi_scope",
    "expand_r1s_to_r1o",
    "expand_u1s_to_u1o",
    "batch_u1o_to_r1s",
    "find_noop_entry",
]


def embed(
    instance: SPPInstance,
    schedule: Sequence[ActivationEntry],
    target: CommunicationModel,
) -> tuple:
    """Prop. 3.3: a schedule re-used verbatim in a more general model.

    Verifies legality in ``target`` and returns the schedule unchanged —
    the containments U ⊇ R, M ⊇ {1, E}, S ⊇ F ⊇ {O, A} are syntactic.
    """
    for entry in schedule:
        require_legal_entry(target, instance, entry)
    return tuple(schedule)


def pad_to_every_scope(
    instance: SPPInstance, schedule: Sequence[ActivationEntry]
) -> tuple:
    """Prop. 3.4 (wMS → wES): pad each step's channel set with f = 0 reads.

    The padded channels process nothing, so the induced execution is
    bitwise identical — an exact realization.
    """
    padded = []
    for entry in schedule:
        node = entry.node
        channels = instance.in_channels(node)
        reads = {channel: 0 for channel in channels}
        reads.update(entry.reads)
        padded.append(
            ActivationEntry(
                nodes=[node], channels=channels, reads=reads, drops=entry.drops
            )
        )
    return tuple(padded)


def find_noop_entry(
    instance: SPPInstance,
    state: NetworkState,
    count: "int | float" = 1,
) -> ActivationEntry:
    """A single-channel entry that provably leaves ``state`` unchanged.

    Used to pad realizations-with-repetition when the source model takes
    a step that changes nothing (e.g. an M-scope step with X = ∅) and
    the target model cannot take an empty step.  Reading an *empty*
    channel of a node whose assignment is already settled is such a
    no-op; one always exists in the schedules our transforms handle, and
    a ``LookupError`` is raised otherwise.
    """
    for channel in instance.channels:
        if state.channel_contents(channel):
            continue
        entry = ActivationEntry.single(channel[1], channel, count=count)
        next_state, _ = apply_entry(instance, state, entry)
        if next_state == state:
            return entry
    raise LookupError("no state-preserving single-channel read exists here")


def _same_node_noop(
    instance: SPPInstance,
    state: NetworkState,
    node,
    count: "int | float" = 1,
) -> ActivationEntry:
    """An entry activating ``node`` that reads nothing (empty channel).

    Needed when a source step performs no reads yet still *announces*
    (the destination's kickoff): the realizing model must activate the
    same node, and reading an empty channel does so without consuming
    messages the source kept.  Raises ``LookupError`` when every channel
    of the node is busy (a corner the paper's constructions silently
    assume away; it cannot arise before the node's first announcement
    in the schedules our schedulers and examples produce).
    """
    for channel in instance.in_channels(node):
        if not state.channel_contents(channel):
            return ActivationEntry.single(node, channel, count=count)
    raise LookupError(
        f"every channel of {node!r} holds messages; cannot mirror a "
        "read-free activation"
    )


def split_multi_scope(
    instance: SPPInstance,
    schedule: Sequence[ActivationEntry],
    padding_count: "int | float" = 1,
) -> tuple:
    """Thm. 3.5 (wMy → w1y): split multi-channel steps, ordered carefully.

    Each step processing channels X = {c₁…c_k} becomes k single-channel
    steps.  The proof's ordering rule keeps the intermediate assignments
    from straying: the channel ``c`` supplying the *newly selected* path
    goes first and the channel ``d`` that supplied the *previous* path
    goes last; if they coincide, the position depends on whether the new
    path outranks the old.  Empty steps (X = ∅) become no-op reads so the
    block structure of exact-realization-with-repetition is preserved.

    ``padding_count`` is the f-value used for those fabricated no-op
    reads: leave it at 1 for y ∈ {O, S, F}; pass
    :data:`~repro.engine.activation.INFINITY` when the target model is
    w1A (where every read must request all messages).
    """
    execution = Execution(instance)
    result: list = []
    previous_hop_channel: dict = {}

    for entry in schedule:
        node = entry.node
        state_before = execution.state
        old_path = state_before.path_of(node)
        old_source = previous_hop_channel.get(node)
        if old_source is None and old_path != EPSILON and len(old_path) >= 2:
            old_source = (next_hop(old_path), node)
        record = execution.step(entry)
        new_path = execution.state.path_of(node)
        new_source = record.selected_source.get(node)

        channels = sorted(entry.channels, key=repr)
        if not channels:
            if record.announcements:
                # A read-free step that announced (destination kickoff):
                # the target must activate the same node.
                result.append(
                    _same_node_noop(
                        instance, state_before, node, count=padding_count
                    )
                )
            else:
                result.append(
                    find_noop_entry(instance, state_before, count=padding_count)
                )
            continue
        ordered = _order_channels(
            instance, node, channels, old_path, new_path, old_source, new_source
        )
        for channel in ordered:
            result.append(
                ActivationEntry(
                    nodes=[node],
                    channels=[channel],
                    reads={channel: entry.read_count(channel)},
                    drops={channel: entry.drop_set(channel)},
                )
            )
        previous_hop_channel[node] = new_source
    return tuple(result)


def _order_channels(
    instance, node, channels, old_path, new_path, old_source, new_source
) -> list:
    ordered = list(channels)

    def move_to_front(channel) -> None:
        ordered.remove(channel)
        ordered.insert(0, channel)

    def move_to_back(channel) -> None:
        ordered.remove(channel)
        ordered.append(channel)

    if new_source != old_source:
        if new_source in ordered:
            move_to_front(new_source)
        if old_source in ordered and len(ordered) > 1:
            move_to_back(old_source)
    elif new_source in ordered:
        # Same channel supplied both paths: position depends on rank.
        if new_path != EPSILON and old_path != EPSILON:
            if instance.rank_of(node, new_path) < instance.rank_of(node, old_path):
                move_to_front(new_source)
            else:
                move_to_back(new_source)
        else:
            move_to_front(new_source)
    return ordered


def expand_r1s_to_r1o(
    instance: SPPInstance, schedule: Sequence[ActivationEntry]
) -> tuple:
    """Prop. 3.6 (R1S → R1O): realize batched reads as single reads.

    The proof "flags" the announcements a node emits at the end of each
    batch; a later batch consuming ``j`` (R1S-level) messages is
    realized by single reads that consume messages up to and including
    the ``j``-th flagged one, absorbing the unflagged transients the
    R1O system generated mid-batch.  The result realizes the R1S
    π-sequence as a subsequence.
    """
    source = Execution(instance)
    target = Execution(instance)
    # Per channel, a flag per queued message (parallel to the queue).
    flags: dict = {channel: [] for channel in instance.channels}
    result: list = []

    for entry in schedule:
        node = entry.node
        (channel,) = sorted(entry.channels, key=repr)
        available = source.state.message_count(channel)
        requested = entry.read_count(channel)
        batch = available if requested is INFINITY else min(requested, available)
        record = source.step(entry)
        if batch == 0:
            if record.announcements:
                # The step read nothing yet announced — the destination's
                # kickoff (π_d ≠ last announcement).  Mirror it with a
                # no-op read and flag the announcement: the R1S system
                # sent the same message.
                result.append(
                    _mirror_readless_step(instance, target, node, flags)
                )
            else:
                # A read-nothing step still emits one assignment into the
                # source π-sequence; give the target a matching no-op so
                # trailing repeats embed as a subsequence.
                try:
                    noop = _same_node_noop(instance, target.state, node)
                except LookupError:
                    noop = find_noop_entry(instance, target.state)
                result.append(noop)
                target.step(noop)
            continue
        consumed_flags = 0
        start_path = target.state.path_of(node)
        while consumed_flags < batch:
            single = ActivationEntry.single(node, channel, count=1)
            result.append(single)
            if not flags[channel]:
                raise AssertionError(
                    "flag bookkeeping lost synchronization with the channel"
                )
            was_flagged = flags[channel].pop(0)
            record = target.step(single)
            if was_flagged:
                consumed_flags += 1
            last_batch_read = consumed_flags == batch
            _register_announcements(
                flags, record, flag_value=False
            )
            if last_batch_read:
                _flag_last_batch_announcements(
                    flags, target, node, start_path, instance
                )
        if target.state.path_of(node) != source.state.path_of(node):
            raise AssertionError("R1O expansion diverged from the R1S run")
    return tuple(result)


def _register_announcements(flags, record, flag_value: bool) -> None:
    for channel, _ in record.announcements:
        flags[channel].append(flag_value)


def _mirror_readless_step(
    instance: SPPInstance, target: Execution, node, flags
) -> ActivationEntry:
    """Replay a read-nothing-but-announce step (destination kickoff).

    Chooses an in-channel whose read is harmless in the target system:
    preferably an empty one, otherwise one whose oldest message is an
    unflagged transient (consuming it cannot upset later batch
    bookkeeping; the value lands in a ρ entry the destination never
    uses).
    """
    chosen = None
    for candidate in instance.in_channels(node):
        if not target.state.channel_contents(candidate):
            chosen = candidate
            break
    if chosen is None:
        for candidate in instance.in_channels(node):
            if flags[candidate] and not flags[candidate][0]:
                chosen = candidate
                break
    if chosen is None:
        raise LookupError(
            f"no harmless channel available to mirror {node!r}'s kickoff"
        )
    if target.state.channel_contents(chosen):
        flags[chosen].pop(0)
    entry = ActivationEntry.single(node, chosen, count=1)
    record = target.step(entry)
    _register_announcements(flags, record, flag_value=True)
    return entry


def _flag_last_batch_announcements(
    flags, target: Execution, node, start_path, instance: SPPInstance
) -> None:
    """Promote the batch's net announcement (if any) to flagged status.

    The most recent message the node wrote on each out-channel carries
    the batch's final assignment exactly when the assignment changed
    over the batch; that message is the one the R1S system also sends.
    """
    end_path = target.state.path_of(node)
    if end_path == start_path:
        return
    for out_channel in instance.out_channels(node):
        queue = target.state.channel_contents(out_channel)
        if queue and queue[-1] == end_path and flags[out_channel]:
            flags[out_channel][-1] = True


def expand_u1s_to_u1o(
    instance: SPPInstance, schedule: Sequence[ActivationEntry]
) -> tuple:
    """Prop. 3.6 (U1S → U1O): one lossy read per batched message.

    A batch that processes messages 1…j and uses index ``u`` (the
    largest non-dropped index) becomes j single reads dropping every
    message except the ``u``-th.  Only the used message survives, so the
    target run repeats assignments but never strays — an exact
    realization with repetition.  Batches that touch nothing become
    no-op reads to preserve the block structure.
    """
    source = Execution(instance)
    result: list = []
    for entry in schedule:
        node = entry.node
        (channel,) = sorted(entry.channels, key=repr)
        available = source.state.message_count(channel)
        requested = entry.read_count(channel)
        batch = available if requested is INFINITY else min(requested, available)
        dropped = entry.drop_set(channel)
        surviving = [i for i in range(1, batch + 1) if i not in dropped]
        used = surviving[-1] if surviving else None
        state_before = source.state
        record = source.step(entry)
        if batch == 0:
            if available == 0:
                # The channel is empty in both systems; re-activating the
                # same node on it is a faithful no-op (and performs the
                # destination kickoff when applicable).
                result.append(ActivationEntry.single(node, channel, count=1))
            elif record.announcements:
                result.append(_same_node_noop(instance, state_before, node))
            else:
                result.append(find_noop_entry(instance, state_before))
            continue
        for index in range(1, batch + 1):
            drop = () if index == used else (1,)
            result.append(
                ActivationEntry.single(node, channel, count=1, drop=drop)
            )
    return tuple(result)


def batch_u1o_to_r1s(
    instance: SPPInstance, schedule: Sequence[ActivationEntry]
) -> tuple:
    """Thm. 3.7 (U1O → R1S): drops become deferred batched reads.

    A dropped U1O read becomes an f = 0 no-op; a delivering read becomes
    a batch consuming every message the U1O system consumed on that
    channel since (and including) the last delivery — the batch's last
    message is precisely the delivered one, so ρ, π and all subsequent
    announcements coincide step for step: an exact realization.
    """
    source = Execution(instance)
    consumed_since_delivery: dict = {channel: 0 for channel in instance.channels}
    result: list = []
    for entry in schedule:
        node = entry.node
        (channel,) = sorted(entry.channels, key=repr)
        record = source.step(entry)
        consumed = len(record.processed.get(channel, ()))
        consumed_since_delivery[channel] += consumed
        delivered = consumed == 1 and 1 not in entry.drop_set(channel)
        if delivered:
            batch = consumed_since_delivery[channel]
            consumed_since_delivery[channel] = 0
            result.append(
                ActivationEntry.single(node, channel, count=batch)
            )
        else:
            result.append(ActivationEntry.single(node, channel, count=0))
    return tuple(result)
