"""Checkers for the π-sequence relations of Def. 3.2.

Given the path-assignment sequence induced by an activation sequence in
model A and one induced in model B, these predicates decide whether the
B-sequence realizes the A-sequence exactly, with repetition, or as a
subsequence.  They operate on finite prefixes (canonical hashable
assignments, as produced by
:attr:`repro.engine.execution.Trace.pi_sequence`).

For *with repetition* on finite prefixes we use the natural prefix
semantics: the realizing sequence must consist of non-empty blocks of
repeats of π(0), π(1), … in order, with the final block allowed to be
cut off by the horizon only if every target assignment has appeared.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "is_exact",
    "is_repetition",
    "is_subsequence",
    "collapse_repeats",
    "strongest_relation",
]


def is_exact(target: Sequence, candidate: Sequence) -> bool:
    """``candidate`` equals ``target`` elementwise (same length)."""
    return len(target) == len(candidate) and all(
        a == b for a, b in zip(target, candidate)
    )


def collapse_repeats(sequence: Sequence) -> tuple:
    """Merge adjacent equal assignments into one occurrence."""
    collapsed: list = []
    for item in sequence:
        if not collapsed or collapsed[-1] != item:
            collapsed.append(item)
    return tuple(collapsed)


def _run_lengths(sequence: Sequence) -> list:
    """Run-length encode: ``[(value, count), …]`` with adjacent merging."""
    runs: list = []
    for item in sequence:
        if runs and runs[-1][0] == item:
            runs[-1][1] += 1
        else:
            runs.append([item, 1])
    return runs


def is_repetition(target: Sequence, candidate: Sequence) -> bool:
    """``candidate`` is ``target`` with each element repeated ≥ 1 times.

    Def. 3.2's "exact realization with repetition": a strictly
    increasing ``f`` exists with ``candidate[f(t)..f(t+1)-1] = target[t]``
    for every ``t``.  Equivalently, the two run-length encodings carry
    the same values in the same order, and each of ``candidate``'s runs
    is at least as long as the corresponding run of ``target`` (a run of
    ``r`` equal target elements needs at least ``r`` copies, one block
    per element).
    """
    target_runs = _run_lengths(target)
    candidate_runs = _run_lengths(candidate)
    if len(target_runs) != len(candidate_runs):
        return False
    return all(
        t_value == c_value and c_count >= t_count
        for (t_value, t_count), (c_value, c_count) in zip(
            target_runs, candidate_runs
        )
    )


def is_subsequence(target: Sequence, candidate: Sequence) -> bool:
    """``target`` embeds into ``candidate`` preserving order."""
    iterator = iter(candidate)
    for expected in target:
        for item in iterator:
            if item == expected:
                break
        else:
            return False
    return True


def strongest_relation(target: Sequence, candidate: Sequence) -> str:
    """Name the strongest relation of ``candidate`` to ``target``.

    Returns one of ``"exact"``, ``"repetition"``, ``"subsequence"`` or
    ``"none"``.
    """
    if is_exact(target, candidate):
        return "exact"
    if is_repetition(target, candidate):
        return "repetition"
    if is_subsequence(target, candidate):
        return "subsequence"
    return "none"
