"""Bounded search for activation sequences inducing a target π-sequence.

The paper's non-realizability examples (A.3, A.4, A.5) assert that *no*
activation sequence of some model induces a given path-assignment
sequence (exactly, or with repetition).  Because network state under a
channel bound is finite, these are decidable by exhaustive search over
(state, target-position) pairs; this module performs that search and is
the mechanized counterpart of the examples' by-hand case analyses.

The searches return a concrete schedule when realization is possible
and ``None`` otherwise; :attr:`SearchOutcome.complete` reports whether
the failure is a *proof* (no truncation occurred) or merely bounded
evidence.

Stuttering: a target sequence may repeat an assignment, and the
repetition may be realized by an activation that changes nothing at
all.  The underlying successor generator prunes no-op steps, so the
search additionally considers explicit model-legal no-op entries
(reading empty channels); any schedule returned has been re-executed
and re-verified end-to-end before being reported.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.spp import SPPInstance
from ..engine.activation import INFINITY, ActivationEntry
from ..engine.convergence import is_fixed_point
from ..engine.execution import Execution, apply_entry
from ..engine.explorer import Explorer
from ..engine.state import NetworkState
from ..models.dimensions import MessageCount, NeighborScope
from ..models.taxonomy import CommunicationModel
from .verify import is_exact, is_repetition, is_subsequence

__all__ = ["SearchOutcome", "RealizationSearch"]


@dataclass(frozen=True)
class SearchOutcome:
    """Result of a realization search."""

    schedule: "tuple | None"
    complete: bool
    states_visited: int

    @property
    def realizable(self) -> bool:
        return self.schedule is not None

    @property
    def proves_impossible(self) -> bool:
        """An exhaustive search that found nothing is a proof."""
        return self.schedule is None and self.complete


class RealizationSearch:
    """Search one model's executions for a given π-sequence."""

    def __init__(
        self,
        instance: SPPInstance,
        model: CommunicationModel,
        queue_bound: int = 4,
        max_visited: int = 500_000,
    ) -> None:
        self.instance = instance
        self.model = model
        self.queue_bound = queue_bound
        self.max_visited = max_visited
        # Realization asks about *exact* π-sequences, which the
        # partial-order reduction deliberately does not preserve (it
        # merges ext-equivalent states and forces absorption steps), so
        # the search always runs on the full unreduced graph.
        self._explorer = Explorer(
            instance,
            model,
            queue_bound=queue_bound,
            max_states=max_visited,
            reduction="none",
        )

    # ------------------------------------------------------------------
    def _noop_entries(self, state: NetworkState):
        """Model-legal entries that provably leave ``state`` unchanged."""
        for node in self.instance.sorted_nodes:
            in_channels = self.instance.in_channels(node)
            scope = self.model.scope
            candidates: list = []
            count: "int | float" = (
                INFINITY if self.model.count is MessageCount.ALL else 1
            )
            if scope is NeighborScope.ONE:
                candidates = [
                    ActivationEntry.single(node, channel, count=count)
                    for channel in in_channels
                ]
            elif scope is NeighborScope.EVERY:
                if in_channels:
                    candidates = [
                        ActivationEntry(
                            nodes=[node],
                            channels=in_channels,
                            reads={c: count for c in in_channels},
                        )
                    ]
            else:
                candidates = [ActivationEntry(nodes=[node])]
            for entry in candidates:
                next_state, _ = apply_entry(self.instance, state, entry)
                if self._explorer.canonicalize(next_state) == state:
                    yield entry, state
                    break  # one no-op per node suffices

    def _moves(self, state: NetworkState, allow_noop: bool):
        yield from self._explorer.successors(state)
        if allow_noop:
            yield from self._noop_entries(state)

    # ------------------------------------------------------------------
    def find_exact(self, target: tuple) -> SearchOutcome:
        """A schedule whose π-sequence equals ``target`` elementwise."""
        return self._search(target, mode="exact")

    def find_with_repetition(self, target: tuple) -> SearchOutcome:
        """A schedule realizing ``target`` with repetition (Def. 3.2)."""
        return self._search(target, mode="repetition")

    def find_subsequence(
        self, target: tuple, max_steps: "int | None" = None
    ) -> SearchOutcome:
        """A schedule whose π-sequence contains ``target`` as a subsequence.

        Insertions are unbounded in principle; the visited-set bound
        makes the search finite, and a ``None`` outcome with
        ``complete=True`` is still a proof relative to the queue bound.
        """
        return self._search(target, mode="subsequence", max_steps=max_steps)

    # ------------------------------------------------------------------
    def _search(self, target, mode: str, max_steps: "int | None" = None):
        target = tuple(target)
        if not target:
            return SearchOutcome(schedule=(), complete=True, states_visited=0)
        initial = self._explorer.canonicalize(NetworkState.initial(self.instance))
        start = (initial, 0)
        visited = {start}
        # Each frontier item: (state, position, schedule-so-far as tuple).
        # Breadth-first: positive answers surface at their minimal length
        # (impossibility proofs must exhaust the space either way).
        frontier = deque([(initial, 0, ())])
        truncated = False

        while frontier:
            state, position, schedule = frontier.popleft()
            if max_steps is not None and len(schedule) >= max_steps:
                truncated = True
                continue
            allow_noop = self._stutter_possible(target, position, state, mode)
            for entry, next_state in self._moves(state, allow_noop):
                if any(
                    len(contents) > self.queue_bound
                    for contents in next_state.channels.values()
                ):
                    truncated = True
                    continue
                for next_position in self._advances(
                    target, position, next_state, mode
                ):
                    next_schedule = schedule + (entry,)
                    if next_position == len(target):
                        accepted, tail_complete = self._acceptable(
                            target, next_schedule, next_state, mode
                        )
                        if accepted:
                            return SearchOutcome(
                                schedule=next_schedule,
                                complete=True,
                                states_visited=len(visited),
                            )
                        truncated = truncated or not tail_complete
                        continue
                    key = (next_state, next_position)
                    if key in visited:
                        continue
                    if len(visited) >= self.max_visited:
                        truncated = True
                        continue
                    visited.add(key)
                    frontier.append((next_state, next_position, next_schedule))
        return SearchOutcome(
            schedule=None, complete=not truncated, states_visited=len(visited)
        )

    def _acceptable(self, target, schedule, final_state, mode) -> tuple:
        """Validate a candidate: relation holds, and a fair tail exists.

        Def. 3.2 quantifies over *infinite* fair activation sequences,
        and the target sequences we handle are eventually constant (the
        source execution converged).  An exact (or with-repetition)
        realization must therefore remain at the final assignment
        forever while still servicing every channel infinitely often —
        the crux of Ex. A.3, where the pending stale message forces any
        fair R1O continuation to eventually change the assignment.
        Returns ``(accepted, tail_check_complete)``.
        """
        if not self._verify(target, schedule, mode):
            return False, True
        if mode == "subsequence":
            # Any fair continuation keeps the embedding valid.
            return True, True
        return self._fair_constant_tail(final_state)

    def _fair_constant_tail(self, state: NetworkState) -> tuple:
        """Can ``state`` be extended fairly with its assignment frozen?

        Explores the subgraph of successor states sharing the current
        assignment.  A fair infinite tail exists iff that subgraph
        contains a true fixed point (quiescent and self-stable) or an
        SCC satisfying the explorer's fairness-service criterion.
        Returns ``(exists, complete)``.
        """
        final_pi = state.assignment_key
        index_of = {state: 0}
        states = [state]
        edges: dict = {}
        frontier = [0]
        truncated = False
        while frontier:
            current = frontier.pop()
            if is_fixed_point(self.instance, states[current]):
                return True, True
            adjacency = []
            for entry, nxt in self._explorer.successors(states[current]):
                if nxt.assignment_key != final_pi:
                    continue
                if any(
                    len(contents) > self.queue_bound
                    for contents in nxt.channels.values()
                ):
                    truncated = True
                    continue
                if nxt not in index_of:
                    if len(index_of) >= self.max_visited:
                        truncated = True
                        continue
                    index_of[nxt] = len(states)
                    states.append(nxt)
                    frontier.append(index_of[nxt])
                adjacency.append((entry, index_of[nxt]))
            edges[current] = adjacency
        for component in self._explorer._sccs(len(states), edges):
            members = set(component)
            has_inner = any(
                t in members
                for source in component
                for _, t in edges.get(source, ())
            )
            if has_inner and self._explorer._fairness_ok(
                component, states, edges
            ):
                return True, True
        return False, not truncated

    def _stutter_possible(self, target, position, state, mode) -> bool:
        """Whether a no-op step could consume or extend the current element."""
        current = state.assignment_key
        if mode == "exact":
            return position < len(target) and target[position] == current
        if mode == "repetition":
            return (position < len(target) and target[position] == current) or (
                position > 0 and target[position - 1] == current
            )
        return True  # subsequence: interim states are unconstrained

    def _advances(self, target, position, next_state, mode):
        """Target positions reachable after stepping into ``next_state``.

        ``position`` is the index of the next target element awaiting its
        (first) copy.  In repetition mode a step may instead emit an
        *extra* copy of the element just completed (staying in place) —
        Def. 3.2's blocks may have any positive length.
        """
        produced = next_state.assignment_key
        if mode == "exact":
            if target[position] == produced:
                yield position + 1
            return
        if mode == "repetition":
            if target[position] == produced:
                yield position + 1
            if position > 0 and target[position - 1] == produced:
                yield position  # extend the previous block
            return
        # subsequence
        if target[position] == produced:
            yield position + 1
        yield position

    def _verify(self, target, schedule, mode) -> bool:
        """Re-execute a candidate schedule and check the claimed relation."""
        trace = Execution(self.instance).run(schedule)
        produced = trace.pi_sequence
        if mode == "exact":
            return is_exact(target, produced)
        if mode == "repetition":
            return is_repetition(target, produced)
        return is_subsequence(target, produced)
