"""Transitive closure of realization facts (the rules of Sec. 3.4).

Realization relations compose: if B realizes A in sense ``r1`` and C
realizes B in sense ``r2``, then C realizes A in the weaker of the two
senses.  Contrapositives give the negative rules the paper illustrates
in Fig. 2:

* *push the tail forward*: if B realizes A strictly more strongly than
  C can realize A, then C cannot realize B at that stronger level —
  ``lo(A→B) > hi(A→C)  ⟹  hi(B→C) ≤ hi(A→C)``;
* *pull the head backward*: if C realizes A strictly more strongly than
  C can realize B, then A cannot realize B at that level —
  ``lo(A→C) > hi(B→C)  ⟹  hi(B→A) ≤ hi(B→C)``.

Running the three rules to fixpoint over the foundational facts of
:mod:`repro.realization.facts` regenerates the content of Figures 3
and 4.  ``(A → B)`` here always reads "B realizes A".
"""

from __future__ import annotations

from typing import Iterable

from ..models.taxonomy import ALL_MODELS, CommunicationModel
from .facts import Fact, foundational_facts
from .relations import Bounds, Level

__all__ = ["RealizationMatrix", "derive_matrix"]


class RealizationMatrix:
    """Bounds on "B realizes A" for every ordered model pair."""

    def __init__(self, models: Iterable[CommunicationModel] = ALL_MODELS) -> None:
        self.models = tuple(models)
        self._bounds: dict = {
            (a, b): Bounds() for a in self.models for b in self.models
        }
        # Provenance: why each bound currently holds, for `explain`.
        self._lo_reason: dict = {}
        self._hi_reason: dict = {}

    # ------------------------------------------------------------------
    def get(self, realized: CommunicationModel, realizer: CommunicationModel) -> Bounds:
        """Current bounds on "``realizer`` realizes ``realized``"."""
        return self._bounds[(realized, realizer)]

    def set(self, realized, realizer, bounds: Bounds, reason=None) -> bool:
        """Tighten an entry; returns True if anything changed."""
        key = (realized, realizer)
        old = self._bounds[key]
        try:
            tightened = old.tighten(bounds)
        except ValueError as exc:
            raise ValueError(
                f"contradiction at ({realized} realized by {realizer}): {exc}"
            ) from exc
        if tightened != old:
            self._bounds[key] = tightened
            if reason is not None:
                if tightened.lo > old.lo:
                    self._lo_reason[key] = reason
                if tightened.hi < old.hi:
                    self._hi_reason[key] = reason
            return True
        return False

    def absorb_facts(self, facts: Iterable[Fact]) -> None:
        for fact in facts:
            self.set(
                fact.realized,
                fact.realizer,
                fact.bounds,
                reason=("fact", fact.source),
            )

    # ------------------------------------------------------------------
    def close(self, max_rounds: int = 64) -> int:
        """Run the three rules to fixpoint; returns the round count."""
        for round_number in range(1, max_rounds + 1):
            changed = False
            for a in self.models:
                for b in self.models:
                    ab = self._bounds[(a, b)]
                    for c in self.models:
                        bc = self._bounds[(b, c)]
                        ac = self._bounds[(a, c)]
                        # Positive composition: C realizes A through B.
                        composed = min(ab.lo, bc.lo)
                        if composed > ac.lo:
                            changed |= self.set(
                                a,
                                c,
                                Bounds.at_least(composed),
                                reason=("compose", b),
                            )
                            ac = self._bounds[(a, c)]
                        # Negative "push tail": B's strong realization of A
                        # caps anything that realizes B poorly w.r.t. A.
                        if ab.lo > ac.hi and ac.hi < bc.hi:
                            changed |= self.set(
                                b,
                                c,
                                Bounds.at_most(ac.hi),
                                reason=("push", a),
                            )
                        # Negative "pull head": C realizes A strongly but
                        # cannot realize B; then A cannot realize B either.
                        ba = self._bounds[(b, a)]
                        if ac.lo > bc.hi and bc.hi < ba.hi:
                            changed |= self.set(
                                b,
                                a,
                                Bounds.at_most(bc.hi),
                                reason=("pull", c),
                            )
            if not changed:
                return round_number
        raise RuntimeError("closure did not stabilize (should be impossible)")

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """A copy of the full matrix keyed by (realized, realizer)."""
        return dict(self._bounds)

    def row(self, realized: CommunicationModel) -> dict:
        """realizer → bounds for a fixed realized model (a paper row)."""
        return {b: self._bounds[(realized, b)] for b in self.models}

    def column(self, realizer: CommunicationModel) -> dict:
        """realized → bounds for a fixed realizer (a paper column)."""
        return {a: self._bounds[(a, realizer)] for a in self.models}

    def universal_realizers(self, level: Level = Level.OSCILLATION) -> tuple:
        """Models realizing *every* model at ≥ ``level``.

        With the default level this computes the paper's headline list:
        the models that capture all oscillations of the whole taxonomy
        (R1O, RMO, R1S, RMS, RES, R1F, RMF and the unreliable column).
        """
        return tuple(
            b
            for b in self.models
            if all(
                self._bounds[(a, b)].lo >= level for a in self.models if a is not b
            )
        )

    def explain(
        self,
        realized: CommunicationModel,
        realizer: CommunicationModel,
        max_depth: int = 8,
    ) -> list:
        """A human-readable derivation of the entry's bounds.

        Walks the provenance recorded while closing the matrix: each
        lower bound traces back through composition steps to
        foundational facts, each upper bound through the negative
        "push"/"pull" rules of Sec. 3.4.  Returns a list of indented
        lines.
        """
        lines: list = []
        bounds = self.get(realized, realizer)
        lines.append(
            f"{realizer} realizes {realized}: {bounds.render() or 'unknown'}"
        )
        self._explain_side(realized, realizer, "lo", lines, set(), 1, max_depth)
        self._explain_side(realized, realizer, "hi", lines, set(), 1, max_depth)
        return lines

    def _explain_side(self, a, b, side, lines, seen, depth, max_depth) -> None:
        key = (a, b)
        if depth > max_depth or (key, side) in seen:
            return
        seen.add((key, side))
        reasons = self._lo_reason if side == "lo" else self._hi_reason
        reason = reasons.get(key)
        indent = "  " * depth
        bounds = self._bounds[key]
        value = bounds.lo if side == "lo" else bounds.hi
        if reason is None:
            if side == "lo" and a is b:
                lines.append(f"{indent}lo={value.short}: identity")
            elif (side == "lo" and value > Level.NONE) or (
                side == "hi" and value < Level.EXACT
            ):
                lines.append(f"{indent}{side}={value.short}: (given)")
            return
        kind, via = reason
        if kind == "fact":
            lines.append(f"{indent}{side}={value.short}: {via}")
            return
        if kind == "compose":
            lines.append(
                f"{indent}lo={value.short}: compose {via} realizes {a}, "
                f"{b} realizes {via}"
            )
            self._explain_side(a, via, "lo", lines, seen, depth + 1, max_depth)
            self._explain_side(via, b, "lo", lines, seen, depth + 1, max_depth)
            return
        if kind == "push":
            lines.append(
                f"{indent}hi={value.short}: push rule via {via}: "
                f"lo({via}→{a}) > hi({via}→{b})"
            )
            self._explain_side(via, a, "lo", lines, seen, depth + 1, max_depth)
            self._explain_side(via, b, "hi", lines, seen, depth + 1, max_depth)
            return
        # pull
        lines.append(
            f"{indent}hi={value.short}: pull rule via {via}: "
            f"lo({b}→{via}) > hi({a}→{via})"
        )
        self._explain_side(b, via, "lo", lines, seen, depth + 1, max_depth)
        self._explain_side(a, via, "hi", lines, seen, depth + 1, max_depth)

    def non_preservers(self) -> tuple:
        """Models provably missing some other model's oscillations."""
        return tuple(
            b
            for b in self.models
            if any(
                self._bounds[(a, b)].hi == Level.NONE
                for a in self.models
                if a is not b
            )
        )


def derive_matrix(facts: "Iterable[Fact] | None" = None) -> RealizationMatrix:
    """Build the closed matrix from (by default) the foundational facts."""
    matrix = RealizationMatrix()
    matrix.absorb_facts(foundational_facts() if facts is None else facts)
    matrix.close()
    return matrix
