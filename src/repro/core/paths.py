"""Path and route primitives for the Stable Paths Problem.

A *path* is a tuple of node identifiers ``(v, ..., d)`` leading from its
source ``v`` to the destination ``d``.  The *empty route* ``EPSILON``
(the empty tuple) represents "no route"; in protocol messages it doubles
as an explicit withdrawal.

Nodes may be any hashable value; the canonical instances in this package
use short strings (``"x"``, ``"d"``).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

Node = Hashable
Path = tuple  # tuple[Node, ...]

#: The empty route: "no path to the destination".
EPSILON: Path = ()


def make_path(nodes: Iterable[Node]) -> Path:
    """Return the canonical (tuple) form of a path."""
    return tuple(nodes)


def is_empty(path: Path) -> bool:
    """Return True if ``path`` is the empty route ε."""
    return len(path) == 0


def source(path: Path) -> Node:
    """Return the first node of a non-empty path."""
    if is_empty(path):
        raise ValueError("the empty route has no source")
    return path[0]


def destination(path: Path) -> Node:
    """Return the last node of a non-empty path."""
    if is_empty(path):
        raise ValueError("the empty route has no destination")
    return path[-1]


def next_hop(path: Path) -> Node:
    """Return the neighbor through which a non-trivial path routes.

    For a path ``(v, u, ..., d)`` this is ``u``; for the trivial path
    ``(d,)`` at the destination there is no next hop.
    """
    if len(path) < 2:
        raise ValueError(f"path {path!r} has no next hop")
    return path[1]


def is_simple(path: Path) -> bool:
    """Return True if no node repeats along ``path``."""
    return len(set(path)) == len(path)


def is_path_to(path: Path, dest: Node) -> bool:
    """Return True if ``path`` is non-empty and terminates at ``dest``."""
    return not is_empty(path) and destination(path) == dest


def extend(node: Node, path: Path) -> Path:
    """Return ``node · path``, the extension of ``path`` through ``node``.

    Extending the empty route yields the empty route (a node cannot
    manufacture a route from a withdrawal), and extending a path that
    already contains ``node`` yields the empty route as well — loop
    detection makes such announcements act as withdrawals, exactly the
    mechanism driving the DISAGREE oscillation of Example A.1.
    """
    if is_empty(path) or node in path:
        return EPSILON
    return (node,) + path


def subpaths(path: Path) -> Iterator[Path]:
    """Yield every suffix of ``path`` (each a path of a later node).

    For ``(s, u, a, d)`` this yields ``(s, u, a, d)``, ``(u, a, d)``,
    ``(a, d)``, ``(d,)``.
    """
    for i in range(len(path)):
        yield path[i:]


def edges_of(path: Path) -> Iterator[tuple[Node, Node]]:
    """Yield the consecutive (undirected) edges traversed by ``path``."""
    for i in range(len(path) - 1):
        yield (path[i], path[i + 1])


def format_path(path: Path) -> str:
    """Render a path the way the paper does: ``xyd``; ε for the empty route."""
    if is_empty(path):
        return "ε"
    return "".join(str(node) for node in path)


def parse_path(text: str) -> Path:
    """Parse a single-character-per-node path string like ``"xyd"``.

    ``"ε"`` and the empty string parse to :data:`EPSILON`.  This is the
    inverse of :func:`format_path` for the single-character node names
    used throughout the paper's examples.
    """
    if text in ("", "ε"):
        return EPSILON
    return tuple(text)


def validate_path(path: Sequence[Node], node: Node, dest: Node) -> None:
    """Raise ``ValueError`` unless ``path`` is a simple path node → dest."""
    path = tuple(path)
    if is_empty(path):
        raise ValueError("permitted paths must be non-empty")
    if source(path) != node:
        raise ValueError(f"path {format_path(path)} does not start at {node!r}")
    if destination(path) != dest:
        raise ValueError(f"path {format_path(path)} does not end at {dest!r}")
    if not is_simple(path):
        raise ValueError(f"path {format_path(path)} is not simple")
