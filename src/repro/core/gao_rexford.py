"""Gao–Rexford commercial routing policies (paper reference [6]).

Gao and Rexford showed that the Internet's commercial structure —
every AS relationship is customer/provider or peer/peer, preferences
rank customer routes over peer routes over provider routes, and routes
learned from peers or providers are exported only to customers —
guarantees BGP convergence *without global coordination*.  In this
package's terms: Gao–Rexford instances are dispute-wheel-free, so every
communication model converges on them (experiment E11's sufficient
condition, exercised end-to-end in the benchmarks).

This module builds such instances:

* a random AS-hierarchy generator (a DAG of customer→provider edges
  plus same-tier peering);
* valley-free permitted paths (no customer→provider or peer→peer edge
  after a provider/peer edge is traversed);
* rankings by (relationship class, path length, tiebreak); and
* the matching export policy for the execution engine (routes learned
  from a peer or provider are announced to customers only) —
  Gao–Rexford is the one place in the paper's surroundings where the
  export-policy hook of Def. 2.3 step 4 is load-bearing.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator

from .paths import EPSILON, Node, Path
from .spp import SPPInstance

__all__ = [
    "Relationship",
    "ASGraph",
    "random_as_graph",
    "gao_rexford_instance",
    "gao_rexford_export_policy",
    "classify_route",
]


class Relationship(enum.Enum):
    """The business relationship of an edge, from the first node's view."""

    CUSTOMER = "customer"  # the neighbor is my customer (routes best)
    PEER = "peer"
    PROVIDER = "provider"  # the neighbor is my provider (routes worst)

    @property
    def preference_class(self) -> int:
        """Lower = more preferred (customer < peer < provider)."""
        return {"customer": 0, "peer": 1, "provider": 2}[self.value]


@dataclass(frozen=True)
class ASGraph:
    """An AS-level topology annotated with business relationships.

    ``relationship[(u, v)]`` is v's role *as seen from u* — e.g.
    ``Relationship.CUSTOMER`` means v is u's customer.  The mapping is
    consistent: customer/provider pairs invert, peer pairs match.
    """

    nodes: tuple
    relationship: dict

    def __post_init__(self) -> None:
        for (u, v), rel in self.relationship.items():
            inverse = self.relationship.get((v, u))
            if inverse is None:
                raise ValueError(f"edge ({u!r},{v!r}) lacks its inverse")
            expected = {
                Relationship.CUSTOMER: Relationship.PROVIDER,
                Relationship.PROVIDER: Relationship.CUSTOMER,
                Relationship.PEER: Relationship.PEER,
            }[rel]
            if inverse is not expected:
                raise ValueError(
                    f"inconsistent relationship on ({u!r},{v!r}): "
                    f"{rel.value} vs {inverse.value}"
                )

    def neighbors(self, node: Node) -> tuple:
        return tuple(
            sorted((v for (u, v) in self.relationship if u == node), key=repr)
        )

    def relation(self, node: Node, neighbor: Node) -> Relationship:
        """``neighbor``'s role from ``node``'s point of view."""
        return self.relationship[(node, neighbor)]

    @property
    def edges(self) -> set:
        return {frozenset((u, v)) for (u, v) in self.relationship}


def random_as_graph(
    seed: int,
    n_nodes: int = 6,
    tiers: int = 3,
    peer_prob: float = 0.3,
    extra_provider_prob: float = 0.25,
) -> ASGraph:
    """Generate a random tiered AS hierarchy containing ``d``.

    ``d`` sits at the top tier (a "tier-1" destination).  Every lower-
    tier AS gets at least one provider in a strictly higher tier (so the
    customer→provider digraph is acyclic, as Gao–Rexford requires), and
    same-tier pairs peer with probability ``peer_prob``.
    """
    if n_nodes < 1:
        raise ValueError("need at least one AS besides the destination")
    rng = random.Random(seed)
    names = ["d"] + [f"a{i}" for i in range(n_nodes)]
    tier_of = {"d": 0}
    for name in names[1:]:
        tier_of[name] = rng.randint(1, max(1, tiers - 1))

    relationship: dict = {}

    def connect(low: Node, high: Node) -> None:
        """``high`` becomes a provider of ``low``."""
        relationship[(low, high)] = Relationship.PROVIDER
        relationship[(high, low)] = Relationship.CUSTOMER

    def peer(a: Node, b: Node) -> None:
        relationship[(a, b)] = Relationship.PEER
        relationship[(b, a)] = Relationship.PEER

    for name in names[1:]:
        uppers = [
            other
            for other in names
            if tier_of[other] < tier_of[name]
        ]
        connect(name, rng.choice(uppers))
        for other in uppers:
            if (name, other) not in relationship and rng.random() < extra_provider_prob:
                connect(name, other)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if (
                (a, b) not in relationship
                and tier_of[a] == tier_of[b]
                and rng.random() < peer_prob
            ):
                peer(a, b)
    return ASGraph(nodes=tuple(names), relationship=relationship)


def _valley_free_paths(
    graph: ASGraph, node: Node, dest: Node, max_length: int
) -> Iterator[Path]:
    """Enumerate valley-free simple paths node → dest.

    Valley-freedom: once a path traverses a peer or provider edge
    (uphill/sideways seen from the route's *user*), every earlier hop
    must have been customer→provider... operationally: walking the path
    from its source, zero or more provider edges, at most one peer
    edge, then zero or more customer edges.
    """

    def walk(current, seen, phase):
        # phase 0: still climbing (provider edges allowed)
        # phase 1: peered (only customer edges allowed now)
        if current == dest:
            yield seen
            return
        if len(seen) > max_length:
            return
        for neighbor in graph.neighbors(current):
            if neighbor in seen:
                continue
            relation = graph.relation(current, neighbor)
            if relation is Relationship.PROVIDER:
                if phase == 0:
                    yield from walk(neighbor, seen + (neighbor,), 0)
            elif relation is Relationship.PEER:
                if phase == 0:
                    yield from walk(neighbor, seen + (neighbor,), 1)
            else:  # neighbor is a customer: downhill, always allowed
                yield from walk(neighbor, seen + (neighbor,), 1)

    yield from walk(node, (node,), 0)


def classify_route(graph: ASGraph, node: Node, path: Path) -> Relationship:
    """The relationship class of a route = the next hop's role."""
    if len(path) < 2:
        raise ValueError("a route needs a next hop to classify")
    return graph.relation(node, path[1])


def gao_rexford_instance(
    graph: ASGraph,
    dest: Node = "d",
    max_length: int = 6,
    name: str = "",
) -> SPPInstance:
    """Build the SPP instance induced by Gao–Rexford preferences.

    Permitted paths are the valley-free simple paths to ``dest``;
    ranks order by (relationship class, hop count, lexicographic) —
    customer routes first, then peer, then provider, shorter preferred
    within a class.  The resulting instance is dispute-wheel-free.
    """
    permitted: dict = {}
    rank: dict = {}
    for node in graph.nodes:
        if node == dest:
            continue
        paths = sorted(
            set(_valley_free_paths(graph, node, dest, max_length)),
            key=lambda p: (
                classify_route(graph, node, p).preference_class,
                len(p),
                p,
            ),
        )
        permitted[node] = tuple(paths)
        rank[node] = {path: index for index, path in enumerate(paths)}
    return SPPInstance(
        dest=dest,
        edges=graph.edges,
        permitted=permitted,
        rank=rank,
        name=name or "GAO-REXFORD",
    )


def gao_rexford_export_policy(graph: ASGraph):
    """The export rule: peer/provider-learned routes go to customers only.

    Returns a callable compatible with
    :class:`repro.engine.execution.Execution`'s ``export_policy``: a
    node announces a route to a neighbor unless the route was learned
    from a peer or provider *and* the neighbor is not a customer.
    Withdrawals (ε) are always exported.
    """

    def policy(instance: SPPInstance, node, neighbor, path: Path) -> bool:
        if path == EPSILON or node == instance.dest:
            return True
        learned_from = classify_route(graph, node, path)
        if learned_from is Relationship.CUSTOMER:
            return True
        return graph.relation(node, neighbor) is Relationship.CUSTOMER

    return policy
