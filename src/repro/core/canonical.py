"""Relabeling-invariant canonical form and hash for SPP instances.

The verdict cache (:mod:`repro.engine.cache`) keys results by instance
*content*, not by node spelling: DISAGREE with nodes ``{d, x, y}`` and
the same gadget renamed to ``{d, a0, a1}`` must hit the same cache
entry.  This module computes a canonical node ordering from the
instance's label-free structure and a stable hash of the instance
re-encoded under it.

The algorithm is a small graph-canonicalization in the classic
colour-refinement / individualization style, specialized to SPP:

1. **Initial colouring** — each node gets a label-free signature:
   ``(is_dest, degree, multiset of (|path|, rank) over its permitted
   paths)``.  The destination is always alone in its colour class, so
   it is pinned to position 0 of every candidate ordering.
2. **Refinement** — signatures are iteratively extended with the
   multiset of neighbour colours and the colour *sequences* of each
   permitted path, until the partition stops splitting.  Both
   extensions are label-free, so the fixpoint partition is invariant
   under node renaming.
3. **Minimization** — candidate orderings enumerate all permutations
   within each colour class (classes ordered by colour).  The instance
   is re-encoded under each candidate as nested integer tuples — node
   count, sorted edge index pairs, and per-node sorted ``(rank, path
   as indices)`` lists — and the lexicographically least encoding is
   the canonical form.

When the refined partition is so symmetric that the number of
candidate orderings exceeds :data:`CANDIDATE_CAP`, enumeration falls
back to a single ordering sorted by ``(colour, repr(node))``.  That
fallback is deterministic for a fixed instance but **not** guaranteed
relabeling-invariant; it can only trigger on instances whose automorphism
classes stay large after refinement (e.g. many structurally identical
stub nodes), where a cache miss is the worst consequence — never a
wrong hit, because the hash still encodes the full instance content.
"""

from __future__ import annotations

import hashlib
import json
from itertools import permutations, product

from .spp import SPPInstance

__all__ = [
    "CANDIDATE_CAP",
    "AUTOMORPHISM_CAP",
    "automorphisms",
    "canonical_labeling",
    "canonical_form",
    "canonical_hash",
]

#: Upper bound (8!) on the number of candidate orderings tried during
#: minimization before falling back to the deterministic repr ordering.
CANDIDATE_CAP = 40320

#: Upper bound on candidate permutations enumerated while computing the
#: automorphism group.  Beyond it :func:`automorphisms` falls back to
#: the identity-only group, which is always sound — the packed engine
#: then simply merges no orbits.
AUTOMORPHISM_CAP = 40320


def _normalize(colors: dict) -> dict:
    """Replace signature values with dense ranks (smaller = earlier)."""
    ranking = {sig: i for i, sig in enumerate(sorted(set(colors.values())))}
    return {node: ranking[sig] for node, sig in colors.items()}


def _initial_colors(instance: SPPInstance) -> dict:
    colors = {}
    for node in instance.sorted_nodes:
        colors[node] = (
            node != instance.dest,  # False sorts first: dest gets colour 0
            len(instance.neighbors(node)),
            tuple(
                sorted(
                    (len(path), instance.rank_of(node, path))
                    for path in instance.permitted_at(node)
                )
            ),
        )
    return _normalize(colors)


def _refine(instance: SPPInstance, colors: dict) -> dict:
    while True:
        refined = {}
        for node in instance.sorted_nodes:
            refined[node] = (
                colors[node],
                tuple(sorted(colors[n] for n in instance.neighbors(node))),
                tuple(
                    sorted(
                        (
                            instance.rank_of(node, path),
                            tuple(colors[hop] for hop in path),
                        )
                        for path in instance.permitted_at(node)
                    )
                ),
            )
        refined = _normalize(refined)
        if len(set(refined.values())) == len(set(colors.values())):
            return refined
        colors = refined


def _color_classes(instance: SPPInstance) -> list:
    """Refined colour classes, ordered by colour (dest's class first)."""
    colors = _refine(instance, _initial_colors(instance))
    classes: dict = {}
    for node in instance.sorted_nodes:
        classes.setdefault(colors[node], []).append(node)
    return [classes[color] for color in sorted(classes)]


def _encode(instance: SPPInstance, ordering: tuple) -> tuple:
    """Re-encode the instance as nested int tuples under ``ordering``."""
    index = {node: i for i, node in enumerate(ordering)}
    edges = tuple(
        sorted(tuple(sorted(index[n] for n in edge)) for edge in instance.edges)
    )
    permitted = tuple(
        tuple(
            sorted(
                (
                    instance.rank_of(node, path),
                    tuple(index[hop] for hop in path),
                )
                for path in instance.permitted_at(node)
            )
        )
        for node in ordering
    )
    return (len(ordering), edges, permitted)


def canonical_labeling(instance: SPPInstance) -> tuple:
    """The canonical node ordering (destination always at position 0).

    Memoized on the instance (it is consulted on every cache lookup to
    translate stored witnesses back into this instance's node names).
    """
    cached = instance.__dict__.get("_canonical_labeling")
    if cached is not None:
        return cached
    ordering = _canonical_labeling(instance)
    object.__setattr__(instance, "_canonical_labeling", ordering)
    return ordering


def _canonical_labeling(instance: SPPInstance) -> tuple:
    classes = _color_classes(instance)
    candidates = 1
    for cls in classes:
        for k in range(2, len(cls) + 1):
            candidates *= k
        if candidates > CANDIDATE_CAP:
            # Documented fallback: deterministic but label-dependent.
            return tuple(
                node
                for cls in classes
                for node in sorted(cls, key=repr)
            )
    best = None
    best_ordering = None
    for perm_choice in product(*(permutations(cls) for cls in classes)):
        ordering = tuple(node for cls in perm_choice for node in cls)
        encoding = _encode(instance, ordering)
        if best is None or encoding < best:
            best = encoding
            best_ordering = ordering
    return best_ordering


def _is_automorphism(instance: SPPInstance, sigma: dict) -> bool:
    """Whether the node bijection ``sigma`` preserves the full structure.

    Required: the destination is fixed, edges map onto edges, and every
    permitted path maps onto a permitted path of the image node *with
    the same rank* (rank equality — not just order preservation — so
    the total preference tie-break ``(λ_v, repr)`` stays compatible
    with the engines' enumeration orders).
    """
    if sigma[instance.dest] != instance.dest:
        return False
    edges = instance.edges
    for edge in edges:
        if frozenset(sigma[n] for n in edge) not in edges:
            return False
    for node in instance.sorted_nodes:
        if node == instance.dest:
            continue
        image_node = sigma[node]
        permitted = instance.permitted_at(node)
        image_permitted = set(instance.permitted_at(image_node))
        if len(permitted) != len(image_permitted):
            return False
        for path in permitted:
            image_path = tuple(sigma[hop] for hop in path)
            if image_path not in image_permitted:
                return False
            if instance.rank_of(image_node, image_path) != instance.rank_of(
                node, path
            ):
                return False
    return True


def automorphisms(instance: SPPInstance) -> tuple:
    """The instance's automorphism group as node-map dicts, identity first.

    An automorphism is a relabeling of the instance onto itself: it
    fixes the destination, maps edges to edges, and maps each node's
    permitted paths onto its image's permitted paths rank-for-rank.
    Search-time symmetry reduction (``engine="packed"``) quotients the
    reachable state graph by this group.

    Candidates are drawn from the refined colour classes (an
    automorphism can only permute nodes within a class — colours are
    label-free invariants), so the enumeration is the same
    within-class product the canonical labeling minimizes over.  When
    the candidate count exceeds :data:`AUTOMORPHISM_CAP` the function
    returns the identity-only group: that disables orbit merging but
    can never produce a wrong answer.  Memoized on the instance.
    """
    cached = instance.__dict__.get("_automorphisms")
    if cached is not None:
        return cached
    group = _automorphisms(instance)
    object.__setattr__(instance, "_automorphisms", group)
    return group


def _automorphisms(instance: SPPInstance) -> tuple:
    identity = {node: node for node in instance.sorted_nodes}
    classes = _color_classes(instance)
    candidates = 1
    for cls in classes:
        for k in range(2, len(cls) + 1):
            candidates *= k
        if candidates > AUTOMORPHISM_CAP:
            return (identity,)
    found = []
    for perm_choice in product(*(permutations(cls) for cls in classes)):
        sigma = {}
        for cls, images in zip(classes, perm_choice):
            for node, image in zip(cls, images):
                sigma[node] = image
        if sigma != identity and _is_automorphism(instance, sigma):
            found.append(sigma)
    found.sort(
        key=lambda s: tuple(repr(s[node]) for node in instance.sorted_nodes)
    )
    return (identity, *found)


def canonical_form(instance: SPPInstance) -> tuple:
    """The lexicographically-least integer encoding of the instance.

    Two instances have equal canonical forms iff they are identical up
    to node renaming (modulo the :data:`CANDIDATE_CAP` fallback, which
    can only cause spurious *inequality*, never spurious equality).
    Memoized on the instance.
    """
    cached = instance.__dict__.get("_canonical_form")
    if cached is not None:
        return cached
    form = _encode(instance, canonical_labeling(instance))
    object.__setattr__(instance, "_canonical_form", form)
    return form


def canonical_hash(instance: SPPInstance) -> str:
    """Hex sha256 of the canonical form — the cache's instance key."""
    cached = instance.__dict__.get("_canonical_hash")
    if cached is not None:
        return cached
    payload = json.dumps(
        canonical_form(instance), separators=(",", ":"), sort_keys=True
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    object.__setattr__(instance, "_canonical_hash", digest)
    return digest
