"""A miniature CNF-SAT toolkit (for the NP-completeness experiments).

Griffin–Shepherd–Wilfong (the paper's reference [9]) proved that
deciding whether an SPP instance has a stable solution is NP-complete.
:mod:`repro.core.satgadgets` realizes a 3-SAT → SPP reduction; this
module supplies the classical side: a formula representation, a tiny
DPLL solver, and exhaustive enumeration helpers used to cross-validate
the reduction on small formulas.

Formulas are sequences of clauses; a clause is a tuple of non-zero
integer literals (DIMACS style: ``3`` means x₃, ``-3`` means ¬x₃).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = [
    "variables_of",
    "evaluate",
    "satisfying_assignments",
    "dpll",
    "parse_formula",
    "random_formula",
]

Clause = tuple
Formula = tuple


def _normalize(formula: Iterable[Sequence[int]]) -> Formula:
    clauses = []
    for clause in formula:
        clause = tuple(clause)
        if not clause:
            raise ValueError("empty clause (trivially unsatisfiable input)")
        if any(not isinstance(l, int) or l == 0 for l in clause):
            raise ValueError(f"literals must be non-zero ints, got {clause!r}")
        clauses.append(clause)
    return tuple(clauses)


def variables_of(formula: Iterable[Sequence[int]]) -> tuple:
    """The variable indices appearing in the formula, sorted."""
    return tuple(
        sorted({abs(literal) for clause in formula for literal in clause})
    )


def evaluate(formula: Iterable[Sequence[int]], assignment: Mapping) -> bool:
    """Evaluate under a {variable: bool} assignment (must be total)."""
    for clause in formula:
        if not any(
            assignment[abs(literal)] == (literal > 0) for literal in clause
        ):
            return False
    return True


def satisfying_assignments(
    formula: Iterable[Sequence[int]],
) -> Iterator[dict]:
    """Exhaustively yield every satisfying assignment (small formulas)."""
    formula = _normalize(formula)
    names = variables_of(formula)
    for values in itertools.product((False, True), repeat=len(names)):
        assignment = dict(zip(names, values))
        if evaluate(formula, assignment):
            yield assignment


def dpll(formula: Iterable[Sequence[int]]) -> "dict | None":
    """DPLL with unit propagation; returns a model or ``None``.

    Intended for the reduction's cross-checks, not as a competitive
    solver — but it is a real DPLL (unit propagation + splitting) and
    handles the benchmark sizes instantly.
    """
    formula = _normalize(formula)

    def solve(clauses: tuple, assignment: dict) -> "dict | None":
        # Unit propagation to fixpoint.
        clauses = list(clauses)
        while True:
            unit = next((c for c in clauses if len(c) == 1), None)
            if unit is None:
                break
            literal = unit[0]
            assignment[abs(literal)] = literal > 0
            next_clauses = []
            for clause in clauses:
                if literal in clause:
                    continue  # satisfied
                reduced = tuple(l for l in clause if l != -literal)
                if not reduced:
                    return None  # conflict
                next_clauses.append(reduced)
            clauses = next_clauses
        if not clauses:
            return assignment
        # Split on the first literal of the first clause.
        literal = clauses[0][0]
        for choice in (literal, -literal):
            result = solve(tuple(clauses) + ((choice,),), dict(assignment))
            if result is not None:
                return result
        return None

    model = solve(formula, {})
    if model is None:
        return None
    for variable in variables_of(formula):
        model.setdefault(variable, False)
    return model


def parse_formula(text: str) -> Formula:
    """Parse ``"1,-2;2,3;-1,-3"`` — clauses split by ``;``, literals by ``,``.

    This is the CLI's compact notation; whitespace is ignored.
    """
    clauses = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            clause = tuple(int(item) for item in chunk.split(","))
        except ValueError:
            raise ValueError(f"cannot parse clause {chunk!r}") from None
        clauses.append(clause)
    if not clauses:
        raise ValueError("formula has no clauses")
    return _normalize(clauses)


def random_formula(
    seed: int, n_vars: int = 4, n_clauses: int = 6, width: int = 3
) -> Formula:
    """A random width-``width`` CNF formula (variables 1..n_vars)."""
    import random

    rng = random.Random(seed)
    clauses = []
    for _ in range(n_clauses):
        chosen = rng.sample(range(1, n_vars + 1), min(width, n_vars))
        clauses.append(
            tuple(v if rng.random() < 0.5 else -v for v in chosen)
        )
    return tuple(clauses)
