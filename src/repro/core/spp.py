"""The Stable Paths Problem (SPP) — the routing problem of Sec. 2.1.

An SPP instance consists of an undirected graph ``G = (V, E)`` with a
distinguished destination ``d``, a set of *permitted paths*
``P_v`` for each node ``v`` (simple paths from ``v`` to ``d``), and a
*ranking function* ``λ_v : P_v → ℕ`` (lower rank = more preferred).
Ties in rank are permitted only between paths that share a next hop.

:class:`SPPInstance` is immutable after construction and fully
validated; use :class:`repro.core.builders.SPPBuilder` for ergonomic
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .paths import (
    EPSILON,
    Node,
    Path,
    extend,
    format_path,
    is_empty,
    next_hop,
    validate_path,
)

__all__ = ["Channel", "SPPInstance", "SPPValidationError"]

#: A directed communication channel ``(u, v)``: u writes, v reads.
Channel = tuple


class SPPValidationError(ValueError):
    """Raised when an SPP instance violates the definition of Sec. 2.1."""


@dataclass(frozen=True)
class SPPInstance:
    """An immutable, validated instance of the Stable Paths Problem.

    Parameters
    ----------
    dest:
        The distinguished destination node ``d``.
    edges:
        Undirected edges as 2-tuples; symmetric duplicates are merged.
    permitted:
        Mapping node → iterable of permitted paths (tuples ending at
        ``dest``).  The destination's own permitted set is implicitly
        ``{(d,)}`` and need not (but may) be supplied.
    rank:
        Mapping node → mapping path → rank.  If a node's ranking is
        omitted, the iteration order of its permitted paths is used
        (first = most preferred), which matches how the paper lists
        preferences "from top to bottom in order of decreasing
        preference".
    name:
        Optional human-readable instance name (e.g. ``"DISAGREE"``).
    """

    dest: Node
    edges: frozenset = field(default_factory=frozenset)
    permitted: Mapping = field(default_factory=dict)
    rank: Mapping = field(default_factory=dict)
    name: str = ""

    def __init__(
        self,
        dest: Node,
        edges: Iterable,
        permitted: Mapping,
        rank: Mapping | None = None,
        name: str = "",
    ) -> None:
        canonical_edges = set()
        for edge in edges:
            u, v = edge
            if u == v:
                raise SPPValidationError(f"self-loop edge {edge!r}")
            canonical_edges.add(frozenset((u, v)))
        object.__setattr__(self, "dest", dest)
        object.__setattr__(self, "edges", frozenset(canonical_edges))

        permitted_paths: dict = {}
        for node, paths in permitted.items():
            permitted_paths[node] = tuple(tuple(p) for p in paths)
        permitted_paths.setdefault(dest, ((dest,),))
        object.__setattr__(self, "permitted", permitted_paths)

        rankings: dict = {}
        for node, paths in permitted_paths.items():
            node_rank = dict(rank[node]) if rank and node in rank else None
            if node_rank is None:
                node_rank = {path: index for index, path in enumerate(paths)}
            rankings[node] = {tuple(p): r for p, r in node_rank.items()}
        object.__setattr__(self, "rank", rankings)
        object.__setattr__(self, "name", name)
        self._precompute_topology()
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        nodes = self.nodes
        if self.dest not in nodes:
            raise SPPValidationError(
                f"destination {self.dest!r} does not appear in the graph"
            )
        adjacency = {node: self.neighbors(node) for node in nodes}
        for node, paths in self.permitted.items():
            if node not in nodes:
                raise SPPValidationError(
                    f"permitted paths given for unknown node {node!r}"
                )
            seen: set = set()
            for path in paths:
                try:
                    validate_path(path, node, self.dest)
                except ValueError as exc:
                    raise SPPValidationError(str(exc)) from None
                if path in seen:
                    raise SPPValidationError(
                        f"duplicate permitted path {format_path(path)} at {node!r}"
                    )
                seen.add(path)
                for a, b in zip(path, path[1:]):
                    if b not in adjacency[a]:
                        raise SPPValidationError(
                            f"path {format_path(path)} uses non-edge ({a!r},{b!r})"
                        )
            ranking = self.rank[node]
            if set(ranking) != seen:
                raise SPPValidationError(
                    f"ranking domain at {node!r} does not equal permitted paths"
                )
            self._validate_tie_rule(node, ranking)
        if self.permitted[self.dest] != ((self.dest,),):
            raise SPPValidationError(
                "the destination must permit exactly its trivial path"
            )

    def _validate_tie_rule(self, node: Node, ranking: Mapping) -> None:
        """Ties in rank are only allowed between same-next-hop paths."""
        by_rank: dict = {}
        for path, value in ranking.items():
            by_rank.setdefault(value, []).append(path)
        for value, paths in by_rank.items():
            hops = {next_hop(p) for p in paths if len(p) >= 2}
            if len(paths) > 1 and len(hops) != 1:
                raise SPPValidationError(
                    f"rank tie at {node!r} (rank {value}) across different "
                    f"next hops: {[format_path(p) for p in paths]}"
                )

    def _precompute_topology(self) -> None:
        """Cache hot-path adjacency views (the engine queries them per step)."""
        found = {self.dest}
        for edge in self.edges:
            found.update(edge)
        nodes = frozenset(found)
        neighbor_map = {
            node: frozenset(
                next(iter(edge - {node})) for edge in self.edges if node in edge
            )
            for node in nodes
        }
        directed = []
        for edge in self.edges:
            u, v = sorted(edge, key=repr)
            directed.append((u, v))
            directed.append((v, u))
        channels = tuple(sorted(directed, key=repr))
        in_map = {
            node: tuple(
                (u, node) for u in sorted(neighbor_map[node], key=repr)
            )
            for node in nodes
        }
        out_map = {
            node: tuple(
                (node, u) for u in sorted(neighbor_map[node], key=repr)
            )
            for node in nodes
        }
        object.__setattr__(self, "_nodes_cache", nodes)
        object.__setattr__(self, "_neighbors_cache", neighbor_map)
        object.__setattr__(self, "_channels_cache", channels)
        object.__setattr__(self, "_in_channels_cache", in_map)
        object.__setattr__(self, "_out_channels_cache", out_map)
        object.__setattr__(
            self, "_sorted_nodes_cache", tuple(sorted(nodes, key=repr))
        )
        # Engine hot-path caches.  ``_selection_order`` is the per-node
        # in-channel order used by best-response selection (repr-sorted
        # by full channel, matching the historical per-step sort);
        # ``_rank_table`` flattens the two-level ranking lookup; the
        # feasible-extension memo is filled lazily because callers may
        # probe arbitrary routes.
        object.__setattr__(
            self,
            "_selection_order",
            {
                node: tuple(sorted(in_map[node], key=repr))
                for node in nodes
            },
        )
        object.__setattr__(
            self,
            "_rank_table",
            {
                (node, path): value
                for node, ranking in self.rank.items()
                for path, value in ranking.items()
            },
        )
        object.__setattr__(self, "_feasible_cache", {})

    # ------------------------------------------------------------------
    # Graph accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset:
        """All nodes appearing in the edge set (plus the destination)."""
        found = {self.dest}
        for edge in self.edges:
            found.update(edge)
        return frozenset(found)

    def neighbors(self, node: Node) -> frozenset:
        """The undirected neighbors ``N(v)`` of ``node``."""
        return self._neighbors_cache[node]

    @property
    def channels(self) -> tuple:
        """All directed channels ``(u, v)``, two per undirected edge.

        Channels are returned in a deterministic sorted order so that
        schedulers and explorers behave reproducibly.
        """
        return self._channels_cache

    @property
    def sorted_nodes(self) -> tuple:
        """All nodes in the canonical deterministic order."""
        return self._sorted_nodes_cache

    def in_channels(self, node: Node) -> tuple:
        """Channels on which ``node`` receives updates."""
        return self._in_channels_cache[node]

    def selection_channels(self, node: Node) -> tuple:
        """``in_channels(node)`` in the canonical selection (repr) order.

        This is the order in which Def. 2.3 step 2 scans candidates when
        recording which channel supplied the chosen path; it is hoisted
        here so :func:`repro.engine.execution.apply_entry` does not
        re-sort per step.
        """
        return self._selection_order[node]

    def out_channels(self, node: Node) -> tuple:
        """Channels on which ``node`` sends updates."""
        return self._out_channels_cache[node]

    # ------------------------------------------------------------------
    # Policy accessors
    # ------------------------------------------------------------------
    def permitted_at(self, node: Node) -> tuple:
        """The permitted-path set ``P_v`` (possibly empty for stub nodes)."""
        return self.permitted.get(node, ())

    def is_permitted(self, node: Node, path: Path) -> bool:
        """Return True if ``path`` ∈ P_v."""
        return tuple(path) in self.rank.get(node, {})

    def rank_of(self, node: Node, path: Path) -> int:
        """The rank λ_v(path); raises ``KeyError`` for non-permitted paths."""
        if type(path) is not tuple:
            path = tuple(path)
        return self._rank_table[(node, path)]

    def prefers(self, node: Node, first: Path, second: Path) -> bool:
        """Return True if ``node`` strictly prefers ``first`` to ``second``.

        Any permitted path is preferred to the empty route; the empty
        route is never preferred to anything.
        """
        if is_empty(first):
            return False
        if is_empty(second):
            return self.is_permitted(node, first)
        return self.rank_of(node, first) < self.rank_of(node, second)

    def best_choice(self, node: Node, candidates: Iterable[Path]) -> Path:
        """The most preferred permitted path among ``candidates`` (else ε).

        Non-permitted and empty candidates are ignored.  Same-rank ties
        (necessarily same next hop, by the tie rule) are broken
        deterministically by path representation.
        """
        best = EPSILON
        for candidate in candidates:
            candidate = tuple(candidate)
            if is_empty(candidate) or not self.is_permitted(node, candidate):
                continue
            if is_empty(best):
                best = candidate
            else:
                rank_new, rank_best = self.rank_of(node, candidate), self.rank_of(node, best)
                if rank_new < rank_best or (
                    rank_new == rank_best and repr(candidate) < repr(best)
                ):
                    best = candidate
        return best

    def feasible_extension(self, node: Node, route: Path) -> Path:
        """The extension ``node · route`` if permitted and simple, else ε.

        ``route`` is a neighbor's announced path (ending at the
        destination) or ε.  This implements the candidate formation of
        Def. 2.3 step 3: loops and non-permitted paths are infeasible.

        Results are memoized per ``(node, route)`` — the engine asks for
        the same handful of extensions on every step.
        """
        if type(route) is not tuple:
            route = tuple(route)
        key = (node, route)
        cached = self._feasible_cache.get(key)
        if cached is None:
            extended = extend(node, route)
            if is_empty(extended) or not self.is_permitted(node, extended):
                cached = EPSILON
            else:
                cached = extended
            self._feasible_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def preference_order(self, node: Node) -> tuple:
        """Permitted paths at ``node`` sorted most-preferred first."""
        return tuple(
            sorted(self.permitted_at(node), key=lambda p: (self.rank_of(node, p), repr(p)))
        )

    def all_paths(self) -> Iterator[tuple]:
        """Yield ``(node, path)`` for every permitted path in the instance."""
        for node in sorted(self.nodes, key=repr):
            for path in self.permitted_at(node):
                yield node, path

    def describe(self) -> str:
        """A multi-line, paper-style description of the instance."""
        lines = [f"SPP instance {self.name or '<unnamed>'} (dest={self.dest!r})"]
        for node in sorted(self.nodes, key=repr):
            if node == self.dest:
                continue
            prefs = " > ".join(
                format_path(p) for p in self.preference_order(node)
            ) or "(no permitted paths)"
            lines.append(f"  {node!r}: {prefs}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SPPInstance(name={self.name!r}, dest={self.dest!r}, "
            f"nodes={len(self.nodes)}, edges={len(self.edges)})"
        )
