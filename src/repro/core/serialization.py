"""JSON-friendly serialization of SPP instances and path assignments.

Nodes are serialized with ``str``; instances built from string node
names round-trip exactly.  Paths are encoded as lists of node names and
assignments as ``{node: [path...]}`` mappings.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from .paths import EPSILON
from .spp import SPPInstance

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "instance_to_json",
    "instance_from_json",
    "assignment_to_dict",
    "assignment_from_dict",
]


def instance_to_dict(instance: SPPInstance) -> dict:
    """Encode an instance as a JSON-able dictionary."""
    return {
        "name": instance.name,
        "dest": str(instance.dest),
        "edges": sorted(sorted(str(n) for n in edge) for edge in instance.edges),
        "permitted": {
            str(node): [list(map(str, path)) for path in instance.permitted_at(node)]
            for node in sorted(instance.nodes, key=repr)
            if node != instance.dest
        },
        "rank": {
            str(node): [
                [list(map(str, path)), rank]
                for path, rank in sorted(
                    instance.rank[node].items(),
                    key=lambda item: (item[1], item[0]),
                )
            ]
            for node in sorted(instance.nodes, key=repr)
            if node != instance.dest
        },
    }


def instance_from_dict(data: Mapping) -> SPPInstance:
    """Decode :func:`instance_to_dict` output back into an instance."""
    permitted = {
        node: tuple(tuple(path) for path in paths)
        for node, paths in data["permitted"].items()
    }
    rank: dict = {}
    for node, ranking in data.get("rank", {}).items():
        node_paths = set(permitted.get(node, ()))
        decoded = {}
        for raw_path, value in ranking:
            path = tuple(raw_path)
            if path not in node_paths:
                raise ValueError(
                    f"rank entry {path!r} at {node!r} is not a permitted path"
                )
            decoded[path] = value
        rank[node] = decoded
    return SPPInstance(
        dest=data["dest"],
        edges=[tuple(edge) for edge in data["edges"]],
        permitted=permitted,
        rank=rank or None,
        name=data.get("name", ""),
    )


def instance_to_json(instance: SPPInstance, **kwargs: Any) -> str:
    """Encode an instance as a JSON string."""
    kwargs.setdefault("indent", 2)
    kwargs.setdefault("sort_keys", True)
    return json.dumps(instance_to_dict(instance), **kwargs)


def instance_from_json(text: str) -> SPPInstance:
    """Decode a JSON string produced by :func:`instance_to_json`."""
    return instance_from_dict(json.loads(text))


def assignment_to_dict(assignment: Mapping) -> dict:
    """Encode a path assignment (ε becomes the empty list)."""
    return {
        str(node): list(map(str, path))
        for node, path in sorted(assignment.items(), key=lambda item: repr(item[0]))
    }


def assignment_from_dict(data: Mapping) -> dict:
    """Decode :func:`assignment_to_dict` output."""
    return {
        node: tuple(path) if path else EPSILON for node, path in data.items()
    }
