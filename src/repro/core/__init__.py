"""Core substrate: the Stable Paths Problem and its canonical instances."""

from .builders import SPPBuilder
from .dispute import DisputeWheel, find_dispute_wheel, has_dispute_wheel
from .paths import EPSILON, Node, Path, extend, format_path, parse_path
from .solutions import (
    PathAssignment,
    best_response,
    enumerate_stable_solutions,
    greedy_solve,
    initial_assignment,
    is_consistent,
    is_solution,
    is_stable,
)
from .canonical import canonical_form, canonical_hash, canonical_labeling
from .spp import Channel, SPPInstance, SPPValidationError
from . import compose, gao_rexford, generators, instances, sat, satgadgets, serialization

__all__ = [
    "EPSILON",
    "Node",
    "Path",
    "Channel",
    "SPPBuilder",
    "SPPInstance",
    "SPPValidationError",
    "DisputeWheel",
    "PathAssignment",
    "best_response",
    "canonical_form",
    "canonical_hash",
    "canonical_labeling",
    "enumerate_stable_solutions",
    "extend",
    "find_dispute_wheel",
    "format_path",
    "compose",
    "gao_rexford",
    "generators",
    "greedy_solve",
    "has_dispute_wheel",
    "initial_assignment",
    "instances",
    "sat",
    "satgadgets",
    "is_consistent",
    "is_solution",
    "is_stable",
    "parse_path",
    "serialization",
]
