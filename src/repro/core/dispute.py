"""Dispute-wheel detection (Griffin–Shepherd–Wilfong).

A *dispute wheel* is a cyclic structure of pivot nodes ``u_0 … u_{k-1}``
with "spoke" paths ``Q_i`` (permitted at ``u_i``) and "rim" paths
``R_i`` from ``u_i`` to ``u_{i+1}`` such that the rim route
``R_i · Q_{i+1}`` is permitted at ``u_i`` and is ranked at least as
preferred as the spoke ``Q_i``.  Absence of a dispute wheel is the
broadest known sufficient condition for convergence of path-vector
protocols (discussed around Ex. A.1); DISAGREE and BAD GADGET both
contain wheels, while GOOD GADGET and shortest-paths policies do not.

We detect wheels by building the *dispute relation* on (node, spoke)
pairs — an arc ``(u, Q_u) → (w, Q_w)`` exists when some permitted path
at ``u`` of the form ``R · Q_w`` (a rim through ``w``) is ranked at
least as well as ``Q_u`` — and searching it for a cycle.  A cycle in
this relation is precisely a dispute wheel.
"""

from __future__ import annotations

from dataclasses import dataclass

from .paths import Node, Path, format_path
from .spp import SPPInstance

__all__ = ["DisputeWheel", "dispute_relation", "find_dispute_wheel", "has_dispute_wheel"]


@dataclass(frozen=True)
class DisputeWheel:
    """A concrete dispute wheel: pivots with their spoke and rim paths."""

    pivots: tuple
    spokes: tuple
    rims: tuple

    def __len__(self) -> int:
        return len(self.pivots)

    def describe(self) -> str:
        parts = []
        for i, pivot in enumerate(self.pivots):
            parts.append(
                f"{pivot!r}: spoke {format_path(self.spokes[i])}, "
                f"rim {format_path(self.rims[i])}"
            )
        return "DisputeWheel(" + "; ".join(parts) + ")"


def _rim_arcs(instance: SPPInstance, node: Node, spoke: Path):
    """Yield ``(w, Q_w, rim_path)`` arcs out of ``(node, spoke)``.

    A permitted path ``P`` at ``node`` gives an arc to ``(w, Q_w)``
    whenever ``P = R · Q_w`` for an interior node ``w`` of ``P``, the
    suffix ``Q_w`` is permitted at ``w``, and ``λ(P) ≤ λ(spoke)``.
    """
    spoke_rank = instance.rank_of(node, spoke)
    for candidate in instance.permitted_at(node):
        if instance.rank_of(node, candidate) > spoke_rank:
            continue
        # Split P = R·Q_w at every interior node w (exclude the trivial
        # split at the source and the destination-only suffix).
        for cut in range(1, len(candidate) - 1):
            w = candidate[cut]
            suffix = candidate[cut:]
            if instance.is_permitted(w, suffix):
                yield w, suffix, candidate


def dispute_relation(instance: SPPInstance) -> dict:
    """The full dispute relation as an adjacency mapping.

    Keys and values are ``(node, spoke_path)`` pairs; an entry
    ``(u, Q_u) → {(w, Q_w), …}`` records every rim arc.
    """
    relation: dict = {}
    for node, spoke in instance.all_paths():
        if node == instance.dest:
            continue
        relation[(node, spoke)] = {
            (w, suffix) for w, suffix, _ in _rim_arcs(instance, node, spoke)
        }
    return relation


def find_dispute_wheel(instance: SPPInstance) -> DisputeWheel | None:
    """Return some dispute wheel of the instance, or ``None``.

    Performs a DFS for a cycle in the dispute relation and reconstructs
    the pivot/spoke/rim structure from the cycle found.
    """
    arcs: dict = {}
    rim_for: dict = {}
    for node, spoke in instance.all_paths():
        if node == instance.dest:
            continue
        key = (node, spoke)
        arcs[key] = []
        for w, suffix, rim in _rim_arcs(instance, node, spoke):
            target = (w, suffix)
            arcs[key].append(target)
            rim_for[(key, target)] = rim

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {key: WHITE for key in arcs}
    stack: list = []

    def dfs(key) -> list | None:
        color[key] = GRAY
        stack.append(key)
        for target in arcs.get(key, ()):
            if target not in color:
                continue
            if color[target] == GRAY:
                cycle_start = stack.index(target)
                return stack[cycle_start:] + [target]
            if color[target] == WHITE:
                found = dfs(target)
                if found is not None:
                    return found
        stack.pop()
        color[key] = BLACK
        return None

    for key in sorted(arcs, key=repr):
        if color[key] == WHITE:
            cycle = dfs(key)
            if cycle is not None:
                pivots = tuple(node for node, _ in cycle[:-1])
                spokes = tuple(spoke for _, spoke in cycle[:-1])
                rims = tuple(
                    rim_for[(cycle[i], cycle[i + 1])] for i in range(len(cycle) - 1)
                )
                return DisputeWheel(pivots=pivots, spokes=spokes, rims=rims)
    return None


def has_dispute_wheel(instance: SPPInstance) -> bool:
    """True iff the instance contains a dispute wheel."""
    return find_dispute_wheel(instance) is not None
