"""Canonical SPP instances from the paper and the surrounding literature.

Each factory returns a fresh, validated
:class:`~repro.core.spp.SPPInstance`.  Preference orders are transcribed
from the paper's Appendix A ("route preferences are listed next to that
node from top to bottom in order of decreasing preference") and, where
the figures only constrain a partial order, the total order chosen here
is the one consistent with every step of the paper's worked traces
(derivations noted inline).
"""

from __future__ import annotations

from .builders import SPPBuilder
from .spp import SPPInstance

__all__ = [
    "disagree",
    "disagree_grid",
    "fig6_gadget",
    "fig7_gadget",
    "fig8_gadget",
    "fig9_gadget",
    "bad_gadget",
    "good_gadget",
    "shortest_paths_ring",
    "linear_chain",
    "ALL_NAMED_INSTANCES",
]


def disagree() -> SPPInstance:
    """DISAGREE (Fig. 5; originally from Griffin–Shepherd–Wilfong).

    ``x`` prefers routing through ``y`` over its direct route, and vice
    versa.  Two stable solutions exist — ``(d, xyd, yd)`` and
    ``(d, xd, yxd)`` — so a dispute wheel is present, yet whether an
    oscillation is *reachable* depends on the communication model
    (Ex. A.1): it can oscillate in R1O but never in REO, REF, R1A, RMA,
    or REA.
    """
    return (
        SPPBuilder("d")
        .node("x", "xyd", "xd")
        .node("y", "yxd", "yd")
        .build("DISAGREE")
    )


def fig6_gadget() -> SPPInstance:
    """The separation gadget of Fig. 6 / Ex. A.2.

    Oscillates in REO and REF but converges in every polling model
    (R1A, RMA, REA).  The paper gives partial preference information;
    the total orders below are forced by its worked 17-step REO trace
    and RMA case analysis:

    * ``a``: azd > ayd > axd (chooses axd at t=3, switches to ayd at
      t=7 knowing both, and to azd at t=11 — "its most preferred").
    * ``u`` refuses all paths containing ``y``; uvazd > uazd (DISAGREE
      core) and uazd > uaxd (case 3: u switches uaxd → uazd on polling
      a).
    * ``v``: vuazd is "most preferred" (case 2a); vuaxd > vazd (case 3:
      v polls a yet still chooses vuaxd); vayd is chosen only when
      nothing else is feasible (t=9).
    """
    return (
        SPPBuilder("d")
        .node("x", "xd")
        .node("y", "yd")
        .node("z", "zd")
        .node("a", "azd", "ayd", "axd")
        .node("u", "uvazd", "uazd", "uaxd")
        .node("v", "vuazd", "vuaxd", "vazd", "vayd")
        .build("FIG6-SEPARATION")
    )


def fig7_gadget() -> SPPInstance:
    """The gadget of Fig. 7 / Ex. A.3.

    An REO execution on this instance cannot be *exactly* realized in
    R1O: the R1O system is forced to later process a stale ``vbd``
    message and transit through ``svbd``, a state the REO execution
    never exhibits.  Rankings forced by the trace: u switches ubd → uad
    at t=6 and v switches vbd → vad at t=7; s has subd > svbd > suad
    (stated explicitly in the example).
    """
    return (
        SPPBuilder("d")
        .node("a", "ad")
        .node("b", "bd")
        .node("u", "uad", "ubd")
        .node("v", "vad", "vbd")
        .node("s", "subd", "svbd", "suad")
        .build("FIG7-EXACT")
    )


def fig8_gadget() -> SPPInstance:
    """The gadget of Fig. 8 / Ex. A.4.

    Permitted paths are exactly ad, bd, ubd, uad, suad, subd with
    ubd > uad and suad > subd.  The 6-step REA execution ending in
    ``subd`` cannot be realized *with repetition* in R1O (the stale
    ``uad`` in channel (u,s) forces an interleaved ``suad`` state), but
    it can be realized as a subsequence.
    """
    return (
        SPPBuilder("d")
        .node("a", "ad")
        .node("b", "bd")
        .node("u", "ubd", "uad")
        .node("s", "suad", "subd")
        .build("FIG8-REPETITION")
    )


def fig9_gadget() -> SPPInstance:
    """The gadget of Fig. 9 / Ex. A.5.

    Permitted paths: ad, bd, xd, cad, cbd, scad, scbd, sxd with
    scbd > sxd > scad at ``s`` and cad > cbd at ``c``.  The 8-step REA
    execution cannot be exactly realized in R1S — s learns sxd "for
    free" when polling all neighbors, which a one-channel-per-step model
    cannot mimic without disturbing the assignment sequence.
    """
    return (
        SPPBuilder("d")
        .node("a", "ad")
        .node("b", "bd")
        .node("x", "xd")
        .node("c", "cad", "cbd")
        .node("s", "scbd", "sxd", "scad")
        .build("FIG9-R1S")
    )


def bad_gadget() -> SPPInstance:
    """BAD GADGET (Griffin–Shepherd–Wilfong): no stable solution.

    Three nodes around the destination, each preferring the clockwise
    route through its neighbor over its own direct route.  The instance
    has no stable path assignment, hence no model can converge on it;
    it diverges under every fair activation sequence.
    """
    return (
        SPPBuilder("d")
        .node("1", ("1", "2", "d"), ("1", "d"))
        .node("2", ("2", "3", "d"), ("2", "d"))
        .node("3", ("3", "1", "d"), ("3", "d"))
        .build("BAD-GADGET")
    )


def good_gadget() -> SPPInstance:
    """GOOD GADGET: the same topology as BAD GADGET but safe.

    Every node prefers its direct route; there is no dispute wheel, the
    unique stable solution assigns everyone their direct path, and every
    model converges.
    """
    return (
        SPPBuilder("d")
        .node("1", ("1", "d"), ("1", "2", "d"))
        .node("2", ("2", "d"), ("2", "3", "d"))
        .node("3", ("3", "d"), ("3", "1", "d"))
        .build("GOOD-GADGET")
    )


def shortest_paths_ring(size: int = 4) -> SPPInstance:
    """A ring of ``size`` nodes around ``d`` ranked by hop count.

    A shortest-paths policy is always dispute-wheel-free, so this family
    converges under every communication model — a useful sanity
    baseline.  Ranks are (length, lexicographic) to satisfy the tie
    rule.
    """
    if size < 2:
        raise ValueError("ring size must be at least 2")
    names = [f"n{i}" for i in range(size)]
    builder = SPPBuilder("d")
    for name in names:
        builder.edge(name, "d")
    for i in range(size):
        builder.edge(names[i], names[(i + 1) % size])
    for i, name in enumerate(names):
        left = names[(i - 1) % size]
        right = names[(i + 1) % size]
        paths = [(name, "d")]
        for other in sorted({left, right}):
            paths.append((name, other, "d"))
        builder.node(name, *paths)
    return builder.build(f"SHORTEST-RING-{size}")


def disagree_grid(copies: int = 2) -> SPPInstance:
    """``copies`` independent DISAGREE pairs sharing one destination.

    Each pair (x_i, y_i) reproduces Fig. 5 around the common ``d``; the
    instance has ``2^copies`` stable solutions and its state space
    scales geometrically — the scaling workload for the engine and
    explorer benchmarks.
    """
    if copies < 1:
        raise ValueError("need at least one DISAGREE copy")
    builder = SPPBuilder("d")
    for index in range(copies):
        x, y = f"x{index}", f"y{index}"
        builder.node(x, (x, y, "d"), (x, "d"))
        builder.node(y, (y, x, "d"), (y, "d"))
    return builder.build(f"DISAGREE-GRID-{copies}")


def linear_chain(length: int = 3) -> SPPInstance:
    """A chain ``n_k — ... — n_1 — d`` with a unique permitted path each.

    Trivially convergent in every model; exercises multi-hop update
    propagation.
    """
    if length < 1:
        raise ValueError("chain length must be at least 1")
    names = [f"n{i}" for i in range(1, length + 1)]
    builder = SPPBuilder("d")
    previous_path: tuple = ("d",)
    previous_node = "d"
    for name in names:
        builder.edge(name, previous_node)
        path = (name,) + previous_path
        builder.node(name, path)
        previous_path = path
        previous_node = name
    return builder.build(f"CHAIN-{length}")


#: Name → zero-argument factory, for CLI and test parametrization.
ALL_NAMED_INSTANCES = {
    "disagree": disagree,
    "fig6": fig6_gadget,
    "fig7": fig7_gadget,
    "fig8": fig8_gadget,
    "fig9": fig9_gadget,
    "bad-gadget": bad_gadget,
    "disagree-grid": disagree_grid,
    "good-gadget": good_gadget,
    "shortest-ring": shortest_paths_ring,
    "chain": linear_chain,
}
