"""Fluent construction of SPP instances.

The builder mirrors how the paper presents its gadgets: for each node,
list its permitted paths "from top to bottom in order of decreasing
preference".  Edges can be declared explicitly or inferred from the
paths themselves.

Example — DISAGREE (Fig. 5)::

    instance = (
        SPPBuilder("d")
        .node("x", "xyd", "xd")
        .node("y", "yxd", "yd")
        .build("DISAGREE")
    )
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .paths import Node, Path, edges_of, parse_path
from .spp import SPPInstance

__all__ = ["SPPBuilder"]


class SPPBuilder:
    """Incrementally assemble an :class:`~repro.core.spp.SPPInstance`."""

    def __init__(self, dest: Node) -> None:
        self._dest = dest
        self._edges: set = set()
        self._permitted: dict = {}
        self._rank: dict = {}
        self._auto_edges = True

    def edge(self, u: Node, v: Node) -> "SPPBuilder":
        """Declare an undirected edge ``{u, v}``."""
        self._edges.add(frozenset((u, v)))
        return self

    def edges(self, pairs: Iterable[Sequence[Node]]) -> "SPPBuilder":
        """Declare several undirected edges."""
        for u, v in pairs:
            self.edge(u, v)
        return self

    def without_auto_edges(self) -> "SPPBuilder":
        """Do not infer edges from permitted paths (edges must be explicit)."""
        self._auto_edges = False
        return self

    def node(self, node: Node, *paths: "str | Sequence[Node]") -> "SPPBuilder":
        """Declare a node with its permitted paths, most preferred first.

        Paths may be given as tuples of nodes, or — for the
        single-character node names used in the paper — as compact
        strings such as ``"xyd"``.
        """
        parsed = tuple(self._parse(node, p) for p in paths)
        if node in self._permitted:
            raise ValueError(f"node {node!r} declared twice")
        self._permitted[node] = parsed
        self._rank[node] = {path: index for index, path in enumerate(parsed)}
        return self

    def ranked_node(
        self, node: Node, ranked_paths: Iterable[tuple]
    ) -> "SPPBuilder":
        """Declare a node with explicit ``(path, rank)`` pairs.

        Needed when exercising the tie rule (equal ranks through a
        shared next hop).
        """
        pairs = [(self._parse(node, path), rank) for path, rank in ranked_paths]
        if node in self._permitted:
            raise ValueError(f"node {node!r} declared twice")
        self._permitted[node] = tuple(path for path, _ in pairs)
        self._rank[node] = dict(pairs)
        return self

    def _parse(self, node: Node, path: "str | Sequence[Node]") -> Path:
        parsed = parse_path(path) if isinstance(path, str) else tuple(path)
        if parsed and parsed[0] != node:
            raise ValueError(f"path {parsed!r} does not start at {node!r}")
        return parsed

    def build(self, name: str = "") -> SPPInstance:
        """Validate and return the finished instance."""
        edges = set(self._edges)
        if self._auto_edges:
            for paths in self._permitted.values():
                for path in paths:
                    for u, v in edges_of(path):
                        edges.add(frozenset((u, v)))
        return SPPInstance(
            dest=self._dest,
            edges=edges,
            permitted=self._permitted,
            rank=self._rank,
            name=name,
        )
