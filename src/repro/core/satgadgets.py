"""A 3-SAT → SPP reduction (the NP-completeness of solvability, [9]).

Griffin–Shepherd–Wilfong showed SPP solvability NP-complete; this
module implements a reduction in that spirit, built entirely from the
gadgets the paper works with:

* **Variable gadget** — one DISAGREE pair ``(u_i, w_i)`` per variable
  x_i.  The pair has exactly two stable configurations:

  - *True*:  ``u_i = u_i w_i d`` and ``w_i = w_i d``;
  - *False*: ``u_i = u_i d``     and ``w_i = w_i u_i d``.

* **Clause gadget** — per clause ``C_j``, a BAD-GADGET triangle
  ``(c_j, h_j1, h_j2)`` that is *defused* exactly when the clause is
  satisfied: ``c_j``'s most preferred paths are "witness" routes
  through its literals' variable nodes — ``c_j w_i d`` for a positive
  literal (consistent only in the *True* configuration, where ``w_i``
  sits on its direct route) and ``c_j u_i d`` for a negative literal
  (consistent only in *False*).  When some witness route is available
  the triangle relaxes onto its direct routes; when every literal is
  falsified, the triangle is an untriggered BAD GADGET with no stable
  configuration.

Hence the SPP instance has a stable solution iff the formula is
satisfiable.  The construction is validated exhaustively against the
DPLL solver of :mod:`repro.core.sat` in the test suite, and the
solution ↔ assignment translations below are exact inverses on stable
solutions.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .paths import EPSILON
from .sat import variables_of
from .spp import SPPInstance

__all__ = [
    "formula_to_spp",
    "assignment_from_solution",
    "solution_from_assignment",
]

DEST = "d"


def _u(index: int) -> str:
    return f"u{index}"


def _w(index: int) -> str:
    return f"w{index}"


def _clause_nodes(index: int) -> tuple:
    return (f"c{index}", f"h{index}.1", f"h{index}.2")


def formula_to_spp(formula: Iterable[Sequence[int]], name: str = "") -> SPPInstance:
    """Build the SPP instance encoding a CNF formula.

    Clauses may have any width ≥ 1; variables are the integers
    appearing in the clauses.
    """
    formula = tuple(tuple(clause) for clause in formula)
    permitted: dict = {}
    rank: dict = {}

    def declare(node: str, *paths) -> None:
        permitted[node] = tuple(tuple(p) for p in paths)
        rank[node] = {tuple(p): i for i, p in enumerate(paths)}

    # Variable gadgets: DISAGREE pairs.
    for index in variables_of(formula):
        u, w = _u(index), _w(index)
        declare(u, (u, w, DEST), (u, DEST))
        declare(w, (w, u, DEST), (w, DEST))

    # Clause gadgets: conditionally defused BAD GADGET triangles.
    for j, clause in enumerate(formula):
        c, h1, h2 = _clause_nodes(j)
        witnesses = []
        for literal in clause:
            index = abs(literal)
            via = _w(index) if literal > 0 else _u(index)
            witnesses.append((c, via, DEST))
        declare(c, *witnesses, (c, h1, DEST), (c, DEST))
        declare(h1, (h1, h2, DEST), (h1, DEST))
        declare(h2, (h2, c, DEST), (h2, DEST))

    edges = {
        tuple(sorted((a, b), key=repr))
        for paths in permitted.values()
        for path in paths
        for a, b in zip(path, path[1:])
    }
    return SPPInstance(
        dest=DEST,
        edges=edges,
        permitted=permitted,
        rank=rank,
        name=name or f"SAT-{len(variables_of(formula))}v{len(formula)}c",
    )


def solution_from_assignment(
    formula: Iterable[Sequence[int]], assignment: Mapping
) -> dict:
    """The stable path assignment encoding a satisfying assignment.

    Raises ``ValueError`` if the assignment does not satisfy the
    formula (the clause triangles would then have no stable state).
    """
    formula = tuple(tuple(clause) for clause in formula)
    solution: dict = {DEST: (DEST,)}
    for index in variables_of(formula):
        u, w = _u(index), _w(index)
        if assignment[index]:
            solution[u] = (u, w, DEST)
            solution[w] = (w, DEST)
        else:
            solution[u] = (u, DEST)
            solution[w] = (w, u, DEST)
    for j, clause in enumerate(formula):
        c, h1, h2 = _clause_nodes(j)
        witness = None
        for literal in clause:
            if assignment[abs(literal)] == (literal > 0):
                via = _w(abs(literal)) if literal > 0 else _u(abs(literal))
                witness = (c, via, DEST)
                break
        if witness is None:
            raise ValueError(f"clause {j} is not satisfied by the assignment")
        solution[c] = witness
        solution[h2] = (h2, DEST)
        solution[h1] = (h1, h2, DEST)
    return solution


def assignment_from_solution(
    formula: Iterable[Sequence[int]], solution: Mapping
) -> dict:
    """Decode a stable solution back into a boolean assignment.

    Reads each variable pair's configuration; the result satisfies the
    formula whenever ``solution`` is a stable solution of the reduction
    instance.
    """
    assignment = {}
    for index in variables_of(tuple(tuple(c) for c in formula)):
        w = _w(index)
        path = tuple(solution.get(w, EPSILON))
        assignment[index] = path == (w, DEST)
    return assignment
