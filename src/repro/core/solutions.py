"""Stable path assignments — the solutions of the Stable Paths Problem.

A *path assignment* maps every node to a permitted path (or ε).  Per
Sec. 2.1 it solves the SPP when it is

* **consistent** — if the next hop of ``π_v`` is ``u`` then
  ``π_v = v·π_u``; and
* **stable** — ``π_v`` is the most preferred feasible extension of any
  neighbor's assigned path (and ε only when no extension is feasible).

This module provides checkers, a brute-force enumerator (the decision
problem is NP-complete, per Griffin–Shepherd–Wilfong, so exhaustive
search is the honest baseline for gadget-sized instances) and the
greedy constructive solver that succeeds on dispute-wheel-free
instances.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from .paths import EPSILON, Node, Path, is_empty, next_hop
from .spp import SPPInstance

__all__ = [
    "PathAssignment",
    "initial_assignment",
    "is_consistent",
    "is_stable",
    "is_solution",
    "enumerate_stable_solutions",
    "greedy_solve",
    "best_response",
]

#: A path assignment π: node → path (ε for "no route").
PathAssignment = dict


def initial_assignment(instance: SPPInstance) -> PathAssignment:
    """The t = 0 assignment of Def. 2.1: ε everywhere, (d,) at d."""
    assignment = {node: EPSILON for node in instance.nodes}
    assignment[instance.dest] = (instance.dest,)
    return assignment


def best_response(
    instance: SPPInstance, node: Node, assignment: Mapping
) -> Path:
    """The most preferred feasible extension of the neighbors' paths.

    This is the "omniscient" best response used by the stability
    definition — the node sees every neighbor's *current* assignment
    (unlike protocol execution, which sees only announced state).
    """
    if node == instance.dest:
        return (instance.dest,)
    candidates = [
        instance.feasible_extension(node, assignment.get(u, EPSILON))
        for u in instance.neighbors(node)
    ]
    return instance.best_choice(node, candidates)


def is_consistent(instance: SPPInstance, assignment: Mapping) -> bool:
    """Check the consistency condition of Sec. 2.1."""
    if assignment.get(instance.dest) != (instance.dest,):
        return False
    for node in instance.nodes:
        path = assignment.get(node, EPSILON)
        if node == instance.dest or is_empty(path):
            continue
        hop = next_hop(path)
        if path != (node,) + tuple(assignment.get(hop, EPSILON)):
            return False
    return True


def is_stable(instance: SPPInstance, assignment: Mapping) -> bool:
    """Check the stability condition: every node plays its best response."""
    for node in instance.nodes:
        if node == instance.dest:
            continue
        if assignment.get(node, EPSILON) != best_response(instance, node, assignment):
            return False
    return True


def is_solution(instance: SPPInstance, assignment: Mapping) -> bool:
    """True iff ``assignment`` is a consistent and stable solution."""
    return is_consistent(instance, assignment) and is_stable(instance, assignment)


def enumerate_stable_solutions(instance: SPPInstance) -> Iterator[PathAssignment]:
    """Yield every stable, consistent path assignment (exhaustively).

    Backtracking over per-node candidate paths with two prunes:

    * *consistency* — a candidate whose next hop is already assigned
      must extend that assignment (and assigning a node re-checks the
      nodes routing through it); and
    * *stability* — once a node and all of its neighbors are assigned,
      the node must already be playing its best response; no completion
      can fix it otherwise.

    Intended for gadget-sized instances; the underlying decision
    problem is NP-complete (see :mod:`repro.core.satgadgets`).
    """
    nodes = [n for n in sorted(instance.nodes, key=repr) if n != instance.dest]
    assignment: PathAssignment = {instance.dest: (instance.dest,)}
    neighbor_map = {node: instance.neighbors(node) for node in nodes}

    def candidates(node: Node) -> tuple:
        return instance.permitted_at(node) + (EPSILON,)

    def assigned_prefix_ok(node: Node) -> bool:
        """Prune: consistency of paths among already-assigned nodes."""
        path = assignment[node]
        if is_empty(path):
            return True
        hop = next_hop(path)
        if hop in assignment:
            return path == (node,) + tuple(assignment[hop])
        return True

    def stability_ok_so_far(just_assigned: Node) -> bool:
        """Prune: neighbor-complete nodes must already be stable."""
        to_check = {just_assigned} | (neighbor_map[just_assigned] - {instance.dest})
        for node in to_check:
            if node not in assignment:
                continue
            if any(
                neighbor not in assignment
                for neighbor in neighbor_map[node]
                if neighbor != instance.dest
            ):
                continue
            if assignment[node] != best_response(instance, node, assignment):
                return False
        return True

    def search(index: int) -> Iterator[PathAssignment]:
        if index == len(nodes):
            if is_solution(instance, assignment):
                yield dict(assignment)
            return
        node = nodes[index]
        for candidate in candidates(node):
            assignment[node] = candidate
            if assigned_prefix_ok(node):
                # Also re-check nodes whose next hop is the one just set.
                consistent = all(
                    assigned_prefix_ok(other)
                    for other in assignment
                    if other != instance.dest
                )
                if consistent and stability_ok_so_far(node):
                    yield from search(index + 1)
            del assignment[node]

    yield from search(0)


def greedy_solve(instance: SPPInstance) -> PathAssignment | None:
    """The Griffin–Shepherd–Wilfong greedy construction.

    Iteratively "fix" nodes: a node can be fixed with path ``P`` when
    ``P`` extends an already-fixed neighbor's assigned path and is at
    least as preferred as every permitted path of the node that has not
    been ruled out by fixed nodes.  On dispute-wheel-free instances the
    construction always completes and its output is a stable solution;
    on other instances it may fail, returning ``None``.
    """
    fixed: PathAssignment = {instance.dest: (instance.dest,)}

    def ruled_out(node: Node, path: Path) -> bool:
        """A path is dead if it disagrees with a fixed next hop."""
        hop = next_hop(path)
        return hop in fixed and path != (node,) + tuple(fixed[hop])

    pending = {n for n in instance.nodes if n != instance.dest}
    progress = True
    while pending and progress:
        progress = False
        for node in sorted(pending, key=repr):
            viable = [
                p for p in instance.permitted_at(node) if not ruled_out(node, p)
            ]
            if not viable:
                fixed[node] = EPSILON
                pending.discard(node)
                progress = True
                break
            best = min(viable, key=lambda p: (instance.rank_of(node, p), repr(p)))
            hop = next_hop(best)
            if hop in fixed and best == (node,) + tuple(fixed[hop]):
                fixed[node] = best
                pending.discard(node)
                progress = True
                break
    if pending:
        return None
    assert is_solution(instance, fixed), "greedy construction produced a non-solution"
    return fixed
