"""Random SPP instance generation for the convergence-rate experiments.

The paper evaluates on hand-built gadgets; the convergence-survey
extension (experiment E10 in DESIGN.md) additionally sweeps randomly
generated instances.  Three policy families are provided:

* ``"random"`` — each node permits a random subset of its simple paths
  to the destination with a uniformly random preference order.  Such
  instances frequently contain dispute wheels and may diverge.
* ``"shortest"`` — ranks equal (hop count, lexicographic tiebreak).
  Always dispute-wheel-free, hence always convergent.
* ``"next-hop"`` — preferences depend only on the next hop (a common
  BGP idiom); generated so that ranks are distinct per next hop.

All generation is driven by a caller-supplied seed for reproducibility.
"""

from __future__ import annotations

import random
from typing import Iterator

from .paths import Node, Path
from .spp import SPPInstance

__all__ = [
    "enumerate_simple_paths",
    "random_connected_graph",
    "random_instance",
    "instance_family",
]

POLICIES = ("random", "shortest", "next-hop")


def enumerate_simple_paths(
    adjacency: dict, node: Node, dest: Node, max_length: int
) -> Iterator[Path]:
    """Yield every simple path ``node → dest`` of at most ``max_length`` hops."""

    def walk(current: Node, seen: tuple) -> Iterator[Path]:
        if current == dest:
            yield seen
            return
        if len(seen) > max_length:
            return
        for neighbor in sorted(adjacency.get(current, ()), key=repr):
            if neighbor not in seen:
                yield from walk(neighbor, seen + (neighbor,))

    yield from walk(node, (node,))


def random_connected_graph(
    rng: random.Random, n_nodes: int, extra_edge_prob: float
) -> tuple:
    """A random connected graph over ``d`` and ``n_nodes`` satellites.

    Builds a uniform random spanning tree (random attachment) and adds
    each remaining candidate edge with probability ``extra_edge_prob``.
    Returns ``(nodes, edges)`` with edges as 2-tuples.
    """
    nodes = ["d"] + [f"n{i}" for i in range(n_nodes)]
    edges = set()
    for index in range(1, len(nodes)):
        anchor = nodes[rng.randrange(index)]
        edges.add(frozenset((nodes[index], anchor)))
    for i in range(len(nodes)):
        for j in range(i + 1, len(nodes)):
            pair = frozenset((nodes[i], nodes[j]))
            if pair not in edges and rng.random() < extra_edge_prob:
                edges.add(pair)
    return nodes, {tuple(sorted(edge)) for edge in edges}


def random_instance(
    seed: int,
    n_nodes: int = 4,
    extra_edge_prob: float = 0.3,
    max_paths_per_node: int = 4,
    max_path_length: int = 5,
    policy: str = "random",
) -> SPPInstance:
    """Generate one random SPP instance.

    Parameters mirror the experiment sweep: topology density via
    ``extra_edge_prob``, policy expressiveness via
    ``max_paths_per_node``, and the policy family via ``policy``.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
    rng = random.Random(seed)
    nodes, edges = random_connected_graph(rng, n_nodes, extra_edge_prob)
    adjacency: dict = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)

    permitted: dict = {}
    rank: dict = {}
    for node in nodes:
        if node == "d":
            continue
        all_paths = list(enumerate_simple_paths(adjacency, node, "d", max_path_length))
        if not all_paths:
            permitted[node] = ()
            rank[node] = {}
            continue
        if policy == "shortest":
            chosen = sorted(all_paths, key=lambda p: (len(p), p))[:max_paths_per_node]
            rank[node] = {path: index for index, path in enumerate(chosen)}
        elif policy == "next-hop":
            chosen = sorted(all_paths, key=lambda p: (len(p), p))[:max_paths_per_node]
            hops = sorted({p[1] for p in chosen}, key=repr)
            rng.shuffle(hops)
            hop_rank = {hop: index for index, hop in enumerate(hops)}
            # Distinct overall ranks: (next-hop preference, length, lex).
            ordered = sorted(chosen, key=lambda p: (hop_rank[p[1]], len(p), p))
            rank[node] = {path: index for index, path in enumerate(ordered)}
        else:  # random
            count = rng.randint(1, min(max_paths_per_node, len(all_paths)))
            chosen = rng.sample(all_paths, count)
            rng.shuffle(chosen)
            rank[node] = {path: index for index, path in enumerate(chosen)}
        permitted[node] = tuple(rank[node])

    return SPPInstance(
        dest="d",
        edges=edges,
        permitted=permitted,
        rank=rank,
        name=f"RANDOM-{policy}-{seed}",
    )


def instance_family(
    count: int,
    base_seed: int = 0,
    **kwargs,
) -> Iterator[SPPInstance]:
    """Yield ``count`` random instances with consecutive seeds."""
    for offset in range(count):
        yield random_instance(seed=base_seed + offset, **kwargs)
