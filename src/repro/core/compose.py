"""Composition of SPP instances.

Disjoint unions over a shared destination let small, well-understood
gadgets scale into large workloads whose behaviour is predictable:
stable solutions multiply, dispute wheels and oscillations carry over
from any component, and safety carries over from all of them (the
components cannot interact — the only shared node is the destination,
whose assignment is constant).

``disagree_grid`` in :mod:`repro.core.instances` is the special case of
k DISAGREE copies; this module provides the general combinator plus
node-renaming.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .paths import Path
from .spp import SPPInstance

__all__ = ["rename_nodes", "shared_destination_union"]


def rename_nodes(
    instance: SPPInstance,
    renamer: "Callable | None" = None,
    prefix: str = "",
    name: str = "",
) -> SPPInstance:
    """A copy of the instance with nodes renamed.

    Either pass ``renamer`` (node → new node) or a string ``prefix``
    prepended to every non-destination node.  The destination keeps its
    identity unless ``renamer`` maps it explicitly.
    """
    if renamer is None:
        if not prefix:
            raise ValueError("provide a renamer or a non-empty prefix")

        def renamer(node):  # noqa: F811 - deliberate fallback binding
            return node if node == instance.dest else f"{prefix}{node}"

    def rename_path(path: Path) -> tuple:
        return tuple(renamer(node) for node in path)

    return SPPInstance(
        dest=renamer(instance.dest),
        edges=[tuple(renamer(n) for n in edge) for edge in instance.edges],
        permitted={
            renamer(node): [rename_path(p) for p in instance.permitted_at(node)]
            for node in instance.nodes
            if node != instance.dest
        },
        rank={
            renamer(node): {
                rename_path(path): value
                for path, value in instance.rank[node].items()
            }
            for node in instance.nodes
            if node != instance.dest
        },
        name=name or f"{instance.name}-RENAMED",
    )


def shared_destination_union(
    instances: Sequence[SPPInstance],
    name: str = "",
    auto_prefix: bool = True,
) -> SPPInstance:
    """Join instances at their (common) destination.

    All inputs must use the same destination node.  With
    ``auto_prefix`` each component's non-destination nodes are renamed
    ``c{i}.<node>`` so components never collide; pass ``False`` if the
    caller guarantees disjointness.
    """
    if not instances:
        raise ValueError("need at least one instance")
    dest = instances[0].dest
    if any(instance.dest != dest for instance in instances):
        raise ValueError("all components must share the destination node")

    components = list(instances)
    if auto_prefix:
        components = [
            rename_nodes(instance, prefix=f"c{index}.")
            for index, instance in enumerate(components)
        ]
    else:
        seen: set = {dest}
        for instance in components:
            overlap = (instance.nodes - {dest}) & seen
            if overlap:
                raise ValueError(f"components share nodes: {sorted(map(repr, overlap))}")
            seen |= instance.nodes

    edges: set = set()
    permitted: dict = {}
    rank: dict = {}
    for instance in components:
        edges |= set(instance.edges)
        for node in instance.nodes:
            if node == dest:
                continue
            permitted[node] = instance.permitted_at(node)
            rank[node] = dict(instance.rank[node])
    return SPPInstance(
        dest=dest,
        edges=edges,
        permitted=permitted,
        rank=rank,
        name=name or "+".join(instance.name for instance in instances),
    )
