"""``repro.campaign.api`` — the one façade library users should import.

Everything a campaign needs — create it, run it (single- or
multi-host), serve it to remote joiners, check on it, read its report —
through module-level verbs plus a :class:`CampaignHandle` value object,
so callers stop reaching into ``runner.py``/``manifest.py`` internals::

    import repro.campaign.api as campaigns

    handle = campaigns.create(spec, "out/survey")   # or attach(...)
    handle.run()                                    # resumes automatically
    print(handle.status()["shards_pending"])

    # multi-host: one serve, any number of joins
    campaigns.serve("out/survey", port=8643)        # coordinator host
    campaigns.join("http://coord:8643")             # each worker host

``run`` is idempotent — it executes exactly the shards whose
checkpoints are missing, so it *is* resume; the old ``Campaign.resume``
survives as a :class:`DeprecationWarning` shim.
"""

from __future__ import annotations

from .coordinator import DEFAULT_PORT, CampaignCoordinator
from .queue import DEFAULT_LEASE_TTL, DEFAULT_QUARANTINE_AFTER
from .runner import Campaign
from .spec import CampaignSpec

__all__ = [
    "CampaignHandle",
    "attach",
    "create",
    "join",
    "report",
    "run",
    "serve",
    "status",
]


class CampaignHandle:
    """A campaign directory, held as a value object.

    Thin by design: every method is a forwarding verb over the
    underlying :class:`~repro.campaign.runner.Campaign`, which stays
    available as :attr:`raw` for the rare caller that needs internals.
    """

    def __init__(self, campaign: Campaign) -> None:
        self._campaign = campaign

    # -- identity --------------------------------------------------------
    @property
    def raw(self) -> Campaign:
        return self._campaign

    @property
    def spec(self) -> CampaignSpec:
        return self._campaign.spec

    @property
    def digest(self) -> str:
        return self._campaign.digest

    @property
    def directory(self) -> str:
        return str(self._campaign.paths.directory)

    def __repr__(self) -> str:
        return (
            f"CampaignHandle({self.directory!r}, "
            f"digest={self.digest[:12]}, name={self.spec.name!r})"
        )

    # -- verbs -----------------------------------------------------------
    def run(
        self,
        workers: "int | None" = None,
        max_shards: "int | None" = None,
    ) -> list:
        """Execute pending shards (idempotent; doubles as resume)."""
        return self._campaign.run(workers=workers, max_shards=max_shards)

    def serve(self, **kwargs) -> CampaignCoordinator:
        """A coordinator daemon over this campaign (caller starts it)."""
        return CampaignCoordinator(self._campaign, **kwargs)

    def join(self, **kwargs) -> dict:
        """Work this campaign's queue from this process (path transport)."""
        from .worker import join as _join

        return _join(self.directory, **kwargs)

    def status(self) -> dict:
        return self._campaign.status()

    def report(self) -> dict:
        from .manifest import read_json

        # A written partial report (quarantined shards) is authoritative —
        # recomputing would refuse on the pending-but-quarantined shards.
        written = read_json(self._campaign.paths.report_path)
        if written is not None and written.get("partial"):
            return written
        return self._campaign.report()

    def records(self) -> list:
        return self._campaign.records()


def create(spec: CampaignSpec, directory) -> CampaignHandle:
    """Materialize (or idempotently re-open) a campaign for ``spec``."""
    return CampaignHandle(Campaign.create(directory, spec))


def attach(directory) -> CampaignHandle:
    """Open the existing campaign at ``directory``."""
    return CampaignHandle(Campaign.open(directory))


def run(
    directory,
    workers: "int | None" = None,
    max_shards: "int | None" = None,
) -> list:
    """Attach and run (resume is automatic); the executed shard ids."""
    return attach(directory).run(workers=workers, max_shards=max_shards)


def serve(
    directory,
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    backend: str = "sqlite",
    lease_ttl: float = DEFAULT_LEASE_TTL,
    quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
) -> CampaignCoordinator:
    """A coordinator daemon over ``directory`` (not yet started; use as
    a context manager, or call ``start_background``/``serve_forever``)."""
    return attach(directory).serve(
        host=host,
        port=port,
        backend=backend,
        lease_ttl=lease_ttl,
        quarantine_after=quarantine_after,
    )


def join(target, **kwargs) -> dict:
    """Work the campaign at ``target`` (directory or coordinator URL)."""
    from .worker import join as _join

    return _join(target, **kwargs)


def status(target) -> dict:
    """Campaign status from a directory or a coordinator URL."""
    if isinstance(target, str) and target.startswith(("http://", "https://")):
        from .worker import CoordinatorClient

        client = CoordinatorClient(target)
        try:
            return client._request("GET", "/statz")
        finally:
            client.close()
    return attach(target).status()


def report(directory) -> dict:
    """The aggregate report of the (complete) campaign at ``directory``."""
    return attach(directory).report()
