"""``repro.campaign`` — resumable, sharded random-instance survey campaigns.

The paper's separation results are proved on hand-built gadgets;
statistically meaningful coverage of the 24-model taxonomy needs
*populations* of random instances, which means multi-hour sweeps that
must survive crashes.  A campaign is defined entirely by a JSON
:class:`~repro.campaign.spec.CampaignSpec` (generator parameters, seed,
model set, bounds, shard size); :class:`~repro.campaign.runner.Campaign`
materializes a manifest plus per-shard checkpoints under a campaign
directory, executes shards through the retrying parallel fan-out, and
aggregates the checkpoints into a survey report with per-model
oscillation/convergence rates and Wilson confidence intervals.

Interrupt-safety is the design center: checkpoints are atomic,
write-once, and keyed by the spec digest, every task is a pure function
of the spec, and the report is a pure function of the checkpoints — so
``repro campaign run`` after a SIGKILL reproduces the uninterrupted
report byte for byte.

Campaigns also scale *across hosts*: shards become leasable rows in a
durable :mod:`~repro.campaign.queue` (SQLite or file-lease backend),
brokered either directly (shared filesystem) or over HTTP by a
:mod:`~repro.campaign.coordinator` daemon (``repro campaign serve``)
that any number of ``repro campaign join`` workers pull from — dead
workers' leases are reclaimed after a heartbeat timeout, and the
write-once determinism above makes the multi-host report byte-identical
to a single-host run.

Library users should go through :mod:`repro.campaign.api`
(:class:`~repro.campaign.api.CampaignHandle` plus ``create / attach /
run / serve / join / status / report``) rather than the lower-level
modules.  See ``docs/api.md`` and ``docs/distributed.md``.
"""

from .api import CampaignHandle, attach, create
from .coordinator import CampaignCoordinator
from .manifest import CAMPAIGN_SCHEMA, CampaignPaths, build_manifest
from .queue import Lease, QueueError, WorkQueue, open_queue
from .report import aggregate_report, render_report
from .runner import Campaign, CampaignError, compute_shard_records
from .spec import MODES, CampaignSpec, spec_digest
from .worker import join

__all__ = [
    "CAMPAIGN_SCHEMA",
    "Campaign",
    "CampaignCoordinator",
    "CampaignError",
    "CampaignHandle",
    "CampaignPaths",
    "CampaignSpec",
    "Lease",
    "MODES",
    "QueueError",
    "WorkQueue",
    "aggregate_report",
    "attach",
    "build_manifest",
    "compute_shard_records",
    "create",
    "join",
    "open_queue",
    "render_report",
    "spec_digest",
]
