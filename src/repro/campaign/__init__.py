"""``repro.campaign`` — resumable, sharded random-instance survey campaigns.

The paper's separation results are proved on hand-built gadgets;
statistically meaningful coverage of the 24-model taxonomy needs
*populations* of random instances, which means multi-hour sweeps that
must survive crashes.  A campaign is defined entirely by a JSON
:class:`~repro.campaign.spec.CampaignSpec` (generator parameters, seed,
model set, bounds, shard size); :class:`~repro.campaign.runner.Campaign`
materializes a manifest plus per-shard checkpoints under a campaign
directory, executes shards through the retrying parallel fan-out, and
aggregates the checkpoints into a survey report with per-model
oscillation/convergence rates and Wilson confidence intervals.

Interrupt-safety is the design center: checkpoints are atomic,
write-once, and keyed by the spec digest, every task is a pure function
of the spec, and the report is a pure function of the checkpoints — so
``repro campaign resume`` after a SIGKILL reproduces the uninterrupted
report byte for byte.  See ``docs/api.md`` for the quickstart.
"""

from .manifest import CAMPAIGN_SCHEMA, CampaignPaths, build_manifest
from .report import aggregate_report, render_report
from .runner import Campaign, CampaignError
from .spec import MODES, CampaignSpec, spec_digest

__all__ = [
    "CAMPAIGN_SCHEMA",
    "Campaign",
    "CampaignError",
    "CampaignPaths",
    "CampaignSpec",
    "MODES",
    "aggregate_report",
    "build_manifest",
    "render_report",
    "spec_digest",
]
