"""The campaign coordinator daemon: lease brokering over HTTP.

``repro campaign serve <dir>`` turns a campaign directory into a
network service so worker hosts without shared storage can cooperate.
The coordinator owns the authoritative on-disk :class:`WorkQueue`
*inside the campaign directory* — workers joining by path and workers
joining by URL therefore drain one queue, and killing the coordinator
loses nothing (the queue and every checkpoint are durable; restart and
the campaign continues).

Transport reuses the ``serve/`` plumbing: the same
:class:`~http.server.ThreadingHTTPServer` shape as
:class:`repro.serve.server.ReproServer` (HTTP/1.1 keep-alive, Nagle
off, drain-on-SIGTERM), the same v2 protocol envelopes, and the same
``/metrics`` Prometheus exposition the dashboard scrapes.  Endpoints:

* ``GET  /healthz`` — liveness + completion flag.
* ``GET  /v2/campaign`` — bootstrap: the spec, its digest, and this
  coordinator's trace ID (one trace spans the whole campaign).
* ``POST /v2/campaign/claim`` — ``{"v": 2, "worker": id}`` → a leased
  shard (with a child ``traceparent`` so the worker's spans attach to
  the campaign trace), or ``shard: null`` when nothing is claimable.
* ``POST /v2/campaign/heartbeat`` — lease renewal.
* ``POST /v2/campaign/complete`` — the worker's records; the
  coordinator validates and writes the shard checkpoint through the
  write-once store, and writes ``report.json`` when the last shard
  lands.
* ``POST /v2/campaign/fail`` — a worker's compute failure on a leased
  shard.  The queue re-opens the shard, or quarantines it once enough
  distinct workers have failed it; a campaign whose only remaining
  shards are quarantined completes with an explicitly *partial* report.

**Crash recovery.**  The coordinator holds no campaign state that is
not on disk: on boot it re-attaches to the durable queue, completes
queue rows whose checkpoints already landed, and re-opens queue rows
marked done whose checkpoint is missing or invalid.  SIGKILLing a
coordinator mid-campaign and restarting it therefore resumes brokering
exactly where the disk says the campaign is — and the final report is
byte-identical to an uninterrupted run.
* ``GET  /statz`` — campaign status + live queue snapshot.
* ``GET  /metrics`` — lease/queue counters and gauges.

Campaign endpoints are v2-only (:func:`repro.serve.protocol.check_version`
with ``minimum=2``): they postdate the envelope, so a version-less body
here is a confused client, not a legacy one.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs import active as _telemetry
from ..obs import metrics as _metrics
from ..obs import tracing
from ..serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    check_version,
    envelope,
)
from .queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_QUARANTINE_AFTER,
    Lease,
    WorkQueue,
    open_queue,
)
from .runner import Campaign, CampaignError

__all__ = ["CampaignCoordinator", "DEFAULT_PORT", "open_coordinator"]

#: Default coordinator port (verdict serving defaults to 8642 next door).
DEFAULT_PORT = 8643

MAX_BODY_BYTES = 64 * 1024 * 1024  # a completed shard's records


class _CoordinatorHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-campaign"
    sys_version = ""
    disable_nagle_algorithm = True

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def coordinator(self) -> "CampaignCoordinator":
        return self.server.coordinator  # type: ignore[attr-defined]

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        raw = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _send_error(self, status: int, message: str, code: "str | None" = None) -> None:
        payload = {"error": message, "status": status}
        if code is not None:
            payload["code"] = code
        self._send_json(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        coord = self.coordinator
        if self.path == "/healthz":
            self._send_json(
                200,
                {"status": "ok", "v": PROTOCOL_VERSION, "complete": coord.complete},
            )
        elif self.path == "/v2/campaign":
            self._send_json(200, envelope(coord.describe()))
        elif self.path == "/statz":
            self._send_json(200, envelope(coord.statz()))
        elif self.path == "/metrics":
            raw = coord.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)
        else:
            self._send_error(404, f"no such endpoint: {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        routes = {
            "/v2/campaign/claim": self.coordinator.handle_claim,
            "/v2/campaign/heartbeat": self.coordinator.handle_heartbeat,
            "/v2/campaign/complete": self.coordinator.handle_complete,
            "/v2/campaign/fail": self.coordinator.handle_fail,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._send_error(404, f"no such endpoint: {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._send_error(411, "Content-Length required")
            return
        if length > MAX_BODY_BYTES:
            self._send_error(413, f"request body over {MAX_BODY_BYTES} bytes")
            return
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
            if not isinstance(body, dict):
                raise ProtocolError("request body must be a JSON object")
            check_version(body, minimum=2)
            response = handler(body)
        except ProtocolError as exc:
            self._send_error(400, str(exc), code=exc.code)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_error(400, f"request body is not valid JSON: {exc}")
        except CampaignError as exc:
            self._send_error(409, str(exc))
        except Exception as exc:  # fault injection, bugs: still answer
            self._send_error(500, f"internal error: {exc!r}")
        else:
            self._send_json(200, envelope(response))


class CampaignCoordinator:
    """One campaign directory served as a lease-brokering daemon."""

    def __init__(
        self,
        campaign: Campaign,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        backend: str = "sqlite",
        lease_ttl: float = DEFAULT_LEASE_TTL,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
    ) -> None:
        self.campaign = campaign
        self.backend = backend
        self.queue: WorkQueue = open_queue(
            campaign.paths.directory,
            campaign.digest,
            backend=backend,
            lease_ttl=lease_ttl,
            quarantine_after=quarantine_after,
        )
        done = campaign.completed_shards()
        self.queue.enroll(range(campaign.spec.n_shards), done=done)
        # Boot reconciliation, the other direction: queue rows marked
        # done whose checkpoint is missing or invalid on disk (a crash
        # between checkpoint loss and queue state, or manual cleanup)
        # go back to open so the work actually happens again.
        stale = sorted(set(self.queue.done_shards()) - set(done))
        if stale:
            self.queue.reset(stale)
            _telemetry().count("campaign.queue.reconciled", len(stale))
        # One trace for the whole campaign: worker shard spans become
        # children of this root, so `repro trace show` reconstructs the
        # cross-host shard tree from any participant's telemetry.
        self.trace = tracing.current() or tracing.TraceContext.root()
        self._lock = threading.Lock()
        self._report_written = campaign.paths.report_path.is_file()
        self.httpd = ThreadingHTTPServer((host, port), _CoordinatorHandler)
        self.httpd.daemon_threads = False
        self.httpd.coordinator = self  # type: ignore[attr-defined]
        self._thread: "threading.Thread | None" = None
        self._complete_event = threading.Event()
        if not self._unresolved_shards():
            self._complete_event.set()

    # -- addressing ------------------------------------------------------
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def complete(self) -> bool:
        return self._complete_event.is_set()

    # -- endpoint bodies -------------------------------------------------
    def _unresolved_shards(self) -> list:
        """Pending shards that could still resolve: not checkpointed and
        not quarantined.  Empty means the campaign is as done as it can
        get — fully, or partially with quarantined poison."""
        quarantined = set(self.queue.quarantined())
        return [
            shard
            for shard in self.campaign.pending_shards()
            if shard not in quarantined
        ]

    def describe(self) -> dict:
        """The ``GET /v2/campaign`` bootstrap payload."""
        return {
            "spec": self.campaign.spec.as_dict(),
            "digest": self.campaign.digest,
            "backend": self.queue.backend,
            "lease_ttl": self.queue.lease_ttl,
            "quarantine_after": self.queue.quarantine_after,
            "trace": self.trace.trace_id,
            "complete": self.complete,
        }

    def handle_claim(self, body: dict) -> dict:
        worker = body.get("worker")
        if not isinstance(worker, str) or not worker:
            raise ProtocolError("'worker' must be a non-empty string")
        lease = self.queue.claim(worker)
        if lease is None:
            self._maybe_finish()
            return {"shard": None, "complete": self.complete}
        # Already-checkpointed shards (e.g. enrolled before a restart
        # with a stale queue) complete instantly without recompute.
        if self.campaign._shard_records(lease.shard) is not None:
            self.queue.complete(lease)
            self._maybe_finish()
            return {"shard": None, "complete": self.complete}
        return {
            "shard": lease.shard,
            "token": lease.token,
            "expires_s": round(lease.remaining(), 3),
            "traceparent": self.trace.child().to_traceparent(),
            "complete": False,
        }

    def handle_heartbeat(self, body: dict) -> dict:
        lease = self._lease_from(body)
        renewed = self.queue.heartbeat(lease)
        if renewed is None:
            return {"ok": False}
        return {"ok": True, "expires_s": round(renewed.remaining(), 3)}

    def handle_complete(self, body: dict) -> dict:
        lease = self._lease_from(body)
        records = body.get("records")
        if not isinstance(records, list):
            raise ProtocolError("'records' must be a list")
        # Validate + write through the write-once store first; only a
        # durable checkpoint marks the queue row done.
        with self._lock:
            if self.campaign._shard_records(lease.shard) is None:
                self.campaign.write_shard_checkpoint(lease.shard, records)
        owned = self.queue.complete(lease)
        self._maybe_finish()
        return {"ok": True, "owned": owned, "complete": self.complete}

    def handle_fail(self, body: dict) -> dict:
        lease = self._lease_from(body)
        outcome = self.queue.fail(lease)
        _telemetry().event(
            "campaign.shard.fail",
            shard=lease.shard,
            worker=lease.worker,
            outcome=outcome,
            error=str(body.get("error", ""))[:500],
        )
        if outcome == "quarantined":
            self._maybe_finish()
        return {"ok": outcome != "lost", "outcome": outcome, "complete": self.complete}

    def _lease_from(self, body: dict) -> Lease:
        shard = body.get("shard")
        token = body.get("token")
        if not isinstance(shard, int) or isinstance(shard, bool):
            raise ProtocolError("'shard' must be an integer")
        if not isinstance(token, str) or not token:
            raise ProtocolError("'token' must be a non-empty string")
        return Lease(
            shard=shard, worker=str(body.get("worker", "?")), token=token, expires=0.0
        )

    def _maybe_finish(self) -> None:
        with self._lock:
            if self._report_written:
                self._complete_event.set()
                return
            if self._unresolved_shards():
                return
            quarantined = self.queue.quarantined()
            self.campaign.write_report(quarantined=quarantined)
            self._report_written = True
            self._complete_event.set()
            _telemetry().count("campaign.report.written")
            if quarantined:
                _telemetry().count("campaign.report.partial")

    def statz(self) -> dict:
        return {
            "campaign": self.campaign.status(),
            "queue": self.queue.snapshot(),
            "trace": self.trace.trace_id,
            "complete": self.complete,
        }

    def metrics_text(self) -> str:
        """Lease counters + queue gauges in Prometheus text form."""
        tel = _telemetry()
        counters = dict(getattr(tel, "counters", None) or {})
        gauges = dict(getattr(tel, "gauges", None) or {})
        snapshot = self.queue.snapshot()  # refreshes campaign.queue.* gauges
        gauges["campaign.queue.depth"] = snapshot["open"]
        gauges["campaign.queue.leased"] = snapshot["leased"]
        gauges["campaign.queue.done"] = snapshot["done"]
        gauges["campaign.shards_quarantined"] = snapshot.get("quarantined", 0)
        gauges["campaign.complete"] = int(self.complete)
        registry = getattr(tel, "metrics", None) or _metrics.registry()
        return _metrics.render_prometheus(
            metrics=registry, counters=counters, gauges=gauges
        )

    # -- lifecycle (mirrors ReproServer) ---------------------------------
    def start_background(self) -> None:
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, kwargs={"poll_interval": 0.05}
        )
        self._thread.start()

    def close(self) -> None:
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.httpd.server_close()
        self.queue.close()

    def __enter__(self) -> "CampaignCoordinator":
        self.start_background()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def wait_complete(self, timeout: "float | None" = None) -> bool:
        return self._complete_event.wait(timeout)

    def serve_forever(
        self, install_signals: bool = True, until_complete: bool = False
    ) -> None:
        """Run until SIGTERM/SIGINT — or, with ``until_complete``, until
        the campaign report lands (the CI smoke mode)."""
        stop = threading.Thread(target=self.httpd.shutdown)

        def _on_signal(signum, frame):
            threading.Thread(target=self.httpd.shutdown).start()

        if install_signals:
            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        watcher = None
        if until_complete:

            def _watch():
                self._complete_event.wait()
                stop.start()

            watcher = threading.Thread(target=_watch, daemon=True)
            watcher.start()
        try:
            self.httpd.serve_forever(poll_interval=0.05)
        finally:
            self.httpd.server_close()
            self.queue.close()


def open_coordinator(
    directory,
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    backend: str = "sqlite",
    lease_ttl: float = DEFAULT_LEASE_TTL,
    quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
) -> CampaignCoordinator:
    """A coordinator over the existing campaign at ``directory``."""
    return CampaignCoordinator(
        Campaign.open(directory),
        host=host,
        port=port,
        backend=backend,
        lease_ttl=lease_ttl,
        quarantine_after=quarantine_after,
    )
