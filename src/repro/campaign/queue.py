"""Durable pull-based shard queue: the multi-host coordination layer.

A campaign's shards are independent, deterministic units of work whose
checkpoints are atomic and write-once — which means correctness never
depends on mutual exclusion.  Two workers that somehow run the same
shard write byte-identical checkpoints; the second ``os.replace`` is a
no-op in content.  The queue below therefore only has to provide
*liveness* (every shard eventually runs) and *efficiency* (shards
rarely run twice), which is exactly what a lease protocol gives:

* ``claim`` atomically moves the lowest open shard to ``leased`` and
  hands back a :class:`Lease` (shard id + an unguessable token + an
  expiry).
* ``heartbeat`` extends a live lease; a worker that cannot renew in
  time — it was SIGKILLed, its host died, its clock stalled — simply
  stops being the owner.
* ``reclaim`` moves expired leases back to ``open`` so surviving
  workers pick the orphaned shards up.  Every ``claim`` reclaims
  first, so a dead worker's shards are recovered by the next pull with
  no coordinator tick required.
* ``complete`` marks a shard ``done`` *after* its checkpoint landed in
  the write-once store, so the queue's ``done`` state never runs ahead
  of durable results.
* ``fail`` records a worker's compute failure against the shard
  (token-guarded like every other transition).  A shard that keeps
  failing across ``quarantine_after`` *distinct* workers — or across
  three times that many attempts total, so a lone worker cannot
  livelock on it — moves to ``quarantined``: never re-leased, reported
  explicitly, repairable by ``repro doctor``/``reset``.

Two interchangeable backends behind the same :class:`WorkQueue`
surface (following the PyExperimenter experiment-table pattern: any
number of hosts pull open rows from one durable table):

* :class:`SQLiteWorkQueue` — a stdlib :mod:`sqlite3` table in WAL mode
  with ``BEGIN IMMEDIATE`` claims; the default, correct for any number
  of processes on one host or a shared disk with sane locking.
* :class:`FileLeaseWorkQueue` — ``O_EXCL`` lease files plus done
  markers, for shared filesystems where SQLite locking is untrustworthy
  (NFS).  Reclamation renames a stale lease to a tombstone, which makes
  "two reclaimers race" safe: exactly one rename wins.  The one
  unavoidable file-lease race — a reclaimer stealing a lease refreshed
  between its staleness check and its rename — degrades to duplicated
  work, never to corruption, because the loser's next heartbeat returns
  ``False`` and checkpoints are write-once-identical anyway.

Lease traffic is visible as ``campaign.lease.*`` telemetry counters and
``campaign.queue.*`` gauges (scraped by the coordinator's ``/metrics``
and shown by ``repro top``), and the ``queue.claim`` / ``queue.release``
fault sites expose the protocol to the chaos suite.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..faults import fault_point
from ..obs import active as _telemetry

__all__ = [
    "BACKENDS",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_QUARANTINE_AFTER",
    "FileLeaseWorkQueue",
    "Lease",
    "QueueError",
    "SQLiteWorkQueue",
    "WorkQueue",
    "default_worker_id",
    "open_queue",
]

#: The pluggable coordination backends, in preference order.
BACKENDS = ("sqlite", "file")

#: Seconds a lease stays valid without a heartbeat.  Workers renew at
#: a third of this, so one missed renewal never loses a lease; losing
#: three in a row (or dying) does.
DEFAULT_LEASE_TTL = 30.0

#: Distinct workers that must fail a shard before it is quarantined.
#: (A single worker quarantines it alone after three times as many
#: failures — a poison shard must not livelock a one-worker campaign.)
DEFAULT_QUARANTINE_AFTER = 3


class QueueError(RuntimeError):
    """A queue directory is foreign, corrupt, or unusable."""


def default_worker_id() -> str:
    """This process's worker identity, stamped into leases and records."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass(frozen=True)
class Lease:
    """One claimed shard: who holds it, until when, under which token.

    The token is the lease's identity — heartbeat and complete are
    refused for a token the queue no longer recognizes, which is how a
    worker whose lease was reclaimed finds out it lost ownership.
    """

    shard: int
    worker: str
    token: str
    expires: float

    def remaining(self, now: "float | None" = None) -> float:
        return self.expires - (time.time() if now is None else now)


class WorkQueue:
    """The coordination surface both backends implement.

    All methods are safe to call from any number of threads, processes,
    and hosts concurrently; the invariant they jointly maintain is that
    at most one *unexpired* lease exists per shard, and ``done`` shards
    are never claimable again.
    """

    backend = "abstract"

    def __init__(
        self,
        digest: str,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
    ) -> None:
        if lease_ttl <= 0:
            raise QueueError("lease_ttl must be positive")
        if quarantine_after < 1:
            raise QueueError("quarantine_after must be at least 1")
        self.digest = digest
        self.lease_ttl = lease_ttl
        self.quarantine_after = quarantine_after

    # -- protocol -------------------------------------------------------
    def enroll(self, shards, done=()) -> None:
        """Idempotently register ``shards`` (marking ``done`` complete)."""
        raise NotImplementedError

    def claim(self, worker: str) -> "Lease | None":
        """Lease the lowest reclaimable-or-open shard, or ``None``."""
        raise NotImplementedError

    def heartbeat(self, lease: Lease) -> "Lease | None":
        """Extend ``lease``; the renewed lease, or ``None`` if lost."""
        raise NotImplementedError

    def complete(self, lease: Lease) -> bool:
        """Mark the leased shard done; ``False`` if the lease was lost
        (the shard's checkpoint still counts — completion is durable in
        the store, the queue merely mirrors it)."""
        raise NotImplementedError

    def release(self, lease: Lease) -> None:
        """Return a leased shard to ``open`` (worker giving up cleanly)."""
        raise NotImplementedError

    def reclaim(self) -> list:
        """Move every expired lease back to ``open``; the shard ids."""
        raise NotImplementedError

    def fail(self, lease: Lease) -> str:
        """Record a compute failure against the leased shard.

        Token-guarded.  Returns the shard's resulting disposition:
        ``"open"`` (re-leasable), ``"quarantined"`` (failure budget
        exhausted — never re-leased), or ``"lost"`` (the lease was
        already gone; nothing recorded).
        """
        raise NotImplementedError

    def quarantined(self) -> list:
        """Shard ids currently quarantined, sorted."""
        raise NotImplementedError

    def done_shards(self) -> list:
        """Shard ids the queue believes are complete, sorted."""
        raise NotImplementedError

    def reset(self, shards) -> list:
        """Force ``shards`` back to ``open`` (from ``done`` or
        ``quarantined``) — the coordinator's boot-reconciliation and
        ``repro doctor --repair`` path.  Returns the ids actually
        reset."""
        raise NotImplementedError

    def snapshot(self) -> dict:
        """Queue state: counts per state plus the live leases."""
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "WorkQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shared bookkeeping ---------------------------------------------
    def _record_claim(self, lease: Lease) -> None:
        _telemetry().count("campaign.lease.claimed")

    def _record_reclaim(self, shards) -> None:
        if shards:
            _telemetry().count("campaign.lease.reclaimed", len(shards))

    def _publish_gauges(self, snapshot: dict) -> None:
        tel = _telemetry()
        tel.gauge("campaign.queue.depth", snapshot["open"])
        tel.gauge("campaign.queue.leased", snapshot["leased"])
        tel.gauge("campaign.queue.done", snapshot["done"])
        tel.gauge("campaign.shards_quarantined", snapshot.get("quarantined", 0))

    def _should_quarantine(self, workers) -> bool:
        """The failure budget: ``quarantine_after`` distinct workers, or
        three times that many attempts from however few."""
        return (
            len(set(workers)) >= self.quarantine_after
            or len(workers) >= 3 * self.quarantine_after
        )

    def _record_fail(self, lease: Lease, outcome: str) -> None:
        tel = _telemetry()
        tel.count("campaign.shard.failed")
        if outcome == "quarantined":
            tel.count("campaign.shard.quarantined")


class SQLiteWorkQueue(WorkQueue):
    """The default backend: one SQLite table of leasable shard rows."""

    backend = "sqlite"

    def __init__(
        self,
        path,
        digest: str,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
    ) -> None:
        super().__init__(digest, lease_ttl, quarantine_after)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False,
            isolation_level=None,
        )
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS shards ("
                " shard INTEGER PRIMARY KEY,"
                " state TEXT NOT NULL DEFAULT 'open',"
                " worker TEXT,"
                " token TEXT,"
                " expires REAL,"
                " claims INTEGER NOT NULL DEFAULT 0,"
                " failures TEXT NOT NULL DEFAULT '[]')"
            )
            # Migration for queues created before the failure counter:
            # ALTER is idempotent-by-check against the live column list.
            columns = {
                row[1]
                for row in self._conn.execute("PRAGMA table_info(shards)")
            }
            if "failures" not in columns:
                self._conn.execute(
                    "ALTER TABLE shards ADD COLUMN failures"
                    " TEXT NOT NULL DEFAULT '[]'"
                )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='digest'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT OR IGNORE INTO meta VALUES ('digest', ?)",
                    (self.digest,),
                )
                row = self._conn.execute(
                    "SELECT value FROM meta WHERE key='digest'"
                ).fetchone()
            if row[0] != self.digest:
                self._conn.close()
                raise QueueError(
                    f"{self.path} coordinates campaign {row[0][:12]}, "
                    f"refusing to serve {self.digest[:12]}"
                )

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # Explicit IMMEDIATE transactions: every read-modify-write below is
    # atomic against other processes (SQLite serializes writers) and
    # other threads (the lock serializes this connection).
    def _begin(self):
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    def enroll(self, shards, done=()) -> None:
        done = set(done)
        with self._lock:
            conn = self._begin()
            try:
                conn.executemany(
                    "INSERT OR IGNORE INTO shards (shard) VALUES (?)",
                    [(int(shard),) for shard in shards],
                )
                if done:
                    conn.executemany(
                        "UPDATE shards SET state='done', worker=NULL,"
                        " token=NULL, expires=NULL WHERE shard=?",
                        [(int(shard),) for shard in done],
                    )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

    def _reclaim_locked(self, now: float) -> list:
        rows = self._conn.execute(
            "SELECT shard FROM shards WHERE state='leased' AND expires < ?",
            (now,),
        ).fetchall()
        if rows:
            self._conn.execute(
                "UPDATE shards SET state='open', worker=NULL, token=NULL,"
                " expires=NULL WHERE state='leased' AND expires < ?",
                (now,),
            )
        return [row[0] for row in rows]

    def claim(self, worker: str) -> "Lease | None":
        fault_point("queue.claim", worker)
        now = time.time()
        with self._lock:
            conn = self._begin()
            try:
                reclaimed = self._reclaim_locked(now)
                row = conn.execute(
                    "SELECT shard FROM shards WHERE state='open'"
                    " ORDER BY shard LIMIT 1"
                ).fetchone()
                if row is None:
                    conn.execute("COMMIT")
                    self._record_reclaim(reclaimed)
                    return None
                token = os.urandom(8).hex()
                expires = now + self.lease_ttl
                conn.execute(
                    "UPDATE shards SET state='leased', worker=?, token=?,"
                    " expires=?, claims=claims+1 WHERE shard=?",
                    (worker, token, expires, row[0]),
                )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        self._record_reclaim(reclaimed)
        lease = Lease(shard=row[0], worker=worker, token=token, expires=expires)
        self._record_claim(lease)
        return lease

    def heartbeat(self, lease: Lease) -> "Lease | None":
        expires = time.time() + self.lease_ttl
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE shards SET expires=? WHERE shard=? AND token=?"
                " AND state='leased'",
                (expires, lease.shard, lease.token),
            )
        if cursor.rowcount != 1:
            _telemetry().count("campaign.lease.lost")
            return None
        _telemetry().count("campaign.lease.heartbeat")
        return Lease(lease.shard, lease.worker, lease.token, expires)

    def complete(self, lease: Lease) -> bool:
        state = None
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE shards SET state='done', worker=NULL, token=NULL,"
                " expires=NULL WHERE shard=? AND token=? AND state='leased'",
                (lease.shard, lease.token),
            )
            if cursor.rowcount != 1:
                row = self._conn.execute(
                    "SELECT state FROM shards WHERE shard=?", (lease.shard,)
                ).fetchone()
                state = row[0] if row else None
        if cursor.rowcount != 1:
            # A completion whose shard is already done is a *duplicate*
            # (someone else finished the same deterministic work — the
            # checkpoint bytes match); anything else is a lost lease.
            if state == "done":
                _telemetry().count("campaign.complete.duplicate")
            else:
                _telemetry().count("campaign.lease.lost")
            return False
        _telemetry().count("campaign.lease.completed")
        return True

    def fail(self, lease: Lease) -> str:
        with self._lock:
            conn = self._begin()
            try:
                row = conn.execute(
                    "SELECT failures FROM shards WHERE shard=? AND token=?"
                    " AND state='leased'",
                    (lease.shard, lease.token),
                ).fetchone()
                if row is None:
                    conn.execute("COMMIT")
                    _telemetry().count("campaign.lease.lost")
                    return "lost"
                try:
                    workers = json.loads(row[0] or "[]")
                except json.JSONDecodeError:
                    workers = []
                workers.append(lease.worker)
                state = (
                    "quarantined" if self._should_quarantine(workers) else "open"
                )
                conn.execute(
                    "UPDATE shards SET state=?, worker=NULL, token=NULL,"
                    " expires=NULL, failures=? WHERE shard=? AND token=?",
                    (state, json.dumps(workers), lease.shard, lease.token),
                )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        self._record_fail(lease, state)
        return state

    def quarantined(self) -> list:
        with self._lock:
            rows = self._conn.execute(
                "SELECT shard FROM shards WHERE state='quarantined'"
                " ORDER BY shard"
            ).fetchall()
        return [row[0] for row in rows]

    def done_shards(self) -> list:
        with self._lock:
            rows = self._conn.execute(
                "SELECT shard FROM shards WHERE state='done' ORDER BY shard"
            ).fetchall()
        return [row[0] for row in rows]

    def reset(self, shards) -> list:
        shards = [int(shard) for shard in shards]
        reset = []
        with self._lock:
            conn = self._begin()
            try:
                for shard in shards:
                    cursor = conn.execute(
                        "UPDATE shards SET state='open', worker=NULL,"
                        " token=NULL, expires=NULL, failures='[]'"
                        " WHERE shard=? AND state IN ('done', 'quarantined')",
                        (shard,),
                    )
                    if cursor.rowcount == 1:
                        reset.append(shard)
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        if reset:
            _telemetry().count("campaign.queue.reset", len(reset))
        return reset

    def release(self, lease: Lease) -> None:
        fault_point("queue.release", lease.shard)
        with self._lock:
            self._conn.execute(
                "UPDATE shards SET state='open', worker=NULL, token=NULL,"
                " expires=NULL WHERE shard=? AND token=? AND state='leased'",
                (lease.shard, lease.token),
            )
        _telemetry().count("campaign.lease.released")

    def reclaim(self) -> list:
        now = time.time()
        with self._lock:
            conn = self._begin()
            try:
                reclaimed = self._reclaim_locked(now)
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        self._record_reclaim(reclaimed)
        return reclaimed

    def snapshot(self) -> dict:
        now = time.time()
        with self._lock:
            counts = dict(
                self._conn.execute(
                    "SELECT state, COUNT(*) FROM shards GROUP BY state"
                ).fetchall()
            )
            leases = self._conn.execute(
                "SELECT shard, worker, expires FROM shards"
                " WHERE state='leased' ORDER BY shard"
            ).fetchall()
            quarantined = [
                row[0]
                for row in self._conn.execute(
                    "SELECT shard FROM shards WHERE state='quarantined'"
                    " ORDER BY shard"
                ).fetchall()
            ]
        snapshot = {
            "backend": self.backend,
            "open": counts.get("open", 0),
            "leased": counts.get("leased", 0),
            "done": counts.get("done", 0),
            "quarantined": counts.get("quarantined", 0),
            "quarantined_shards": quarantined,
            "leases": [
                {
                    "shard": shard,
                    "worker": worker,
                    "expires_in": round(expires - now, 3),
                }
                for shard, worker, expires in leases
            ],
        }
        self._publish_gauges(snapshot)
        return snapshot


class FileLeaseWorkQueue(WorkQueue):
    """Lease files + done markers: the shared-filesystem fallback.

    Layout under ``directory``::

        digest.json             campaign identity (write-once)
        shards.json             the enrolled shard universe (write-once)
        lease-0007.json         live lease: {worker, token, expires}
        done-0007.marker        completion marker (empty, write-once)
        failed-0007.json        failure history: {workers: [...]}
        quarantined-0007.marker quarantine marker (empty, write-once)

    ``open`` is the *absence* of marker and lease files — there is no
    mutable row, so the only atomic primitives needed are ``O_EXCL``
    create and ``rename``, which even NFS gets right.  The failure
    history is the one read-modify-write file; two workers failing the
    same shard simultaneously can lose one increment, which costs at
    most one extra retry before quarantine — never correctness.
    """

    backend = "file"

    def __init__(
        self,
        directory,
        digest: str,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
    ) -> None:
        super().__init__(digest, lease_ttl, quarantine_after)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._shards: "list[int]" = []
        digest_path = self.directory / "digest.json"
        try:
            with open(digest_path, "x", encoding="utf-8") as handle:
                json.dump({"digest": digest}, handle)
        except FileExistsError:
            found = json.loads(digest_path.read_text()).get("digest")
            if found != digest:
                raise QueueError(
                    f"{self.directory} coordinates campaign "
                    f"{str(found)[:12]}, refusing to serve {digest[:12]}"
                ) from None
        shards_path = self.directory / "shards.json"
        if shards_path.is_file():
            self._shards = sorted(json.loads(shards_path.read_text()))

    def _lease_path(self, shard: int) -> Path:
        return self.directory / f"lease-{shard:04d}.json"

    def _done_path(self, shard: int) -> Path:
        return self.directory / f"done-{shard:04d}.marker"

    def _failed_path(self, shard: int) -> Path:
        return self.directory / f"failed-{shard:04d}.json"

    def _quarantined_path(self, shard: int) -> Path:
        return self.directory / f"quarantined-{shard:04d}.marker"

    def enroll(self, shards, done=()) -> None:
        universe = sorted(set(self._shards) | {int(s) for s in shards})
        if universe != self._shards:
            self._shards = universe
            shards_path = self.directory / "shards.json"
            try:
                with open(shards_path, "x", encoding="utf-8") as handle:
                    json.dump(universe, handle)
            except FileExistsError:
                merged = sorted(
                    set(json.loads(shards_path.read_text())) | set(universe)
                )
                self._shards = merged
        for shard in done:
            self._mark_done(int(shard))

    def _mark_done(self, shard: int) -> bool:
        try:
            with open(self._done_path(shard), "x", encoding="utf-8"):
                pass
            return True
        except FileExistsError:
            return False

    def _read_lease(self, shard: int) -> "dict | None":
        try:
            return json.loads(self._lease_path(shard).read_text())
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            # A torn or vanished lease reads as claimable; O_EXCL on
            # the still-present file arbitrates the actual claim.
            return None

    def _try_reclaim(self, shard: int, lease: dict) -> bool:
        """Tombstone-rename a stale lease; ``True`` if this caller won."""
        tombstone = self.directory / (
            f".reclaim-{shard:04d}-{lease.get('token', 'torn')}.tmp"
        )
        try:
            os.rename(self._lease_path(shard), tombstone)
        except OSError:
            return False  # another reclaimer (or the owner) got there first
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        return True

    def _try_claim(self, shard: int, worker: str, now: float) -> "Lease | None":
        token = os.urandom(8).hex()
        expires = now + self.lease_ttl
        payload = json.dumps(
            {"worker": worker, "token": token, "expires": expires}
        )
        try:
            with open(self._lease_path(shard), "x", encoding="utf-8") as handle:
                handle.write(payload)
        except FileExistsError:
            return None
        return Lease(shard=shard, worker=worker, token=token, expires=expires)

    def claim(self, worker: str) -> "Lease | None":
        fault_point("queue.claim", worker)
        now = time.time()
        reclaimed = []
        for shard in self._shards:
            if self._done_path(shard).is_file():
                continue
            if self._quarantined_path(shard).is_file():
                continue
            lease = self._try_claim(shard, worker, now)
            if lease is None:
                held = self._read_lease(shard)
                if held is not None and held.get("expires", 0) >= now:
                    continue  # live lease (or fresh enough to respect)
                if held is None or not self._try_reclaim(shard, held):
                    continue
                reclaimed.append(shard)
                lease = self._try_claim(shard, worker, now)
                if lease is None:
                    continue  # lost the post-reclaim race; move on
            if self._done_path(shard).is_file():
                # The shard completed between our done-check and the
                # O_EXCL claim (complete() creates the marker before
                # unlinking its lease, so the marker is authoritative).
                try:
                    os.unlink(self._lease_path(shard))
                except OSError:
                    pass
                continue
            self._record_reclaim(reclaimed)
            self._record_claim(lease)
            return lease
        self._record_reclaim(reclaimed)
        return None

    def heartbeat(self, lease: Lease) -> "Lease | None":
        held = self._read_lease(lease.shard)
        if held is None or held.get("token") != lease.token:
            _telemetry().count("campaign.lease.lost")
            return None
        expires = time.time() + self.lease_ttl
        payload = json.dumps(
            {"worker": lease.worker, "token": lease.token, "expires": expires}
        )
        # Atomic replace: a reader always sees a whole lease, and a
        # concurrent reclaimer's rename either beats this replace (we
        # report lost on the next renewal) or loses cleanly.
        from ..fsutil import atomic_write_text

        atomic_write_text(self._lease_path(lease.shard), payload)
        _telemetry().count("campaign.lease.heartbeat")
        return Lease(lease.shard, lease.worker, lease.token, expires)

    def complete(self, lease: Lease) -> bool:
        held = self._read_lease(lease.shard)
        owned = held is not None and held.get("token") == lease.token
        first = self._mark_done(lease.shard)
        if not first:
            _telemetry().count("campaign.complete.duplicate")
        if owned:
            try:
                os.unlink(self._lease_path(lease.shard))
            except OSError:
                pass
            _telemetry().count("campaign.lease.completed")
            return True
        _telemetry().count("campaign.lease.lost")
        return False

    def fail(self, lease: Lease) -> str:
        held = self._read_lease(lease.shard)
        if held is None or held.get("token") != lease.token:
            _telemetry().count("campaign.lease.lost")
            return "lost"
        failed_path = self._failed_path(lease.shard)
        try:
            workers = json.loads(failed_path.read_text()).get("workers", [])
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            workers = []
        workers.append(lease.worker)
        from ..fsutil import atomic_write_text

        atomic_write_text(failed_path, json.dumps({"workers": workers}))
        outcome = "open"
        if self._should_quarantine(workers):
            outcome = "quarantined"
            try:
                with open(self._quarantined_path(lease.shard), "x"):
                    pass
            except FileExistsError:
                pass
        try:
            os.unlink(self._lease_path(lease.shard))
        except OSError:
            pass
        self._record_fail(lease, outcome)
        return outcome

    def quarantined(self) -> list:
        return sorted(
            shard
            for shard in self._shards
            if self._quarantined_path(shard).is_file()
        )

    def done_shards(self) -> list:
        return sorted(
            shard for shard in self._shards if self._done_path(shard).is_file()
        )

    def reset(self, shards) -> list:
        reset = []
        for shard in shards:
            shard = int(shard)
            hit = False
            for path in (
                self._done_path(shard),
                self._quarantined_path(shard),
                self._failed_path(shard),
            ):
                try:
                    os.unlink(path)
                    hit = True
                except OSError:
                    pass
            if hit:
                reset.append(shard)
        if reset:
            _telemetry().count("campaign.queue.reset", len(reset))
        return reset

    def release(self, lease: Lease) -> None:
        fault_point("queue.release", lease.shard)
        held = self._read_lease(lease.shard)
        if held is not None and held.get("token") == lease.token:
            try:
                os.unlink(self._lease_path(lease.shard))
            except OSError:
                pass
        _telemetry().count("campaign.lease.released")

    def reclaim(self) -> list:
        now = time.time()
        reclaimed = []
        for shard in self._shards:
            if self._done_path(shard).is_file():
                continue
            if self._quarantined_path(shard).is_file():
                continue
            held = self._read_lease(shard)
            if held is None or held.get("expires", 0) >= now:
                continue
            if self._try_reclaim(shard, held):
                reclaimed.append(shard)
        self._record_reclaim(reclaimed)
        return reclaimed

    def snapshot(self) -> dict:
        now = time.time()
        leases = []
        done = 0
        quarantined = []
        for shard in self._shards:
            if self._done_path(shard).is_file():
                done += 1
                continue
            if self._quarantined_path(shard).is_file():
                quarantined.append(shard)
                continue
            held = self._read_lease(shard)
            if held is not None:
                leases.append(
                    {
                        "shard": shard,
                        "worker": held.get("worker"),
                        "expires_in": round(held.get("expires", 0) - now, 3),
                    }
                )
        snapshot = {
            "backend": self.backend,
            "open": len(self._shards) - done - len(leases) - len(quarantined),
            "leased": len(leases),
            "done": done,
            "quarantined": len(quarantined),
            "quarantined_shards": quarantined,
            "leases": leases,
        }
        self._publish_gauges(snapshot)
        return snapshot


def open_queue(
    directory,
    digest: str,
    *,
    backend: str = "sqlite",
    lease_ttl: float = DEFAULT_LEASE_TTL,
    quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
) -> WorkQueue:
    """The campaign directory's work queue under ``directory``/queue.

    ``backend="sqlite"`` (default) and ``backend="file"`` coexist in
    the same campaign directory but do **not** share lease state — all
    cooperating workers of one campaign must agree on the backend (the
    coordinator advertises its choice to joiners).
    """
    if backend not in BACKENDS:
        raise QueueError(
            f"unknown queue backend {backend!r}; expected one of {BACKENDS}"
        )
    root = Path(directory)
    if backend == "sqlite":
        return SQLiteWorkQueue(
            root / "queue.sqlite", digest, lease_ttl, quarantine_after
        )
    return FileLeaseWorkQueue(root / "queue", digest, lease_ttl, quarantine_after)
