"""The resumable campaign runner.

:class:`Campaign` executes a :class:`~repro.campaign.spec.CampaignSpec`
shard by shard.  Each shard is one retrying fan-out
(:func:`repro.engine.parallel.parallel_map_retrying` — per-task retry
with exponential backoff over worker crashes and hangs) whose records
are checkpointed atomically on completion.  ``run`` after an
interruption — a SIGKILL of the CLI, a crashed worker, a power cut —
therefore picks up at the first shard without a valid checkpoint; the
shared verdict cache under the campaign directory turns the re-run of a
half-finished shard into mostly cache hits.

Determinism: every task is a pure function of ``(spec, seed, model)``,
checkpoints hold no wall-clock or scheduling metadata, and the report
aggregates records in manifest order — so an interrupted-then-resumed
campaign's ``report.json`` is byte-identical to an uninterrupted one.
Retries and cache hits are visible in the telemetry counters
(``parallel.task.retry``, ``cache.hit``/``cache.miss``) instead.
"""

from __future__ import annotations

import warnings

from ..engine.parallel import (
    ExplorationTask,
    SimulationTask,
    _explore_one,
    _simulate_batch,
    parallel_map_retrying,
)
from ..faults import fault_point
from ..fsutil import sweep_orphan_temps
from ..obs import active as _telemetry
from .manifest import (
    CAMPAIGN_SCHEMA,
    CampaignPaths,
    atomic_write_json,
    build_manifest,
    checkpoint_issue,
    read_json,
)
from .report import aggregate_report, render_report
from .spec import CampaignSpec, spec_digest

__all__ = ["Campaign", "CampaignError", "compute_shard_records", "shard_tasks"]

#: Keys of an ExplorationResult's dict form that enter a checkpoint.
#: ``cache`` (hit/miss) is deliberately absent: it depends on execution
#: history, and checkpoints must only hold history-independent facts.
_RESULT_KEYS = (
    "oscillates",
    "complete",
    "states_explored",
    "truncated_states",
    "states_pruned",
    "witness_period",
)


class CampaignError(RuntimeError):
    """A campaign directory is missing, foreign, or inconsistent."""


def shard_tasks(
    spec: CampaignSpec, shard: int, cache_dir: "str | None"
) -> "tuple[list, list]":
    """One shard's (tasks, per-task metadata), in checkpoint order.

    A pure function of the spec — usable without a campaign directory,
    which is what lets a ``campaign join`` worker on another host
    compute shards it received over the wire.
    """
    config = spec.run_config(cache_dir=cache_dir if spec.cache else None)
    tasks, meta = [], []
    for seed in spec.shard_seeds(shard):
        instance = spec.instance_for_seed(seed)
        for name in spec.model_names():
            if spec.mode == "explore":
                tasks.append(
                    ExplorationTask.from_config(
                        instance,
                        name,
                        config,
                        reliable_twin_first=spec.reliable_twin_first,
                    )
                )
            else:
                tasks.append(
                    SimulationTask.from_config(
                        instance,
                        name,
                        config,
                        seeds=tuple(range(spec.seeds_per_instance)),
                        drop_prob=spec.drop_prob,
                    )
                )
            meta.append((seed, instance.name, name))
    return tasks, meta


def compute_shard_records(
    spec: CampaignSpec,
    shard: int,
    *,
    workers: "int | None" = None,
    cache_dir: "str | None" = None,
) -> list:
    """Execute one shard of ``spec`` and return its checkpoint records.

    The records are a pure function of ``(spec, shard)`` — worker
    width, cache location, retries, and which host ran them leave no
    trace in the output, which is what makes multi-host reports
    byte-identical to single-host ones.
    """
    fault_point("campaign.shard", shard)
    tasks, meta = shard_tasks(spec, shard, cache_dir)
    function = _explore_one if spec.mode == "explore" else _simulate_batch
    with _telemetry().span("campaign.shard"):
        results = parallel_map_retrying(
            function,
            tasks,
            workers=workers,
            retries=spec.retries,
            backoff=spec.retry_backoff,
            task_timeout=spec.task_timeout,
        )
    records = []
    for (seed, instance_name, model_name), result in zip(meta, results):
        record = {"seed": seed, "instance": instance_name, "model": model_name}
        if spec.mode == "explore":
            data = result.as_dict()
            record["result"] = {key: data[key] for key in _RESULT_KEYS}
        else:
            record["outcomes"] = [list(outcome) for outcome in result]
        records.append(record)
    return records


class Campaign:
    """A campaign directory plus the spec that defines it."""

    def __init__(self, directory, spec: CampaignSpec) -> None:
        self.paths = CampaignPaths(directory)
        self.spec = spec
        self.digest = spec_digest(spec)
        # Stale atomic-write tempfiles from a crashed previous run
        # (age-gated, so a concurrently live writer is never raced).
        sweep_orphan_temps(self.paths.directory)

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, directory, spec: CampaignSpec) -> "Campaign":
        """Materialize (or re-open) the campaign directory for ``spec``.

        Idempotent: creating on top of an existing directory with the
        same spec digest simply re-opens it (that is how ``campaign
        run`` doubles as resume); a different digest raises
        :class:`CampaignError` rather than mixing two campaigns'
        results.
        """
        campaign = cls(directory, spec)
        existing = read_json(campaign.paths.spec_path)
        if existing is not None:
            found = spec_digest(CampaignSpec.from_dict(existing))
            if found != campaign.digest:
                raise CampaignError(
                    f"{campaign.paths.directory} already holds campaign "
                    f"{found[:12]}, refusing to overwrite with {campaign.digest[:12]}"
                )
            return campaign
        atomic_write_json(campaign.paths.spec_path, spec.as_dict())
        atomic_write_json(campaign.paths.manifest_path, build_manifest(spec))
        return campaign

    @classmethod
    def open(cls, directory) -> "Campaign":
        """Open an existing campaign directory (for resume/status/report)."""
        paths = CampaignPaths(directory)
        data = read_json(paths.spec_path)
        if data is None:
            raise CampaignError(f"no campaign at {paths.directory} (missing spec.json)")
        return cls(directory, CampaignSpec.from_dict(data))

    # -- shard bookkeeping ----------------------------------------------
    def _shard_records(self, shard: int) -> "list | None":
        """The checkpointed records of ``shard``, or ``None`` if pending."""
        payload = read_json(self.paths.shard_path(shard))
        expected = len(self.spec.shard_seeds(shard)) * len(self.spec.model_names())
        if checkpoint_issue(payload, self.digest, shard, expected) is not None:
            return None
        return payload["records"]

    def completed_shards(self) -> list:
        return [
            shard
            for shard in range(self.spec.n_shards)
            if self._shard_records(shard) is not None
        ]

    def pending_shards(self) -> list:
        return [
            shard
            for shard in range(self.spec.n_shards)
            if self._shard_records(shard) is None
        ]

    # -- execution -------------------------------------------------------
    def _shard_tasks(self, shard: int) -> "tuple[list, list]":
        """The shard's (tasks, per-task metadata), in checkpoint order."""
        cache_dir = str(self.paths.cache_dir) if self.spec.cache else None
        return shard_tasks(self.spec, shard, cache_dir)

    def write_shard_checkpoint(self, shard: int, records: list) -> None:
        """Atomically checkpoint ``records`` as the result of ``shard``.

        Records are validated against the spec (count) before the write,
        so a truncated or foreign record list never lands on disk —
        this is the write-back path for both local execution and
        records received from remote ``join`` workers.
        """
        expected = len(self.spec.shard_seeds(shard)) * len(self.spec.model_names())
        if not isinstance(records, list) or len(records) != expected:
            raise CampaignError(
                f"shard {shard} expects {expected} records, "
                f"got {len(records) if isinstance(records, list) else type(records).__name__}"
            )
        atomic_write_json(
            self.paths.shard_path(shard),
            {
                "schema": CAMPAIGN_SCHEMA,
                "digest": self.digest,
                "shard": shard,
                "records": records,
            },
        )
        tel = _telemetry()
        tel.count("campaign.shard.completed")
        tel.count("campaign.task.completed", len(records))
        tel.heartbeat("campaign", shard=shard, tasks=len(records))

    def run_shard(self, shard: int, workers: "int | None" = None) -> list:
        """Execute one shard and checkpoint it; returns its records."""
        cache_dir = str(self.paths.cache_dir) if self.spec.cache else None
        records = compute_shard_records(
            self.spec, shard, workers=workers, cache_dir=cache_dir
        )
        self.write_shard_checkpoint(shard, records)
        return records

    def run(
        self,
        workers: "int | None" = None,
        max_shards: "int | None" = None,
    ) -> list:
        """Execute pending shards (at most ``max_shards``); returns their ids.

        Finishing the last pending shard also (re)writes ``report.json``.
        Idempotent: on a complete campaign it executes nothing and
        refreshes the report, which is why ``run`` doubles as resume.
        """
        # Resolve the worker width exactly once: $REPRO_WORKERS changing
        # mid-campaign must not reshape later shards' fan-outs.
        workers = (
            self.spec.run_config(cache_dir=None)
            .replace(workers=workers)
            .resolved_workers()
        )
        executed = []
        for shard in self.pending_shards():
            if max_shards is not None and len(executed) >= max_shards:
                break
            self.run_shard(shard, workers=workers)
            executed.append(shard)
        if not self.pending_shards():
            self.write_report()
        return executed

    def resume(
        self,
        workers: "int | None" = None,
        max_shards: "int | None" = None,
    ) -> list:
        """Deprecated alias for :meth:`run` (resume is automatic)."""
        warnings.warn(
            "Campaign.resume is deprecated; call Campaign.run — it resumes "
            "from checkpoints automatically",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(workers=workers, max_shards=max_shards)

    # -- inspection ------------------------------------------------------
    def status(self) -> dict:
        completed = []
        discarded = 0
        for shard in range(self.spec.n_shards):
            if self._shard_records(shard) is not None:
                completed.append(shard)
            elif self.paths.shard_path(shard).is_file():
                # A checkpoint exists but cannot be used: corrupt bytes,
                # a foreign digest, or a truncated record list.
                discarded += 1
        models = len(self.spec.model_names())
        tasks_done = sum(
            len(self.spec.shard_seeds(shard)) * models for shard in completed
        )
        return {
            "name": self.spec.name,
            "digest": self.digest,
            "mode": self.spec.mode,
            "directory": str(self.paths.directory),
            "shards_total": self.spec.n_shards,
            "shards_completed": len(completed),
            "shards_pending": self.spec.n_shards - len(completed),
            "checkpoints_discarded": discarded,
            "tasks_total": self.spec.count * models,
            "tasks_completed": tasks_done,
            "report_written": self.paths.report_path.is_file(),
        }

    def records(self, ignore=()) -> list:
        """All checkpointed records in manifest order (complete campaigns).

        ``ignore`` names shards excluded from the requirement and the
        result — the quarantined shards of a partial campaign.
        """
        ignore = {int(shard) for shard in ignore}
        pending = [s for s in self.pending_shards() if s not in ignore]
        if pending:
            raise CampaignError(
                f"campaign incomplete: shard(s) {pending} still pending "
                "(run `repro campaign resume` first)"
            )
        records = []
        for shard in range(self.spec.n_shards):
            if shard in ignore:
                continue
            shard_records = self._shard_records(shard)
            if shard_records is not None:
                records.extend(shard_records)
        return records

    def report(self, quarantined=()) -> dict:
        """The aggregate survey report (requires every shard done, minus
        ``quarantined`` — which stamp the report as partial)."""
        return aggregate_report(
            self.spec, self.records(ignore=quarantined), quarantined=quarantined
        )

    def write_report(self, quarantined=()) -> dict:
        report = self.report(quarantined)
        atomic_write_json(self.paths.report_path, report)
        return report

    def render_report(self) -> str:
        report = read_json(self.paths.report_path)
        if report is not None and report.get("partial"):
            return render_report(report)
        return render_report(self.report())
