"""Aggregating shard checkpoints into one survey report.

The report is a *pure function* of the spec and the per-task records in
the shard checkpoints, serialized with sorted keys — this is what makes
the acceptance property hold: a campaign interrupted at any point and
resumed produces byte-identical ``report.json`` to an uninterrupted
run, because the records themselves are deterministic per task and the
aggregation folds them in manifest order.  Wall-clock, retry counts,
and cache hits deliberately live in telemetry, never in the report.

For oscillation surveys the headline number per model is the fraction
of the instance population that *can* oscillate, with a Wilson score
interval (see :func:`repro.analysis.stats.wilson_interval`) so that
rates of exactly 0 or 1 — common on structured policy families — still
carry honest uncertainty.  Simulation campaigns report convergence
frequency over instance × seed runs instead.
"""

from __future__ import annotations

from ..analysis.stats import ModelStats, wilson_interval
from .manifest import CAMPAIGN_SCHEMA
from .spec import CampaignSpec, spec_digest

__all__ = ["aggregate_report", "render_report"]


def _explore_rollup(model_names, records) -> dict:
    per_model = {
        name: {
            "instances": 0,
            "oscillating": 0,
            "conclusive": 0,
            "states_explored": 0,
            "states_pruned": 0,
            "truncated_states": 0,
        }
        for name in model_names
    }
    for record in records:
        row = per_model[record["model"]]
        result = record["result"]
        row["instances"] += 1
        row["oscillating"] += bool(result["oscillates"])
        row["conclusive"] += bool(result["oscillates"] or result["complete"])
        row["states_explored"] += result["states_explored"]
        row["states_pruned"] += result["states_pruned"]
        row["truncated_states"] += result["truncated_states"]
    for row in per_model.values():
        low, high = wilson_interval(row["oscillating"], row["instances"])
        row["oscillation_rate"] = (
            round(row["oscillating"] / row["instances"], 6) if row["instances"] else 0.0
        )
        row["ci_low"] = round(low, 6)
        row["ci_high"] = round(high, 6)
    return per_model


def _simulate_rollup(model_names, records) -> dict:
    stats = {name: ModelStats(model_name=name) for name in model_names}
    for record in records:
        tally = stats[record["model"]]
        for converged, steps in record["outcomes"]:
            tally.record(converged, steps)
    per_model = {}
    for name, tally in stats.items():
        low, high = tally.rate_ci()
        per_model[name] = {
            "runs": tally.runs,
            "converged": tally.converged,
            "convergence_rate": round(tally.convergence_rate, 6),
            "ci_low": round(low, 6),
            "ci_high": round(high, 6),
            "mean_steps": round(tally.mean_steps, 3),
            "p50_steps": tally.steps_percentile(0.50),
            "p95_steps": tally.steps_percentile(0.95),
            "p99_steps": tally.steps_percentile(0.99),
        }
    return per_model


def aggregate_report(spec: CampaignSpec, records, *, quarantined=()) -> dict:
    """Fold per-task checkpoint ``records`` into the survey report.

    ``records`` must be in manifest order (shard id, then the shard's
    own task order) — the runner guarantees this — so the report bytes
    are independent of how execution was scheduled or interrupted.

    ``quarantined`` names shards whose records are *missing* because the
    queue quarantined them as poison.  A non-empty set stamps the report
    ``"partial": true`` with the excluded shard ids; an empty one leaves
    the report bytes exactly as before (a full run stays byte-identical
    across versions).
    """
    records = list(records)
    model_names = spec.model_names()
    if spec.mode == "explore":
        per_model = _explore_rollup(model_names, records)
    else:
        per_model = _simulate_rollup(model_names, records)
    report = {
        "schema": CAMPAIGN_SCHEMA,
        "digest": spec_digest(spec),
        "name": spec.name,
        "mode": spec.mode,
        "instances": spec.count,
        "models": len(model_names),
        "tasks": len(records),
        "per_model": per_model,
    }
    quarantined = sorted(int(shard) for shard in quarantined)
    if quarantined:
        report["partial"] = True
        report["quarantined_shards"] = quarantined
    return report


def render_report(report: dict) -> str:
    """The report as the table ``repro campaign report`` prints."""
    lines = [
        f"campaign {report['name']} ({report['mode']}): "
        f"{report['instances']} instances x {report['models']} models, "
        f"{report['tasks']} tasks",
    ]
    if report.get("partial"):
        quarantined = report.get("quarantined_shards", [])
        lines.append(
            f"PARTIAL REPORT: {len(quarantined)} shard(s) quarantined as "
            f"poison and excluded: {', '.join(str(s) for s in quarantined)}"
        )
    if report["mode"] == "explore":
        lines.append(
            "model | oscillation rate [95% CI]    | conclusive | states explored | pruned"
        )
        lines.append("-" * 78)
        for name, row in sorted(report["per_model"].items()):
            lines.append(
                f"{name:<5} | {row['oscillation_rate']:7.2%} "
                f"[{row['ci_low']:6.2%}, {row['ci_high']:6.2%}] | "
                f"{row['conclusive']:>5}/{row['instances']:<4} | "
                f"{row['states_explored']:>15} | {row['states_pruned']:>6}"
            )
    else:
        lines.append(
            "model | convergence rate [95% CI]    | runs | mean steps | "
            "p50 | p95 | p99 steps"
        )
        lines.append("-" * 84)
        for name, row in sorted(report["per_model"].items()):
            # p50/p99 arrived after p95 (older report.json files may
            # predate them) — render what the report carries.
            p50 = row.get("p50_steps", row["p95_steps"])
            p99 = row.get("p99_steps", row["p95_steps"])
            lines.append(
                f"{name:<5} | {row['convergence_rate']:7.2%} "
                f"[{row['ci_low']:6.2%}, {row['ci_high']:6.2%}] | "
                f"{row['runs']:>4} | {row['mean_steps']:8.1f}   | "
                f"{p50:3.0f} | {row['p95_steps']:3.0f} | {p99:3.0f}"
            )
    return "\n".join(lines)
