"""The ``repro campaign join`` worker loop: pull, compute, write back.

A joiner is deliberately dumb: loop { claim a shard lease, renew it
from a heartbeat thread while computing, push the records back,
repeat } until the campaign is complete.  All scheduling intelligence
lives in the queue (stale-lease reclamation) and the determinism of
the workload (records are pure functions of ``(spec, shard)``), which
is why any number of joiners — starting late, dying mid-shard,
racing — converge on the same byte-identical ``report.json``.

Two transports behind one :func:`join` entry point:

* **path** — the campaign directory is reachable (same host or shared
  filesystem).  The worker opens the on-disk :class:`WorkQueue`
  directly and writes checkpoints itself.
* **url** — an ``http(s)://`` coordinator (``repro campaign serve``).
  :class:`CoordinatorClient` speaks the v2 envelopes: claims carry a
  ``traceparent`` minted from the coordinator's campaign trace (so this
  worker's shard spans attach to the cross-host trace tree), and
  completed records POST back for the coordinator to checkpoint.

Worker identity is ``host:pid`` — it is stamped into every lease, into
the telemetry run header (:mod:`repro.obs` already records host and
pid), and visible in ``repro campaign status``/``/statz`` while a
lease is live.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse

from ..config import RunConfig
from ..obs import active as _telemetry
from ..obs import tracing
from ..serve.protocol import PROTOCOL_VERSION, envelope
from .queue import DEFAULT_LEASE_TTL, Lease, WorkQueue, default_worker_id, open_queue
from .runner import Campaign, compute_shard_records
from .spec import CampaignSpec

__all__ = ["CoordinatorClient", "JoinError", "join"]

#: Idle poll interval while other workers hold all remaining leases.
DEFAULT_POLL_S = 0.5


class JoinError(RuntimeError):
    """The join target is unreachable, foreign, or spoke a bad protocol."""


class _HeartbeatThread:
    """Renews one lease at ``ttl/3`` until stopped (or the lease is lost).

    Losing the lease — the coordinator reclaimed it because we stalled —
    sets :attr:`lost`; the worker finishes its shard anyway (the compute
    is already sunk and the checkpoint is write-once deterministic, so a
    duplicate completion is harmless) but logs the loss.
    """

    def __init__(self, renew, lease: Lease, interval: float) -> None:
        self._renew = renew
        self.lease = lease
        self.lost = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, args=(interval,), daemon=True
        )
        self._thread.start()

    def _loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            renewed = self._renew(self.lease)
            if renewed is None:
                self.lost.set()
                return
            self.lease = renewed

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class _PathTransport:
    """Direct campaign-directory access (same host / shared filesystem)."""

    def __init__(self, directory, backend: str, lease_ttl: float) -> None:
        self.campaign = Campaign.open(directory)
        self.queue: WorkQueue = open_queue(
            self.campaign.paths.directory,
            self.campaign.digest,
            backend=backend,
            lease_ttl=lease_ttl,
        )
        self.queue.enroll(
            range(self.campaign.spec.n_shards),
            done=self.campaign.completed_shards(),
        )
        self.spec = self.campaign.spec
        self.cache_dir = (
            str(self.campaign.paths.cache_dir) if self.spec.cache else None
        )

    def claim(self, worker: str):
        lease = self.queue.claim(worker)
        if lease is None:
            return None, self.complete()
        if self.campaign._shard_records(lease.shard) is not None:
            self.queue.complete(lease)
            return None, self.complete()
        return lease, False

    def heartbeat(self, lease: Lease):
        return self.queue.heartbeat(lease)

    def complete_shard(self, lease: Lease, records: list) -> None:
        if self.campaign._shard_records(lease.shard) is None:
            self.campaign.write_shard_checkpoint(lease.shard, records)
        self.queue.complete(lease)
        if not self.campaign.pending_shards():
            # Idempotent: whichever joiner lands the last shard writes
            # the (deterministic, hence identical) report.
            self.campaign.write_report()
            _telemetry().count("campaign.report.written")

    def traceparent(self, lease: Lease) -> "str | None":
        context = tracing.current() or tracing.from_environment()
        return context.child().to_traceparent() if context else None

    def complete(self) -> bool:
        return not self.campaign.pending_shards()

    def close(self) -> None:
        self.queue.close()


class CoordinatorClient:
    """v2-envelope HTTP client for a ``repro campaign serve`` daemon."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http":
            raise JoinError(f"unsupported scheme in {url!r} (http only)")
        self._conn = http.client.HTTPConnection(
            parsed.hostname or "127.0.0.1", parsed.port or 80, timeout=timeout
        )

    def close(self) -> None:
        self._conn.close()

    def _request(self, method: str, path: str, payload: "dict | None" = None) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(
                envelope(payload), separators=(",", ":"), sort_keys=True
            ).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError):
            self._conn.close()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        try:
            data = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise JoinError(
                f"coordinator sent non-JSON ({response.status}): {exc}"
            ) from exc
        if response.status != 200:
            raise JoinError(
                f"coordinator HTTP {response.status}: {data.get('error', raw[:200])}"
            )
        version = data.get("v")
        if version != PROTOCOL_VERSION:
            raise JoinError(
                f"coordinator speaks protocol {version!r}, "
                f"this client needs {PROTOCOL_VERSION}"
            )
        return data

    def describe(self) -> dict:
        return self._request("GET", "/v2/campaign")

    def claim(self, worker: str) -> dict:
        return self._request("POST", "/v2/campaign/claim", {"worker": worker})

    def heartbeat(self, lease: Lease) -> "dict":
        return self._request(
            "POST",
            "/v2/campaign/heartbeat",
            {"shard": lease.shard, "token": lease.token, "worker": lease.worker},
        )

    def complete(self, lease: Lease, records: list) -> dict:
        return self._request(
            "POST",
            "/v2/campaign/complete",
            {
                "shard": lease.shard,
                "token": lease.token,
                "worker": lease.worker,
                "records": records,
            },
        )


class _UrlTransport:
    """Worker side of the coordinator protocol (no shared filesystem)."""

    def __init__(self, url: str, cache_dir: "str | None") -> None:
        self.client = CoordinatorClient(url)
        info = self.client.describe()
        try:
            self.spec = CampaignSpec.from_dict(info["spec"])
        except (KeyError, TypeError, ValueError) as exc:
            raise JoinError(f"coordinator sent a bad spec: {exc}") from exc
        self.digest = info.get("digest")
        self.lease_ttl = float(info.get("lease_ttl") or DEFAULT_LEASE_TTL)
        self._complete = bool(info.get("complete"))
        self._traceparents: dict = {}
        # A remote joiner has no campaign directory; verdict caching
        # (if the spec wants it) goes to a local per-campaign directory.
        # Cache location never affects record bytes.
        self.cache_dir = cache_dir

    def claim(self, worker: str):
        answer = self.client.claim(worker)
        self._complete = bool(answer.get("complete"))
        shard = answer.get("shard")
        if shard is None:
            return None, self._complete
        lease = Lease(
            shard=int(shard),
            worker=worker,
            token=str(answer.get("token")),
            expires=time.time() + float(answer.get("expires_s") or self.lease_ttl),
        )
        self._traceparents[lease.token] = answer.get("traceparent")
        return lease, False

    def heartbeat(self, lease: Lease):
        answer = self.client.heartbeat(lease)
        if not answer.get("ok"):
            return None
        return Lease(
            lease.shard,
            lease.worker,
            lease.token,
            time.time() + float(answer.get("expires_s") or self.lease_ttl),
        )

    def complete_shard(self, lease: Lease, records: list) -> None:
        answer = self.client.complete(lease, records)
        self._complete = bool(answer.get("complete"))

    def traceparent(self, lease: Lease) -> "str | None":
        return self._traceparents.pop(lease.token, None)

    def complete(self) -> bool:
        return self._complete

    def close(self) -> None:
        self.client.close()


def _open_transport(
    target, *, backend: str, lease_ttl: float, cache_dir: "str | None"
):
    if isinstance(target, str) and target.startswith(("http://", "https://")):
        return _UrlTransport(target, cache_dir)
    return _PathTransport(target, backend, lease_ttl)


def join(
    target,
    *,
    workers: "int | None" = None,
    backend: str = "sqlite",
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_shards: "int | None" = None,
    poll_s: float = DEFAULT_POLL_S,
    cache_dir: "str | None" = None,
    worker_id: "str | None" = None,
) -> dict:
    """Work a campaign from ``target`` (a directory or coordinator URL)
    until it completes (or ``max_shards`` shards have been executed).

    Returns a summary ``{"worker", "shards", "lost_leases", "complete"}``.
    """
    worker = worker_id or default_worker_id()
    transport = _open_transport(
        target, backend=backend, lease_ttl=lease_ttl, cache_dir=cache_dir
    )
    # One resolution of the fan-out width for the whole join (satellite
    # of the same fix in Campaign.run): $REPRO_WORKERS drifting while a
    # campaign runs must not reshape later shards.
    width = RunConfig(workers=workers).resolved_workers()
    tel = _telemetry()
    executed = []
    lost = 0
    try:
        while True:
            if max_shards is not None and len(executed) >= max_shards:
                break
            lease, complete = transport.claim(worker)
            if lease is None:
                if complete:
                    break
                time.sleep(poll_s)
                continue
            renew_every = max(transport_ttl(transport) / 3.0, 0.05)
            beat = _HeartbeatThread(transport.heartbeat, lease, renew_every)
            context = tracing.TraceContext.from_traceparent(
                transport.traceparent(lease)
            )
            try:
                with tracing.use(context):
                    with tracing.trace_span(
                        "campaign.join.shard",
                        timing=True,
                        shard=lease.shard,
                        worker=worker,
                    ):
                        records = compute_shard_records(
                            transport.spec,
                            lease.shard,
                            workers=width,
                            cache_dir=transport.cache_dir,
                        )
            except BaseException:
                beat.stop()
                try:
                    transport.queue.release(beat.lease)  # path transport only
                except AttributeError:
                    pass
                raise
            beat.stop()
            if beat.lost.is_set():
                # Our lease was reclaimed mid-compute (we stalled past
                # the TTL).  The records are still valid — write-once
                # checkpoints make duplicate completion harmless.
                lost += 1
            transport.complete_shard(beat.lease, records)
            executed.append(lease.shard)
            tel.heartbeat("campaign.join", worker=worker, shard=lease.shard)
    finally:
        transport.close()
    return {
        "worker": worker,
        "shards": executed,
        "lost_leases": lost,
        "complete": transport.complete(),
    }


def transport_ttl(transport) -> float:
    """The lease TTL governing ``transport`` (queue- or wire-advertised)."""
    queue = getattr(transport, "queue", None)
    if queue is not None:
        return queue.lease_ttl
    return getattr(transport, "lease_ttl", DEFAULT_LEASE_TTL)
