"""The ``repro campaign join`` worker loop: pull, compute, write back.

A joiner is deliberately dumb: loop { claim a shard lease, renew it
from a heartbeat thread while computing, push the records back,
repeat } until the campaign is complete.  All scheduling intelligence
lives in the queue (stale-lease reclamation) and the determinism of
the workload (records are pure functions of ``(spec, shard)``), which
is why any number of joiners — starting late, dying mid-shard,
racing — converge on the same byte-identical ``report.json``.

Two transports behind one :func:`join` entry point:

* **path** — the campaign directory is reachable (same host or shared
  filesystem).  The worker opens the on-disk :class:`WorkQueue`
  directly and writes checkpoints itself.
* **url** — an ``http(s)://`` coordinator (``repro campaign serve``).
  :class:`CoordinatorClient` speaks the v2 envelopes: claims carry a
  ``traceparent`` minted from the coordinator's campaign trace (so this
  worker's shard spans attach to the cross-host trace tree), and
  completed records POST back for the coordinator to checkpoint.

Worker identity is ``host:pid`` — it is stamped into every lease, into
the telemetry run header (:mod:`repro.obs` already records host and
pid), and visible in ``repro campaign status``/``/statz`` while a
lease is live.

**Resilience.**  Every wire call (claim/heartbeat/complete/fail) runs
under the shared :mod:`repro.serve.retry` policy — capped backoff with
deterministic jitter, per-endpoint circuit breakers, ``Retry-After``
honored — so a flapping or restarting coordinator degrades a worker to
slow progress, not death.  A shard whose *compute* raises is reported
back through ``fail`` (the queue re-opens or quarantines it) and the
worker moves on to the next claim instead of dying with the shard.
"""

from __future__ import annotations

import http.client
import json
import sys
import threading
import time
import urllib.parse

from ..config import RunConfig
from ..faults import fault_point
from ..obs import active as _telemetry
from ..obs import tracing
from ..serve.protocol import PROTOCOL_VERSION, envelope
from ..serve.retry import (
    CircuitBreaker,
    RetryPolicy,
    TransientError,
    call_with_retry,
    parse_retry_after,
)
from .queue import DEFAULT_LEASE_TTL, Lease, WorkQueue, default_worker_id, open_queue
from .runner import Campaign, compute_shard_records
from .spec import CampaignSpec

__all__ = ["CoordinatorClient", "DEFAULT_JOIN_RETRY_POLICY", "JoinError", "join"]

#: Idle poll interval while other workers hold all remaining leases.
DEFAULT_POLL_S = 0.5

#: Wire-retry shape for the worker loop: generous, because a worker
#: outliving a coordinator restart is the whole point.  Eight retries
#: capped at 2 s ride out a multi-second outage per call; the join
#: loop additionally tolerates several consecutive failed claims.
DEFAULT_JOIN_RETRY_POLICY = RetryPolicy(retries=8, base_delay_s=0.05, max_delay_s=2.0)

#: Consecutive claim-call failures (each already retried under the
#: policy) a joiner rides out before giving up on the coordinator.
CLAIM_FAILURE_LIMIT = 5

#: Wire fault-injection sites, keyed by coordinator endpoint.
_FAULT_SITES = {
    "/v2/campaign/claim": "campaign.claim",
    "/v2/campaign/heartbeat": "campaign.heartbeat",
    "/v2/campaign/complete": "campaign.complete",
}


class JoinError(RuntimeError):
    """The join target is unreachable, foreign, or spoke a bad protocol."""


class _HeartbeatThread:
    """Renews one lease at ``ttl/3`` until stopped (or the lease is lost).

    Losing the lease — the coordinator reclaimed it because we stalled —
    sets :attr:`lost`; the worker finishes its shard anyway (the compute
    is already sunk and the checkpoint is write-once deterministic, so a
    duplicate completion is harmless) but logs the loss.
    """

    def __init__(self, renew, lease: Lease, interval: float) -> None:
        self._renew = renew
        self.lease = lease
        self.lost = threading.Event()
        self.started = time.monotonic()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, args=(interval,), daemon=True
        )
        self._thread.start()

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def _loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                renewed = self._renew(self.lease)
            except Exception:
                # Renewal failing past its own retries means the
                # coordinator is unreachable; the lease will expire and
                # be reclaimed — same outcome as an explicit loss.
                renewed = None
            if renewed is None:
                self.lost.set()
                return
            self.lease = renewed

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class _PathTransport:
    """Direct campaign-directory access (same host / shared filesystem)."""

    def __init__(
        self,
        directory,
        backend: str,
        lease_ttl: float,
        quarantine_after: "int | None" = None,
    ) -> None:
        self.campaign = Campaign.open(directory)
        queue_kwargs = {}
        if quarantine_after is not None:
            queue_kwargs["quarantine_after"] = quarantine_after
        self.queue: WorkQueue = open_queue(
            self.campaign.paths.directory,
            self.campaign.digest,
            backend=backend,
            lease_ttl=lease_ttl,
            **queue_kwargs,
        )
        self.queue.enroll(
            range(self.campaign.spec.n_shards),
            done=self.campaign.completed_shards(),
        )
        self.spec = self.campaign.spec
        self.cache_dir = (
            str(self.campaign.paths.cache_dir) if self.spec.cache else None
        )
        self._final: "bool | None" = None

    def claim(self, worker: str):
        lease = self.queue.claim(worker)
        if lease is None:
            return None, self.complete()
        if self.campaign._shard_records(lease.shard) is not None:
            self.queue.complete(lease)
            return None, self.complete()
        return lease, False

    def heartbeat(self, lease: Lease):
        return self.queue.heartbeat(lease)

    def complete_shard(self, lease: Lease, records: list) -> None:
        if self.campaign._shard_records(lease.shard) is None:
            self.campaign.write_shard_checkpoint(lease.shard, records)
        self.queue.complete(lease)
        self._maybe_report()

    def fail(self, lease: Lease, error: "str | None" = None) -> str:
        outcome = self.queue.fail(lease)
        if outcome == "quarantined":
            # Quarantining the last unresolved shard resolves the
            # campaign — someone has to write the partial report, and
            # with a path transport there is no coordinator to do it.
            self._maybe_report()
        return outcome

    def _unresolved(self) -> list:
        quarantined = set(self.queue.quarantined())
        return [
            shard
            for shard in self.campaign.pending_shards()
            if shard not in quarantined
        ]

    def _maybe_report(self) -> None:
        if self._unresolved():
            return
        # Idempotent: whichever joiner resolves the last shard writes
        # the (deterministic, hence identical) report.
        self.campaign.write_report(quarantined=self.queue.quarantined())
        _telemetry().count("campaign.report.written")

    def traceparent(self, lease: Lease) -> "str | None":
        context = tracing.current() or tracing.from_environment()
        return context.child().to_traceparent() if context else None

    def complete(self) -> bool:
        if self._final is not None:
            return self._final
        return not self._unresolved()

    def close(self) -> None:
        # Snapshot completion first: join() builds its summary after
        # close(), and the SQLite queue cannot be queried once closed.
        self._final = not self._unresolved()
        self.queue.close()


class CoordinatorClient:
    """v2-envelope HTTP client for a ``repro campaign serve`` daemon.

    Wire-level failures *and* 5xx/429/503 answers are retried under the
    shared serve retry policy (the coordinator restarting mid-campaign
    answers connection-refused for a few seconds — precisely the window
    the backoff is shaped for), with one circuit breaker per endpoint.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 60.0,
        *,
        retry_policy: "RetryPolicy | None" = None,
    ) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http":
            raise JoinError(f"unsupported scheme in {url!r} (http only)")
        self._conn = http.client.HTTPConnection(
            parsed.hostname or "127.0.0.1", parsed.port or 80, timeout=timeout
        )
        self._policy = (
            retry_policy if retry_policy is not None else DEFAULT_JOIN_RETRY_POLICY
        )
        self._breakers: dict = {}

    def close(self) -> None:
        self._conn.close()

    def _breaker(self, path: str) -> CircuitBreaker:
        breaker = self._breakers.get(path)
        if breaker is None:
            breaker = self._breakers[path] = CircuitBreaker(
                failure_threshold=5, cooldown_s=0.5
            )
        return breaker

    def _send_once(self, method: str, path: str, body, headers: dict):
        try:
            # Inside the wire-error net: an injected connreset must be
            # retried exactly like a real one.
            fault_point(_FAULT_SITES.get(path, "campaign.request"), path)
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError) as exc:
            self._conn.close()
            raise TransientError(str(exc), cause=exc) from exc
        if response.status >= 500 or response.status == 429:
            # The coordinator answered but cannot serve right now
            # (restarting, shedding, transient disk error): retryable.
            raise TransientError(
                f"coordinator HTTP {response.status}",
                retry_after=parse_retry_after(response.headers.get("Retry-After")),
                cause=JoinError(
                    f"coordinator HTTP {response.status}: "
                    f"{raw[:200].decode('utf-8', 'replace')}"
                ),
            )
        return response, raw

    def _request(self, method: str, path: str, payload: "dict | None" = None) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(
                envelope(payload), separators=(",", ":"), sort_keys=True
            ).encode("utf-8")
            headers["Content-Type"] = "application/json"
        response, raw = call_with_retry(
            lambda: self._send_once(method, path, body, headers),
            policy=self._policy,
            endpoint=path,
            breaker=self._breaker(path),
        )
        try:
            data = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise JoinError(
                f"coordinator sent non-JSON ({response.status}): {exc}"
            ) from exc
        if response.status != 200:
            raise JoinError(
                f"coordinator HTTP {response.status}: {data.get('error', raw[:200])}"
            )
        version = data.get("v")
        if version != PROTOCOL_VERSION:
            raise JoinError(
                f"coordinator speaks protocol {version!r}, "
                f"this client needs {PROTOCOL_VERSION}"
            )
        return data

    def describe(self) -> dict:
        return self._request("GET", "/v2/campaign")

    def claim(self, worker: str) -> dict:
        return self._request("POST", "/v2/campaign/claim", {"worker": worker})

    def heartbeat(self, lease: Lease) -> "dict":
        return self._request(
            "POST",
            "/v2/campaign/heartbeat",
            {"shard": lease.shard, "token": lease.token, "worker": lease.worker},
        )

    def complete(self, lease: Lease, records: list) -> dict:
        return self._request(
            "POST",
            "/v2/campaign/complete",
            {
                "shard": lease.shard,
                "token": lease.token,
                "worker": lease.worker,
                "records": records,
            },
        )

    def fail(self, lease: Lease, error: "str | None" = None) -> dict:
        return self._request(
            "POST",
            "/v2/campaign/fail",
            {
                "shard": lease.shard,
                "token": lease.token,
                "worker": lease.worker,
                "error": error or "",
            },
        )


class _UrlTransport:
    """Worker side of the coordinator protocol (no shared filesystem)."""

    def __init__(
        self,
        url: str,
        cache_dir: "str | None",
        retry_policy: "RetryPolicy | None" = None,
    ) -> None:
        self.client = CoordinatorClient(url, retry_policy=retry_policy)
        info = self.client.describe()
        try:
            self.spec = CampaignSpec.from_dict(info["spec"])
        except (KeyError, TypeError, ValueError) as exc:
            raise JoinError(f"coordinator sent a bad spec: {exc}") from exc
        self.digest = info.get("digest")
        self.lease_ttl = float(info.get("lease_ttl") or DEFAULT_LEASE_TTL)
        self._complete = bool(info.get("complete"))
        self._traceparents: dict = {}
        # A remote joiner has no campaign directory; verdict caching
        # (if the spec wants it) goes to a local per-campaign directory.
        # Cache location never affects record bytes.
        self.cache_dir = cache_dir

    def claim(self, worker: str):
        answer = self.client.claim(worker)
        self._complete = bool(answer.get("complete"))
        shard = answer.get("shard")
        if shard is None:
            return None, self._complete
        lease = Lease(
            shard=int(shard),
            worker=worker,
            token=str(answer.get("token")),
            expires=time.time() + float(answer.get("expires_s") or self.lease_ttl),
        )
        self._traceparents[lease.token] = answer.get("traceparent")
        return lease, False

    def heartbeat(self, lease: Lease):
        answer = self.client.heartbeat(lease)
        if not answer.get("ok"):
            return None
        return Lease(
            lease.shard,
            lease.worker,
            lease.token,
            time.time() + float(answer.get("expires_s") or self.lease_ttl),
        )

    def complete_shard(self, lease: Lease, records: list) -> None:
        answer = self.client.complete(lease, records)
        self._complete = bool(answer.get("complete"))

    def fail(self, lease: Lease, error: "str | None" = None) -> str:
        try:
            answer = self.client.fail(lease, error)
        except JoinError:
            # A pre-quarantine coordinator has no /fail endpoint; the
            # lease will simply expire and be reclaimed.
            return "lost"
        self._complete = bool(answer.get("complete"))
        return str(answer.get("outcome", "lost"))

    def traceparent(self, lease: Lease) -> "str | None":
        return self._traceparents.pop(lease.token, None)

    def complete(self) -> bool:
        return self._complete

    def close(self) -> None:
        self.client.close()


def _open_transport(
    target,
    *,
    backend: str,
    lease_ttl: float,
    cache_dir: "str | None",
    retry_policy: "RetryPolicy | None" = None,
    quarantine_after: "int | None" = None,
):
    if isinstance(target, str) and target.startswith(("http://", "https://")):
        return _UrlTransport(target, cache_dir, retry_policy)
    return _PathTransport(target, backend, lease_ttl, quarantine_after)


def join(
    target,
    *,
    workers: "int | None" = None,
    backend: str = "sqlite",
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_shards: "int | None" = None,
    poll_s: float = DEFAULT_POLL_S,
    cache_dir: "str | None" = None,
    worker_id: "str | None" = None,
    retry_budget: "int | None" = None,
    quarantine_after: "int | None" = None,
) -> dict:
    """Work a campaign from ``target`` (a directory or coordinator URL)
    until it completes (or ``max_shards`` shards have been executed).

    ``retry_budget`` overrides the per-wire-call retry count of
    :data:`DEFAULT_JOIN_RETRY_POLICY`; ``quarantine_after`` applies to
    path transports (URL joiners inherit the coordinator's setting).

    Returns a summary ``{"worker", "shards", "lost_leases",
    "failed_shards", "complete"}``.
    """
    worker = worker_id or default_worker_id()
    retry_policy = None
    if retry_budget is not None:
        retry_policy = RetryPolicy(
            retries=retry_budget,
            base_delay_s=DEFAULT_JOIN_RETRY_POLICY.base_delay_s,
            max_delay_s=DEFAULT_JOIN_RETRY_POLICY.max_delay_s,
        )
    transport = _open_transport(
        target,
        backend=backend,
        lease_ttl=lease_ttl,
        cache_dir=cache_dir,
        retry_policy=retry_policy,
        quarantine_after=quarantine_after,
    )
    # One resolution of the fan-out width for the whole join (satellite
    # of the same fix in Campaign.run): $REPRO_WORKERS drifting while a
    # campaign runs must not reshape later shards.
    width = RunConfig(workers=workers).resolved_workers()
    tel = _telemetry()
    executed = []
    lost = 0
    failed = 0
    claim_failures = 0
    try:
        while True:
            if max_shards is not None and len(executed) >= max_shards:
                break
            try:
                lease, complete = transport.claim(worker)
            except (JoinError, http.client.HTTPException, OSError):
                # The claim call exhausted its own retries — the
                # coordinator is down harder than the per-call budget
                # covers (a restart takes seconds).  Ride out a few of
                # these before conceding the campaign is unreachable.
                claim_failures += 1
                if claim_failures > CLAIM_FAILURE_LIMIT:
                    raise
                time.sleep(poll_s)
                continue
            claim_failures = 0
            if lease is None:
                if complete:
                    break
                time.sleep(poll_s)
                continue
            renew_every = max(transport_ttl(transport) / 3.0, 0.05)
            beat = _HeartbeatThread(transport.heartbeat, lease, renew_every)
            context = tracing.TraceContext.from_traceparent(
                transport.traceparent(lease)
            )
            try:
                with tracing.use(context):
                    with tracing.trace_span(
                        "campaign.join.shard",
                        timing=True,
                        shard=lease.shard,
                        worker=worker,
                    ):
                        records = compute_shard_records(
                            transport.spec,
                            lease.shard,
                            workers=width,
                            cache_dir=transport.cache_dir,
                        )
            except Exception as exc:
                # The shard's *compute* failed — a poison instance, a
                # resource limit, an injected fault.  Report it so the
                # queue can re-open or quarantine the shard, and keep
                # claiming: one bad shard must not kill the worker.
                beat.stop()
                failed += 1
                outcome = transport.fail(beat.lease, repr(exc))
                tel.event(
                    "campaign.shard.error",
                    shard=lease.shard,
                    worker=worker,
                    outcome=outcome,
                    error=repr(exc)[:500],
                )
                print(
                    f"repro campaign join: shard {lease.shard} failed "
                    f"({exc!r}); outcome: {outcome}",
                    file=sys.stderr,
                )
                continue
            except BaseException:
                beat.stop()
                try:
                    transport.queue.release(beat.lease)  # path transport only
                except AttributeError:
                    pass
                raise
            beat.stop()
            if beat.lost.is_set():
                # Our lease was reclaimed mid-compute (we stalled past
                # the TTL).  The records are still valid — write-once
                # checkpoints make duplicate completion harmless.
                lost += 1
                elapsed = beat.elapsed()
                tel.count("campaign.lease.lost.midshard")
                tel.event(
                    "campaign.lease.lost",
                    shard=lease.shard,
                    worker=worker,
                    elapsed_s=round(elapsed, 3),
                )
                print(
                    f"repro campaign join: warning: lease on shard "
                    f"{lease.shard} lost after {elapsed:.1f}s of compute; "
                    "completing anyway (duplicate checkpoints are identical)",
                    file=sys.stderr,
                )
            transport.complete_shard(beat.lease, records)
            executed.append(lease.shard)
            tel.heartbeat("campaign.join", worker=worker, shard=lease.shard)
    finally:
        transport.close()
    return {
        "worker": worker,
        "shards": executed,
        "lost_leases": lost,
        "failed_shards": failed,
        "complete": transport.complete(),
    }


def transport_ttl(transport) -> float:
    """The lease TTL governing ``transport`` (queue- or wire-advertised)."""
    queue = getattr(transport, "queue", None)
    if queue is not None:
        return queue.lease_ttl
    return getattr(transport, "lease_ttl", DEFAULT_LEASE_TTL)
