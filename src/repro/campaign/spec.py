"""Campaign specifications: what a survey sweeps, written as JSON.

A campaign is a *declarative* object — everything the runner does is a
deterministic function of the spec, so the spec's canonical digest
doubles as the campaign's identity: the manifest and every shard
checkpoint embed it, and resuming against a directory whose digest
differs from the spec is refused instead of silently mixing results.

Sharding is part of the spec, not the runner: shard ``i`` owns the
instances with seeds ``base_seed + i*shard_size …`` (``shard_size``
instances, the last shard possibly fewer), and each instance is crossed
with every model in ``models``.  A shard is therefore re-executable in
isolation — the unit of checkpointing and crash recovery.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from ..config import RunConfig
from ..core.generators import POLICIES, random_instance

__all__ = ["CampaignSpec", "MODES", "spec_digest"]

#: What each task of a shard computes: a bounded oscillation search per
#: (instance, model), or a batch of seeded fair simulations per
#: (instance, model).
MODES = ("explore", "simulate")


@dataclass(frozen=True)
class CampaignSpec:
    """One survey campaign over a random-instance population."""

    name: str
    #: Size of the instance population (consecutive generator seeds).
    count: int
    #: Model names to sweep; ``()`` means the full 24-model taxonomy.
    models: tuple = ()
    mode: str = "explore"
    #: Instances per shard (the checkpoint/recovery granularity).
    shard_size: int = 8

    # -- generator parameters (repro.core.generators.random_instance) --
    base_seed: int = 0
    n_nodes: int = 4
    extra_edge_prob: float = 0.3
    max_paths_per_node: int = 4
    max_path_length: int = 5
    policy: str = "random"

    # -- search/simulation bounds --------------------------------------
    queue_bound: int = 3
    #: ``max_states`` (explore) / ``max_steps`` (simulate); ``None``
    #: uses the :class:`repro.RunConfig` defaults.
    step_bound: "int | None" = None
    reliable_twin_first: bool = True
    #: Simulation runs per (instance, model), seeds ``0..n-1``.
    seeds_per_instance: int = 3
    drop_prob: float = 0.2

    # -- execution knobs (identical results either way) ----------------
    engine: str = "compiled"
    reduction: str = "ample"
    #: Share a content-addressed verdict cache under the campaign
    #: directory (explore mode); retried and resumed tasks then answer
    #: from the cache instead of re-searching.
    cache: bool = True
    #: Extra attempts per task after a worker crash/timeout.
    retries: int = 2
    #: Base of the exponential retry backoff, in seconds.
    retry_backoff: float = 0.25
    #: Seconds before a task is declared hung (``None`` = never).
    task_timeout: "float | None" = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("-", "").replace("_", "").isalnum():
            raise ValueError(
                f"campaign name must be a non-empty [-_a-zA-Z0-9] slug, got {self.name!r}"
            )
        if self.count < 1:
            raise ValueError("count must be at least 1")
        if self.shard_size < 1:
            raise ValueError("shard_size must be at least 1")
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {MODES}")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}"
            )
        if self.seeds_per_instance < 1:
            raise ValueError("seeds_per_instance must be at least 1")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        from ..models.taxonomy import ALL_MODELS

        known = {m.name for m in ALL_MODELS}
        object.__setattr__(self, "models", tuple(self.models))
        unknown = [name for name in self.models if name not in known]
        if unknown:
            raise ValueError(f"unknown model name(s): {', '.join(unknown)}")
        # The RunConfig constructor validates the shared knobs.
        self.run_config()

    # -- derived structure ---------------------------------------------
    def model_names(self) -> tuple:
        """The swept models; the full taxonomy when ``models`` is empty."""
        if self.models:
            return self.models
        from ..models.taxonomy import ALL_MODELS

        return tuple(m.name for m in ALL_MODELS)

    @property
    def n_shards(self) -> int:
        return -(-self.count // self.shard_size)

    def shard_seeds(self, shard: int) -> tuple:
        """The generator seeds shard ``shard`` owns, in order."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range 0..{self.n_shards - 1}")
        start = self.base_seed + shard * self.shard_size
        stop = min(start + self.shard_size, self.base_seed + self.count)
        return tuple(range(start, stop))

    def instance_for_seed(self, seed: int):
        """Materialize the population member with generator seed ``seed``."""
        return random_instance(
            seed,
            n_nodes=self.n_nodes,
            extra_edge_prob=self.extra_edge_prob,
            max_paths_per_node=self.max_paths_per_node,
            max_path_length=self.max_path_length,
            policy=self.policy,
        )

    def run_config(self, cache_dir: "str | None" = None) -> RunConfig:
        """The :class:`repro.RunConfig` the spec's tasks run under."""
        return RunConfig(
            engine=self.engine,
            reduction=self.reduction,
            cache_dir=cache_dir if self.cache else None,
            queue_bound=self.queue_bound,
            step_bound=self.step_bound,
        )

    # -- serialization --------------------------------------------------
    def as_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["models"] = list(self.models)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown campaign spec key(s): {', '.join(unknown)}")
        if "models" in data:
            data = dict(data, models=tuple(data["models"]))
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text())

    def to_file(self, path) -> None:
        Path(path).write_text(self.to_json())


def spec_digest(spec: CampaignSpec) -> str:
    """The campaign's identity: sha256 of the canonical spec JSON."""
    blob = json.dumps(spec.as_dict(), separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
