"""Campaign directory layout, manifest, and crash-safe checkpoint I/O.

Layout of a campaign directory::

    <dir>/
      spec.json                  the submitted CampaignSpec
      manifest.json              digest + shard table (written once)
      shards/shard-0007.json     one checkpoint per *completed* shard
      report.json                the final aggregate (all shards done)
      cache/                     shared verdict cache (spec.cache=True)
      telemetry.jsonl            JSONL event stream (--telemetry)

Every JSON artifact is written with :func:`atomic_write_json` — a
tempfile in the destination directory followed by ``os.replace`` — so a
``SIGKILL`` at any instant leaves either the previous file or the new
one, never a torn write.  A shard checkpoint only exists once the whole
shard finished; resuming therefore re-runs exactly the shards whose
checkpoints are missing (or unreadable, or from a different spec
digest), and nothing else.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from .spec import CampaignSpec, spec_digest

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignPaths",
    "atomic_write_json",
    "build_manifest",
    "read_json",
]

#: Bumped whenever the manifest/checkpoint/report payloads change shape.
CAMPAIGN_SCHEMA = 1


def atomic_write_json(path, payload: dict) -> None:
    """Write ``payload`` as canonical JSON via tempfile + atomic rename."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_json(path) -> "dict | None":
    """The parsed JSON object at ``path``, or ``None`` if missing/corrupt.

    Corruption is treated exactly like absence: a checkpoint torn by a
    crashed writer (possible only on filesystems without atomic rename)
    simply means the shard runs again.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


class CampaignPaths:
    """The file locations of one campaign directory."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)

    @property
    def spec_path(self) -> Path:
        return self.directory / "spec.json"

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @property
    def shards_dir(self) -> Path:
        return self.directory / "shards"

    def shard_path(self, shard: int) -> Path:
        return self.shards_dir / f"shard-{shard:04d}.json"

    @property
    def report_path(self) -> Path:
        return self.directory / "report.json"

    @property
    def cache_dir(self) -> Path:
        return self.directory / "cache"

    @property
    def telemetry_path(self) -> Path:
        return self.directory / "telemetry.jsonl"


def build_manifest(spec: CampaignSpec) -> dict:
    """The (deterministic) shard table derived from a spec."""
    models = list(spec.model_names())
    return {
        "schema": CAMPAIGN_SCHEMA,
        "digest": spec_digest(spec),
        "name": spec.name,
        "mode": spec.mode,
        "models": models,
        "n_shards": spec.n_shards,
        "shards": [
            {
                "id": shard,
                "seeds": list(spec.shard_seeds(shard)),
                "tasks": len(spec.shard_seeds(shard)) * len(models),
            }
            for shard in range(spec.n_shards)
        ],
    }
