"""Campaign directory layout, manifest, and crash-safe checkpoint I/O.

Layout of a campaign directory::

    <dir>/
      spec.json                  the submitted CampaignSpec
      manifest.json              digest + shard table (written once)
      shards/shard-0007.json     one checkpoint per *completed* shard
      report.json                the final aggregate (all shards done)
      cache/                     shared verdict cache (spec.cache=True)
      telemetry.jsonl            JSONL event stream (--telemetry)
      queue.sqlite               shard work queue (multi-host, sqlite)
      queue/                     shard work queue (multi-host, file leases)

Every JSON artifact is written with :func:`atomic_write_json` — a
tempfile in the destination directory followed by ``os.replace``
(:func:`repro.fsutil.atomic_write_text`, which also retries transient
``ENOSPC`` with bounded backoff) — so a ``SIGKILL`` at any instant
leaves either the previous file or the new one, never a torn write.  A
shard checkpoint only exists once the whole shard finished; resuming
therefore re-runs exactly the shards whose checkpoints are missing (or
unreadable, or from a different spec digest), and nothing else.

Discarding is never silent: a checkpoint that exists but cannot be
used (corrupt bytes, foreign digest, wrong shape) is reported on
stderr, counted as ``campaign.checkpoint_discarded``, and surfaced by
``repro campaign status``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from ..fsutil import atomic_write_text
from ..obs import active as _telemetry
from .spec import CampaignSpec, spec_digest

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignPaths",
    "atomic_write_json",
    "build_manifest",
    "checkpoint_issue",
    "read_json",
]

#: Bumped whenever the manifest/checkpoint/report payloads change shape.
CAMPAIGN_SCHEMA = 1


def atomic_write_json(path, payload: dict) -> None:
    """Write ``payload`` as canonical JSON via tempfile + atomic rename."""
    blob = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    atomic_write_text(path, blob, fault_site="checkpoint.write")


def read_json(path, *, warn: bool = True) -> "dict | None":
    """The parsed JSON object at ``path``, or ``None`` if missing/corrupt.

    Corruption is treated like absence — a checkpoint torn by a crashed
    writer (possible only on filesystems without atomic rename) simply
    means the shard runs again — but never *silently*: unless ``warn``
    is off, a file that exists yet cannot be parsed is named on stderr
    and counted as ``campaign.checkpoint_discarded``.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None
    except OSError as error:
        _discard(path, f"unreadable ({error})", warn)
        return None
    try:
        payload = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        _discard(path, f"corrupt JSON ({error})", warn)
        return None
    if not isinstance(payload, dict):
        _discard(path, "not a JSON object", warn)
        return None
    return payload


def _discard(path: Path, reason: str, warn: bool) -> None:
    _telemetry().count("campaign.checkpoint_discarded")
    if warn:
        print(
            f"repro: warning: discarding {path}: {reason}",
            file=sys.stderr,
        )


def checkpoint_issue(
    payload: "dict | None", digest: str, shard: int, expected_tasks: int
) -> "str | None":
    """Why a shard-checkpoint payload is unusable, or ``None`` if valid.

    Shared by the runner (which re-runs bad shards) and ``repro
    doctor`` (which reports and quarantines them).
    """
    if payload is None:
        return "missing or unparseable"
    if payload.get("schema") != CAMPAIGN_SCHEMA:
        return f"schema {payload.get('schema')!r} != {CAMPAIGN_SCHEMA}"
    if payload.get("digest") != digest:
        return "campaign digest mismatch"
    if payload.get("shard") != shard:
        return f"shard id {payload.get('shard')!r} != {shard}"
    records = payload.get("records")
    if not isinstance(records, list) or len(records) != expected_tasks:
        found = len(records) if isinstance(records, list) else "no"
        return f"expected {expected_tasks} records, found {found}"
    return None


class CampaignPaths:
    """The file locations of one campaign directory."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)

    @property
    def spec_path(self) -> Path:
        return self.directory / "spec.json"

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @property
    def shards_dir(self) -> Path:
        return self.directory / "shards"

    def shard_path(self, shard: int) -> Path:
        return self.shards_dir / f"shard-{shard:04d}.json"

    @property
    def report_path(self) -> Path:
        return self.directory / "report.json"

    @property
    def cache_dir(self) -> Path:
        return self.directory / "cache"

    @property
    def telemetry_path(self) -> Path:
        return self.directory / "telemetry.jsonl"

    @property
    def queue_db_path(self) -> Path:
        """SQLite work-queue database (multi-host coordination)."""
        return self.directory / "queue.sqlite"

    @property
    def queue_dir(self) -> Path:
        """File-lease work-queue directory (shared-filesystem fallback)."""
        return self.directory / "queue"


def build_manifest(spec: CampaignSpec) -> dict:
    """The (deterministic) shard table derived from a spec."""
    models = list(spec.model_names())
    return {
        "schema": CAMPAIGN_SCHEMA,
        "digest": spec_digest(spec),
        "name": spec.name,
        "mode": spec.mode,
        "models": models,
        "n_shards": spec.n_shards,
        "shards": [
            {
                "id": shard,
                "seeds": list(spec.shard_seeds(shard)),
                "tasks": len(spec.shard_seeds(shard)) * len(models),
            }
            for shard in range(spec.n_shards)
        ],
    }
