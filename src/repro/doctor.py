"""``repro doctor`` — an fsck for cache and campaign directories.

:func:`diagnose` walks a verdict-cache root or a campaign directory,
verifies every durable artifact against the invariants the rest of the
package relies on, and returns a :class:`DoctorReport` of
:class:`Finding`\\ s.  With ``repair=True`` it also acts: bad artifacts
are *quarantined* (moved to ``<root>/quarantine/``, never deleted),
derivable ones (the campaign manifest, a stale ``report.json``) are
rewritten from their source of truth, and orphan atomic-write
tempfiles are removed.

What is checked
---------------

Cache root (``<root>/verdicts/...``):

* every entry parses as a JSON object,
* carries the current :data:`~repro.engine.cache.CACHE_VERSION`,
* passes its embedded sha256 ``checksum``
  (:func:`~repro.engine.cache.payload_checksum`),
* sits in the shard directory its own file name prescribes,
* plus: orphan ``.*.tmp`` files and the quarantine backlog.

Campaign directory (``spec.json`` present):

* ``spec.json`` parses into a valid spec (unrepairable — the spec *is*
  the campaign's identity),
* ``manifest.json`` matches the spec digest (repair: rewritten, it is
  pure derived data),
* every shard checkpoint passes
  :func:`~repro.campaign.manifest.checkpoint_issue` — the exact
  validation the runner applies on resume,
* ``report.json``, when present, is byte-identical to the aggregate of
  the checkpoints (repair: rewritten when all shards are done,
  quarantined when some are pending); a *partial* report is accepted
  when its ``quarantined_shards`` exactly account for the pending ones,
* the work-queue store — ``queue.sqlite`` and/or ``queue/`` — agrees
  with the spec and the checkpoints: matching digest, in-range shard
  ids, no expired or orphaned leases (repair: reclaimed), no ``done``
  rows or markers without a valid checkpoint behind them (repair:
  reset to open), no leftover reclaim tombstones (repair: removed),
  with quarantined shards surfaced as info,
* a nested ``cache/`` directory gets the full cache check.

The doctor never invents data: everything it rewrites is derivable,
everything else it quarantines for post-mortem and lets the runner
recompute.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from .campaign.manifest import (
    CAMPAIGN_SCHEMA,
    CampaignPaths,
    atomic_write_json,
    build_manifest,
    checkpoint_issue,
    read_json,
)
from .campaign.report import aggregate_report
from .campaign.spec import CampaignSpec, spec_digest
from .engine.cache import CACHE_VERSION, QUARANTINE_DIR, payload_checksum
from .fsutil import find_orphan_temps

__all__ = [
    "DoctorError",
    "DoctorReport",
    "Finding",
    "diagnose",
]

_SHARD_NAME = re.compile(r"^shard-(\d{4})\.json$")
_KEY_NAME = re.compile(r"^[0-9a-f]{64}\.json$")


class DoctorError(RuntimeError):
    """The given path is neither a cache root nor a campaign directory."""


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem (or notable fact) about one artifact."""

    #: ``"error"`` (artifact unusable), ``"warning"`` (suspicious or
    #: wasteful, but nothing will misbehave), or ``"info"``.
    severity: str
    #: Dotted category, e.g. ``cache.entry`` or ``campaign.manifest``.
    category: str
    #: Path of the artifact, relative to the diagnosed root.
    path: str
    detail: str
    #: The repair performed (``"quarantined"``, ``"rewritten"``,
    #: ``"removed"``, ``"reclaimed"``, ``"reset"``), or ``None`` when
    #: nothing was (or could be) done.
    repair: "str | None" = None

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class DoctorReport:
    """Everything one :func:`diagnose` pass found."""

    root: str
    #: ``"cache"`` or ``"campaign"``.
    kind: str
    #: Artifacts that were inspected and found healthy.
    healthy: int = 0
    findings: list = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def unrepaired_errors(self) -> int:
        return sum(
            1
            for f in self.findings
            if f.severity == "error" and f.repair is None
        )

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    def ok(self) -> bool:
        """Whether the directory is usable as-is (no unrepaired errors)."""
        return self.unrepaired_errors == 0

    def as_dict(self) -> dict:
        return {
            "root": self.root,
            "kind": self.kind,
            "healthy": self.healthy,
            "errors": self.errors,
            "unrepaired_errors": self.unrepaired_errors,
            "warnings": self.warnings,
            "ok": self.ok(),
            "findings": [f.as_dict() for f in self.findings],
        }

    def render(self) -> str:
        lines = [f"repro doctor: {self.kind} directory {self.root}"]
        for finding in self.findings:
            repair = f"  [{finding.repair}]" if finding.repair else ""
            lines.append(
                f"  {finding.severity.upper():7s} {finding.path}: "
                f"{finding.detail}{repair}"
            )
        lines.append(
            f"{self.healthy} healthy artifact(s), "
            f"{self.errors} error(s) ({self.unrepaired_errors} unrepaired), "
            f"{self.warnings} warning(s)"
        )
        return "\n".join(lines)


def diagnose(path, repair: bool = False) -> DoctorReport:
    """Check (and with ``repair=True``, mend) a cache or campaign dir."""
    root = Path(path)
    if (root / "spec.json").is_file():
        report = DoctorReport(root=str(root), kind="campaign")
        _check_campaign(root, report, repair)
        return report
    if (root / "verdicts").is_dir() or root.name == ".repro-cache":
        report = DoctorReport(root=str(root), kind="cache")
        _check_cache(root, root, report, repair)
        _check_orphans(root, root, report, repair)
        return report
    raise DoctorError(
        f"{root} is neither a campaign directory (no spec.json) nor a "
        "verdict-cache root (no verdicts/)"
    )


# ----------------------------------------------------------------------
# Shared helpers.
# ----------------------------------------------------------------------

def _relative(root: Path, path: Path) -> str:
    try:
        return str(path.relative_to(root))
    except ValueError:
        return str(path)


def _quarantine(root: Path, path: Path, repair: bool) -> "str | None":
    """Move ``path`` into ``<root>/quarantine/`` when repairing."""
    if not repair:
        return None
    target_dir = root / QUARANTINE_DIR
    try:
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        # Never clobber an earlier quarantined artifact of the same name.
        counter = 0
        while target.exists():
            counter += 1
            target = target_dir / f"{path.name}.{counter}"
        os.replace(path, target)
    except OSError:
        return None
    return "quarantined"


# ----------------------------------------------------------------------
# Cache checks.
# ----------------------------------------------------------------------

def _check_cache(
    report_root: Path, cache_root: Path, report: DoctorReport, repair: bool
) -> None:
    verdict_dir = cache_root / "verdicts"
    if not verdict_dir.is_dir():
        report.findings.append(
            Finding(
                "info",
                "cache.empty",
                _relative(report_root, verdict_dir),
                "no verdicts directory (cache never written)",
            )
        )
    else:
        for shard_dir in sorted(verdict_dir.iterdir()):
            if not shard_dir.is_dir():
                continue
            for entry in sorted(shard_dir.glob("*.json")):
                _check_cache_entry(
                    report_root, cache_root, entry, report, repair
                )
    quarantine = cache_root / QUARANTINE_DIR
    if quarantine.is_dir():
        backlog = sum(1 for p in quarantine.iterdir() if p.is_file())
        if backlog:
            report.findings.append(
                Finding(
                    "info",
                    "cache.quarantine",
                    _relative(report_root, quarantine),
                    f"{backlog} quarantined artifact(s) awaiting post-mortem "
                    "(safe to delete)",
                )
            )


def _check_cache_entry(
    report_root: Path,
    cache_root: Path,
    entry: Path,
    report: DoctorReport,
    repair: bool,
) -> None:
    relative = _relative(report_root, entry)

    def bad(severity: str, detail: str) -> None:
        report.findings.append(
            Finding(
                severity,
                "cache.entry",
                relative,
                detail,
                _quarantine(cache_root, entry, repair),
            )
        )

    try:
        payload = json.loads(entry.read_text())
        if not isinstance(payload, dict):
            raise ValueError("not a JSON object")
    except (OSError, ValueError) as error:
        bad("error", f"corrupt entry ({error})")
        return
    if payload.get("cache_version") != CACHE_VERSION:
        bad(
            "warning",
            f"stale cache_version {payload.get('cache_version')!r} "
            f"(current {CACHE_VERSION})",
        )
        return
    if payload.get("checksum") != payload_checksum(payload):
        bad("error", "payload checksum mismatch (bit rot or torn write)")
        return
    if not _KEY_NAME.match(entry.name):
        bad("warning", "file name is not a sha256 content key")
        return
    if entry.parent.name != entry.name[:2]:
        bad(
            "warning",
            f"misplaced entry (in shard {entry.parent.name!r}, key "
            f"prescribes {entry.name[:2]!r}) — unreachable by lookup",
        )
        return
    report.healthy += 1


def _check_orphans(
    report_root: Path, root: Path, report: DoctorReport, repair: bool
) -> None:
    for orphan in find_orphan_temps(root):
        action = None
        if repair:
            try:
                orphan.unlink()
                action = "removed"
            except OSError:
                action = None
        report.findings.append(
            Finding(
                "warning",
                "storage.orphan_temp",
                _relative(report_root, orphan),
                "orphan atomic-write tempfile (crashed writer)",
                action,
            )
        )


# ----------------------------------------------------------------------
# Campaign checks.
# ----------------------------------------------------------------------

def _check_campaign(root: Path, report: DoctorReport, repair: bool) -> None:
    paths = CampaignPaths(root)
    spec_payload = read_json(paths.spec_path, warn=False)
    spec = None
    if spec_payload is None:
        report.findings.append(
            Finding(
                "error",
                "campaign.spec",
                "spec.json",
                "missing or corrupt — the spec is the campaign's identity "
                "and cannot be reconstructed; restore it or restart the "
                "campaign",
            )
        )
    else:
        try:
            spec = CampaignSpec.from_dict(spec_payload)
        except (TypeError, ValueError) as error:
            report.findings.append(
                Finding(
                    "error", "campaign.spec", "spec.json", f"invalid spec ({error})"
                )
            )
    if spec is None:
        _check_orphans(root, root, report, repair)
        return
    report.healthy += 1
    digest = spec_digest(spec)

    _check_manifest(root, paths, spec, digest, report, repair)
    pending = _check_shards(root, paths, spec, digest, report, repair)
    _check_queue(root, paths, spec, digest, pending, report, repair)
    _check_report(root, paths, spec, digest, pending, report, repair)

    if paths.cache_dir.is_dir():
        _check_cache(root, paths.cache_dir, report, repair)
    _check_orphans(root, root, report, repair)


def _check_manifest(
    root: Path,
    paths: CampaignPaths,
    spec: CampaignSpec,
    digest: str,
    report: DoctorReport,
    repair: bool,
) -> None:
    expected = build_manifest(spec)
    manifest = read_json(paths.manifest_path, warn=False)
    if manifest == expected:
        report.healthy += 1
        return
    if manifest is None:
        detail = "missing or corrupt"
    elif manifest.get("digest") != digest:
        detail = (
            f"digest {manifest.get('digest', '')[:12]!r} does not match "
            f"spec digest {digest[:12]!r}"
        )
    else:
        detail = "content does not match the spec-derived shard table"
    action = None
    if repair:
        atomic_write_json(paths.manifest_path, expected)
        action = "rewritten"
    report.findings.append(
        Finding("error", "campaign.manifest", "manifest.json", detail, action)
    )


def _check_shards(
    root: Path,
    paths: CampaignPaths,
    spec: CampaignSpec,
    digest: str,
    report: DoctorReport,
    repair: bool,
) -> list:
    """Validate every shard checkpoint; returns the pending shard ids."""
    completed = set()
    if paths.shards_dir.is_dir():
        for entry in sorted(paths.shards_dir.iterdir()):
            if not entry.is_file() or entry.name.startswith("."):
                continue
            relative = _relative(root, entry)
            match = _SHARD_NAME.match(entry.name)
            if match is None:
                report.findings.append(
                    Finding(
                        "warning",
                        "campaign.shard",
                        relative,
                        "foreign file in shards/ (not a checkpoint)",
                        _quarantine(root, entry, repair),
                    )
                )
                continue
            shard = int(match.group(1))
            if shard >= spec.n_shards:
                report.findings.append(
                    Finding(
                        "error",
                        "campaign.shard",
                        relative,
                        f"shard id {shard} out of range "
                        f"(spec has {spec.n_shards} shards)",
                        _quarantine(root, entry, repair),
                    )
                )
                continue
            expected = len(spec.shard_seeds(shard)) * len(spec.model_names())
            payload = read_json(entry, warn=False)
            issue = checkpoint_issue(payload, digest, shard, expected)
            if issue is not None:
                report.findings.append(
                    Finding(
                        "error",
                        "campaign.shard",
                        relative,
                        f"unusable checkpoint: {issue} — the shard will "
                        "re-run on resume",
                        _quarantine(root, entry, repair),
                    )
                )
                continue
            report.healthy += 1
            completed.add(shard)
    pending = [s for s in range(spec.n_shards) if s not in completed]
    if pending:
        report.findings.append(
            Finding(
                "info",
                "campaign.pending",
                "shards/",
                f"{len(pending)} of {spec.n_shards} shard(s) pending — "
                f"finish with: repro campaign resume {root}",
            )
        )
    return pending


def _check_report(
    root: Path,
    paths: CampaignPaths,
    spec: CampaignSpec,
    digest: str,
    pending: list,
    report: DoctorReport,
    repair: bool,
) -> None:
    if not paths.report_path.is_file():
        return
    payload = read_json(paths.report_path, warn=False)
    quarantined: "list[int]" = []
    if isinstance(payload, dict) and payload.get("partial"):
        try:
            quarantined = sorted(
                int(s) for s in payload.get("quarantined_shards", [])
            )
        except (TypeError, ValueError):
            quarantined = []
    # A partial report is legitimate exactly when its quarantined-shard
    # annotation accounts for every missing checkpoint.
    unexplained = [s for s in pending if s not in set(quarantined)]
    if unexplained:
        detail = (
            f"report exists but {len(unexplained)} shard(s) are pending — "
            "it cannot reflect the full campaign"
        )
        if quarantined:
            detail += (
                f" (partial annotation covers only {quarantined}, "
                f"not {unexplained})"
            )
        report.findings.append(
            Finding(
                "error",
                "campaign.report",
                "report.json",
                detail,
                _quarantine(root, paths.report_path, repair),
            )
        )
        return
    if quarantined:
        report.findings.append(
            Finding(
                "info",
                "campaign.report",
                "report.json",
                f"partial report: shard(s) {quarantined} quarantined as "
                "poison and excluded from the aggregate",
            )
        )
    records = []
    for shard in range(spec.n_shards):
        if shard in set(quarantined):
            continue
        records.extend(read_json(paths.shard_path(shard), warn=False)["records"])
    expected = (
        json.dumps(
            aggregate_report(spec, records, quarantined=quarantined),
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    try:
        found = paths.report_path.read_text()
    except OSError as error:
        found = None
        detail = f"unreadable ({error})"
    else:
        detail = "report does not match the aggregate of the checkpoints"
    if found == expected:
        report.healthy += 1
        return
    action = None
    if repair:
        atomic_write_json(
            paths.report_path,
            aggregate_report(spec, records, quarantined=quarantined),
        )
        action = "rewritten"
    report.findings.append(
        Finding("error", "campaign.report", "report.json", detail, action)
    )


# ----------------------------------------------------------------------
# Work-queue checks.
# ----------------------------------------------------------------------

_LEASE_NAME = re.compile(r"^lease-(\d{4})\.json$")
_DONE_NAME = re.compile(r"^done-(\d{4})\.marker$")
_FAILED_NAME = re.compile(r"^failed-(\d{4})\.json$")
_QUARANTINED_NAME = re.compile(r"^quarantined-(\d{4})\.marker$")
_TOMBSTONE_NAME = re.compile(r"^\.reclaim-\d{4}-.*\.tmp$")


def _check_queue(
    root: Path,
    paths: CampaignPaths,
    spec: CampaignSpec,
    digest: str,
    pending: list,
    report: DoctorReport,
    repair: bool,
) -> None:
    """Validate the (derivable) queue store against the checkpoints.

    The queue is pure coordination state — the checkpoints are the
    source of truth — so every repair here is safe: reclaiming an
    expired lease re-opens the shard, resetting a ``done`` row without
    a checkpoint behind it makes the shard run again, and at worst a
    healthy worker re-computes deterministic records.
    """
    completed = {s for s in range(spec.n_shards) if s not in set(pending)}
    if paths.queue_db_path.is_file():
        _check_sqlite_queue(root, paths, spec, digest, completed, report, repair)
    if paths.queue_dir.is_dir():
        _check_file_queue(root, paths, spec, digest, completed, report, repair)


def _check_sqlite_queue(
    root: Path,
    paths: CampaignPaths,
    spec: CampaignSpec,
    digest: str,
    completed: set,
    report: DoctorReport,
    repair: bool,
) -> None:
    import sqlite3
    import time as _time

    path = paths.queue_db_path
    relative = _relative(root, path)
    try:
        conn = sqlite3.connect(path, timeout=5.0, isolation_level=None)
    except sqlite3.Error as error:
        report.findings.append(
            Finding(
                "error",
                "campaign.queue",
                relative,
                f"cannot open queue database ({error})",
                _quarantine(root, path, repair),
            )
        )
        return
    try:
        try:
            row = conn.execute(
                "SELECT value FROM meta WHERE key='digest'"
            ).fetchone()
            rows = conn.execute(
                "SELECT shard, state, worker, expires FROM shards"
            ).fetchall()
        except sqlite3.Error as error:
            conn.close()
            conn = None
            report.findings.append(
                Finding(
                    "error",
                    "campaign.queue",
                    relative,
                    f"corrupt queue database ({error})",
                    _quarantine(root, path, repair),
                )
            )
            return
        if row is None or row[0] != digest:
            found = (row[0][:12] if row else "missing")
            conn.close()
            conn = None
            report.findings.append(
                Finding(
                    "error",
                    "campaign.queue",
                    relative,
                    f"queue digest {found!r} does not match campaign "
                    f"digest {digest[:12]!r} — foreign queue",
                    _quarantine(root, path, repair),
                )
            )
            return
        now = _time.time()
        healthy = True
        quarantined = []
        for shard, state, worker, expires in rows:
            if shard < 0 or shard >= spec.n_shards:
                action = None
                if repair:
                    conn.execute("DELETE FROM shards WHERE shard=?", (shard,))
                    action = "removed"
                report.findings.append(
                    Finding(
                        "error",
                        "campaign.queue",
                        relative,
                        f"shard id {shard} out of range "
                        f"(spec has {spec.n_shards} shards)",
                        action,
                    )
                )
                healthy = False
            elif state == "leased" and (expires is None or expires < now):
                action = None
                if repair:
                    conn.execute(
                        "UPDATE shards SET state='open', worker=NULL,"
                        " token=NULL, expires=NULL WHERE shard=?",
                        (shard,),
                    )
                    action = "reclaimed"
                report.findings.append(
                    Finding(
                        "warning",
                        "campaign.queue",
                        relative,
                        f"expired lease on shard {shard} "
                        f"(worker {worker or '?'}) — orphaned by a "
                        "crashed or partitioned worker",
                        action,
                    )
                )
                healthy = False
            elif state == "done" and shard not in completed:
                action = None
                if repair:
                    conn.execute(
                        "UPDATE shards SET state='open', worker=NULL,"
                        " token=NULL, expires=NULL, failures='[]'"
                        " WHERE shard=?",
                        (shard,),
                    )
                    action = "reset"
                report.findings.append(
                    Finding(
                        "error",
                        "campaign.queue",
                        relative,
                        f"shard {shard} marked done in the queue but has "
                        "no valid checkpoint — it would never re-run",
                        action,
                    )
                )
                healthy = False
            elif state == "quarantined":
                quarantined.append(shard)
        if quarantined:
            report.findings.append(
                Finding(
                    "info",
                    "campaign.queue",
                    relative,
                    f"shard(s) {sorted(quarantined)} quarantined as poison "
                    "(reset with repro.campaign.queue reset to retry them)",
                )
            )
        if healthy:
            report.healthy += 1
    finally:
        if conn is not None:
            conn.close()


def _check_file_queue(
    root: Path,
    paths: CampaignPaths,
    spec: CampaignSpec,
    digest: str,
    completed: set,
    report: DoctorReport,
    repair: bool,
) -> None:
    import time as _time

    queue_dir = paths.queue_dir
    digest_path = queue_dir / "digest.json"
    found = read_json(digest_path, warn=False)
    if isinstance(found, dict) and found.get("digest") != digest:
        report.findings.append(
            Finding(
                "error",
                "campaign.queue",
                _relative(root, digest_path),
                f"queue digest {str(found.get('digest'))[:12]!r} does not "
                f"match campaign digest {digest[:12]!r} — foreign queue",
            )
        )
        return
    now = _time.time()
    healthy = True
    quarantined = []

    def remove(path: Path) -> "str | None":
        if not repair:
            return None
        try:
            path.unlink()
        except OSError:
            return None
        return "removed"

    for entry in sorted(queue_dir.iterdir()):
        name = entry.name
        relative = _relative(root, entry)
        if _TOMBSTONE_NAME.match(name):
            report.findings.append(
                Finding(
                    "warning",
                    "campaign.queue",
                    relative,
                    "leftover reclaim tombstone (reclaimer crashed "
                    "mid-rename; harmless but dead weight)",
                    remove(entry),
                )
            )
            healthy = False
            continue
        match = _LEASE_NAME.match(name)
        if match:
            shard = int(match.group(1))
            lease = read_json(entry, warn=False)
            if shard >= spec.n_shards:
                report.findings.append(
                    Finding(
                        "error",
                        "campaign.queue",
                        relative,
                        f"lease for out-of-range shard {shard} "
                        f"(spec has {spec.n_shards} shards)",
                        remove(entry),
                    )
                )
                healthy = False
            elif not isinstance(lease, dict):
                report.findings.append(
                    Finding(
                        "warning",
                        "campaign.queue",
                        relative,
                        "torn or corrupt lease file — unclaimable until "
                        "reclaimed",
                        remove(entry),
                    )
                )
                healthy = False
            elif lease.get("expires", 0) < now:
                action = remove(entry)
                report.findings.append(
                    Finding(
                        "warning",
                        "campaign.queue",
                        relative,
                        f"expired lease on shard {shard} "
                        f"(worker {lease.get('worker', '?')}) — orphaned "
                        "by a crashed or partitioned worker",
                        "reclaimed" if action else None,
                    )
                )
                healthy = False
            else:
                report.healthy += 1
            continue
        match = _DONE_NAME.match(name)
        if match:
            shard = int(match.group(1))
            if shard >= spec.n_shards or shard not in completed:
                action = remove(entry)
                report.findings.append(
                    Finding(
                        "error",
                        "campaign.queue",
                        relative,
                        f"shard {shard} has a done marker but no valid "
                        "checkpoint — it would never re-run",
                        "reset" if action else None,
                    )
                )
                healthy = False
            else:
                report.healthy += 1
            continue
        match = _QUARANTINED_NAME.match(name)
        if match:
            quarantined.append(int(match.group(1)))
            continue
        match = _FAILED_NAME.match(name)
        if match:
            history = read_json(entry, warn=False)
            if not isinstance(history, dict):
                report.findings.append(
                    Finding(
                        "warning",
                        "campaign.queue",
                        relative,
                        "corrupt failure-history file (resets the shard's "
                        "strike count)",
                        remove(entry),
                    )
                )
                healthy = False
            continue
    if quarantined:
        report.findings.append(
            Finding(
                "info",
                "campaign.queue",
                _relative(root, queue_dir),
                f"shard(s) {sorted(quarantined)} quarantined as poison "
                "(reset with repro.campaign.queue reset to retry them)",
            )
        )
    if healthy:
        report.healthy += 1
