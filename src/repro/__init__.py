"""repro — reproduction of "The Impact of Communication Models on
Routing-Algorithm Convergence" (Jaggard, Ramachandran, Wright; ICDCS 2009).

Public API highlights
---------------------

* :mod:`repro.core` — the Stable Paths Problem, canonical gadgets,
  stable-solution solvers, dispute-wheel analysis.
* :mod:`repro.models` — the 24-model communication taxonomy.
* :mod:`repro.engine` — the routing algorithm of Def. 2.3, fair
  schedulers, convergence detection, and a bounded model checker for
  oscillation reachability.
* :mod:`repro.realization` — realization relations between models,
  the paper's foundational facts, the transitivity closure that
  regenerates Figures 3 and 4, and constructive sequence transforms.
* :mod:`repro.analysis` — experiment drivers and reporting.
"""

from . import analysis, core, engine, models, realization
from .core import SPPBuilder, SPPInstance
from .core import instances as canonical
from .engine import can_oscillate, simulate
from .models import ALL_MODELS, CommunicationModel, model

__version__ = "1.0.0"

__all__ = [
    "ALL_MODELS",
    "CommunicationModel",
    "SPPBuilder",
    "SPPInstance",
    "analysis",
    "canonical",
    "can_oscillate",
    "core",
    "engine",
    "model",
    "models",
    "realization",
    "simulate",
]
