"""repro — reproduction of "The Impact of Communication Models on
Routing-Algorithm Convergence" (Jaggard, Ramachandran, Wright; ICDCS 2009).

Public API highlights
---------------------

* :mod:`repro.core` — the Stable Paths Problem, canonical gadgets,
  stable-solution solvers, dispute-wheel analysis.
* :mod:`repro.models` — the 24-model communication taxonomy.
* :mod:`repro.engine` — the routing algorithm of Def. 2.3, fair
  schedulers, convergence detection, and a bounded model checker for
  oscillation reachability.
* :mod:`repro.realization` — realization relations between models,
  the paper's foundational facts, the transitivity closure that
  regenerates Figures 3 and 4, and constructive sequence transforms.
* :mod:`repro.analysis` — experiment drivers and reporting.
* :mod:`repro.campaign` — resumable sharded survey campaigns over
  random instance populations.
* :mod:`repro.faults` — deterministic, seeded fault injection
  (chaos testing of the storage/campaign/telemetry layers) and the
  ``repro doctor`` integrity checks in :mod:`repro.doctor`.

The names in ``__all__`` are the **stable public API**: entry points
take a :class:`RunConfig` (engine, reduction, cache, workers, bounds,
telemetry) instead of ad-hoc keyword arguments, and
``tests/test_api_surface.py`` pins this surface so accidental drift
fails CI.  See ``docs/api.md``.
"""

from . import analysis, campaign, core, engine, faults, models, realization, serve
from .analysis import matrix_certification, survey_convergence
from .campaign import Campaign, CampaignHandle, CampaignSpec
from .config import RunConfig
from .faults import FaultPlan
from .core import SPPBuilder, SPPInstance
from .core import instances as canonical
from .core.generators import instance_family, random_instance
from .engine import can_oscillate, simulate
from .engine.parallel import run_explorations, run_simulations
from .models import ALL_MODELS, CommunicationModel, model

__version__ = "1.1.0"

__all__ = [
    "ALL_MODELS",
    "Campaign",
    "CampaignHandle",
    "CampaignSpec",
    "CommunicationModel",
    "FaultPlan",
    "RunConfig",
    "SPPBuilder",
    "SPPInstance",
    "analysis",
    "campaign",
    "canonical",
    "can_oscillate",
    "core",
    "engine",
    "faults",
    "instance_family",
    "matrix_certification",
    "model",
    "models",
    "random_instance",
    "realization",
    "run_explorations",
    "run_simulations",
    "serve",
    "simulate",
    "survey_convergence",
]
