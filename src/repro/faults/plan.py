"""Fault plans, rules, and the process-wide armed state.

**Sites.**  A fault point is a named call site::

    from ..faults import fault_point
    blob = fault_point("cache.write", blob)

Disarmed (the default) it returns its payload untouched after one
global ``None`` check.  Armed, every rule whose ``site`` pattern
matches fires its behaviour: raising, mutating the payload, sleeping,
or killing the process.  Sites threaded through the package:

========================  ====================================================
site                      where
========================  ====================================================
``cache.read``            before a verdict-cache entry is read from disk
``cache.write``           the serialized entry bytes, before the atomic write
``checkpoint.write``      the serialized campaign artifact (spec, manifest,
                          shard checkpoint, report), before the atomic write
``campaign.shard``        entry of :meth:`repro.campaign.Campaign.run_shard`
``worker.run``            entry of a fan-out worker task
``telemetry.emit``        a JSONL event line, before it is appended
``serve.request``         admission of one verdict-server query
``serve.compute``         entry of one cold-miss batch computation (a raise
                          here exercises the leader-dies singleflight path)
``serve.shed``            a query rejected by the bounded batch queue
``serve.client.send``     one :class:`~repro.serve.client.ServeClient` HTTP
                          attempt, before the request leaves the process
``campaign.claim``        one worker → coordinator claim attempt
``campaign.heartbeat``    one worker → coordinator lease renewal attempt
``campaign.complete``     one worker → coordinator shard-completion attempt
========================  ====================================================

**Determinism.**  Each rule owns a :class:`random.Random` seeded from
``sha256(plan.seed, rule.site, rule.kind, rule index)``, consulted only
when ``probability < 1``; hit/firing counters are per-rule.  A plan
armed over a serial run therefore fires at exactly the same sites in
every replay.  (Forked workers inherit the armed state at fork time;
each worker then replays its own deterministic per-rule stream.)

**Propagation.**  Worker entry points call
:func:`ensure_armed_from_env`, so exporting :data:`FAULT_PLAN_ENV_VAR`
(the path of a plan JSON) arms subprocesses that did not inherit the
armed state by fork — the CLI's ``--fault-plan`` flag does both.
"""

from __future__ import annotations

import dataclasses
import errno
import fnmatch
import hashlib
import json
import os
import random
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV_VAR",
    "ArmedPlan",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "arm",
    "armed",
    "disarm",
    "ensure_armed_from_env",
    "fault_point",
]

#: Environment fallback: path of a plan JSON to arm on first use
#: (checked by the CLI and by fan-out worker entry points).
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: The failure behaviours a rule can inject.
FAULT_KINDS = (
    "raise",      # OSError(EIO) at the site
    "enospc",     # OSError(ENOSPC) at the site
    "truncate",   # cut the payload (str/bytes) in half: a torn write
    "bitflip",    # flip one bit of the payload: silent corruption
    "sigkill",    # SIGKILL the current process: a hard crash
    "latency",    # sleep latency_s: a slow disk / network stall
    "connreset",  # ConnectionResetError: the peer dropped the connection
)


class FaultInjected(OSError):
    """An :class:`OSError` raised by an armed fault point.

    A subclass so tests (and curious ``except`` clauses) can tell an
    injected failure from an organic one; production code must treat it
    exactly like the real thing.
    """


@dataclass(frozen=True)
class FaultRule:
    """One site-pattern → behaviour mapping of a plan."""

    #: Site name, or an ``fnmatch`` glob (``"cache.*"``).
    site: str
    kind: str
    #: Chance of firing per eligible hit; 1.0 fires deterministically.
    probability: float = 1.0
    #: Skip the first ``after`` matching hits (e.g. let one checkpoint
    #: land before crashing).
    after: int = 0
    #: Maximum firings (``None`` = unlimited) — transient faults.
    times: "int | None" = None
    #: Sleep for ``kind="latency"``, in seconds.
    latency_s: float = 0.01
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("rule site must be non-empty")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.after < 0:
            raise ValueError("after must be non-negative")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be at least 1 (or null for unlimited)")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault rules (JSON-declarable)."""

    name: str = "chaos"
    seed: int = 0
    rules: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "rules",
            tuple(
                rule if isinstance(rule, FaultRule) else FaultRule(**rule)
                for rule in self.rules
            ),
        )

    # -- serialization --------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "rules": [dataclasses.asdict(rule) for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown fault plan key(s): {', '.join(unknown)}")
        rules = tuple(FaultRule(**rule) for rule in data.get("rules", ()))
        return cls(
            name=data.get("name", "chaos"),
            seed=data.get("seed", 0),
            rules=rules,
        )

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    def to_file(self, path) -> None:
        Path(path).write_text(self.to_json())


class _RuleState:
    """Mutable firing state of one armed rule."""

    __slots__ = ("rule", "rng", "hits", "fired")

    def __init__(self, rule: FaultRule, seed: int, index: int) -> None:
        self.rule = rule
        digest = hashlib.sha256(
            f"{seed}:{index}:{rule.site}:{rule.kind}".encode("utf-8")
        ).digest()
        self.rng = random.Random(int.from_bytes(digest[:8], "big"))
        self.hits = 0
        self.fired = 0


class ArmedPlan:
    """A plan plus its per-rule counters and RNG streams."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._states = [
            _RuleState(rule, plan.seed, index)
            for index, rule in enumerate(plan.rules)
        ]
        #: Every firing, as ``(site, kind)`` in order — the replayable
        #: trace a chaos test can assert against.
        self.log: list = []

    def fire(self, site: str, payload):
        for state in self._states:
            rule = state.rule
            if not fnmatch.fnmatchcase(site, rule.site):
                continue
            state.hits += 1
            if state.hits <= rule.after:
                continue
            if rule.times is not None and state.fired >= rule.times:
                continue
            if rule.probability < 1.0 and state.rng.random() >= rule.probability:
                continue
            state.fired += 1
            self.log.append((site, rule.kind))
            payload = self._apply(state, site, payload)
        return payload

    def _apply(self, state: _RuleState, site: str, payload):
        rule = state.rule
        if rule.kind == "raise":
            raise FaultInjected(errno.EIO, f"{rule.message} [{site}]")
        if rule.kind == "enospc":
            raise FaultInjected(errno.ENOSPC, f"{rule.message} [{site}]")
        if rule.kind == "truncate":
            if isinstance(payload, (str, bytes, bytearray)) and payload:
                return payload[: len(payload) // 2]
            return payload
        if rule.kind == "bitflip":
            return _bitflip(payload, state.rng)
        if rule.kind == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
            return payload  # pragma: no cover — the line above does not return
        if rule.kind == "latency":
            time.sleep(rule.latency_s)
            return payload
        if rule.kind == "connreset":
            raise ConnectionResetError(errno.ECONNRESET, f"{rule.message} [{site}]")
        raise AssertionError(f"unreachable kind {rule.kind!r}")


def _bitflip(payload, rng: random.Random):
    """Flip one deterministic bit of a str/bytes payload."""
    if isinstance(payload, (bytes, bytearray)) and payload:
        index = rng.randrange(len(payload))
        flipped = bytearray(payload)
        flipped[index] ^= 1 << rng.randrange(8)
        return bytes(flipped)
    if isinstance(payload, str) and payload:
        index = rng.randrange(len(payload))
        # XOR on the low bit always yields a *different* character and
        # stays within the Basic Multilingual Plane for ASCII payloads.
        return payload[:index] + chr(ord(payload[index]) ^ 1) + payload[index + 1 :]
    return payload


# ----------------------------------------------------------------------
# The process-wide armed state.
# ----------------------------------------------------------------------
_armed: "ArmedPlan | None" = None


def fault_point(site: str, payload=None):
    """Pass ``payload`` through the fault layer at ``site``.

    The no-op when nothing is armed; otherwise fires every matching
    rule of the armed plan (which may raise, mutate the returned
    payload, sleep, or kill the process).
    """
    current = _armed
    if current is None:
        return payload
    return current.fire(site, payload)


def arm(plan: FaultPlan) -> ArmedPlan:
    """Arm ``plan`` process-wide; returns the armed state (counters/log)."""
    global _armed
    _armed = ArmedPlan(plan)
    return _armed


def disarm() -> "ArmedPlan | None":
    """Disarm; returns the previously armed state, if any."""
    global _armed
    previous = _armed
    _armed = None
    return previous


def active_plan() -> "FaultPlan | None":
    """The armed plan, or ``None``."""
    return None if _armed is None else _armed.plan


@contextmanager
def armed(plan: FaultPlan):
    """Context manager: arm ``plan`` for the block, disarm after."""
    state = arm(plan)
    try:
        yield state
    finally:
        disarm()


def ensure_armed_from_env() -> bool:
    """Arm the plan named by :data:`FAULT_PLAN_ENV_VAR`, if not armed.

    Called by worker entry points and the CLI so chaos harnesses can
    reach spawned subprocesses.  Returns ``True`` when a plan is armed
    after the call.  A set-but-unreadable plan path raises — a chaos
    run that silently tested nothing would be worse than a crash.
    """
    if _armed is not None:
        return True
    path = os.environ.get(FAULT_PLAN_ENV_VAR)
    if not path:
        return False
    arm(FaultPlan.from_file(path))
    return True
