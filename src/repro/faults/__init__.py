"""``repro.faults`` — deterministic, seeded fault injection.

The chaos layer the storage-hardening guarantees are tested against
(see ``docs/robustness.md``).  Production code threads named
:func:`fault_point` sites through its I/O paths (``cache.write``,
``checkpoint.write``, ``worker.run``, ``telemetry.emit``, …); a
:class:`FaultPlan` — JSON-declarable, like a campaign spec — maps
sites to failure behaviours (raise ``EIO``/``ENOSPC``, truncate or
bit-flip the payload before it hits disk, SIGKILL the process, inject
latency) with per-site probabilities drawn from a seeded RNG, so every
chaos run is replayable.

With no plan armed (the default), :func:`fault_point` is a
module-level no-op — one global ``None`` check — so the engines and
the ``BENCH_*`` perf gates are untouched.

This package is deliberately the bottom of the layering: it imports
nothing from the rest of ``repro`` (stdlib only), so any module — the
telemetry sink included — may call into it.
"""

from .plan import (
    FAULT_KINDS,
    FAULT_PLAN_ENV_VAR,
    ArmedPlan,
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    arm,
    armed,
    disarm,
    ensure_armed_from_env,
    fault_point,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV_VAR",
    "ArmedPlan",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "arm",
    "armed",
    "disarm",
    "ensure_armed_from_env",
    "fault_point",
]
