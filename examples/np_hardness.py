"""SAT as routing policy: why deciding stability is NP-complete.

Run with::

    python examples/np_hardness.py

Griffin–Shepherd–Wilfong proved that deciding whether an SPP instance
has a stable solution is NP-complete (the context for the paper's
Sec. 4 discussion).  This example makes the reduction executable:

* a CNF formula becomes a network — one DISAGREE pair per variable,
  one conditionally-defused BAD-GADGET triangle per clause;
* satisfying assignments correspond exactly to stable routings;
* an unsatisfiable formula yields a network that **cannot converge
  under any communication model**.
"""

from repro.core.sat import dpll
from repro.core.satgadgets import (
    assignment_from_solution,
    formula_to_spp,
    solution_from_assignment,
)
from repro.core.paths import format_path
from repro.core.solutions import enumerate_stable_solutions
from repro.engine.explorer import can_oscillate
from repro.models.taxonomy import model


def main() -> None:
    formula = ((1, -2), (2, 3), (-1, -3))
    print(f"formula: {formula}")
    instance = formula_to_spp(formula)
    print(
        f"encoded as {instance.name}: {len(instance.nodes)} nodes, "
        f"{len(instance.edges)} edges"
    )

    model_ = dpll(formula)
    print(f"\nDPLL model: {model_}")
    solution = solution_from_assignment(formula, model_)
    print("the corresponding stable routing:")
    for node, path in sorted(solution.items()):
        print(f"  {node}: {format_path(path)}")

    solutions = list(enumerate_stable_solutions(instance))
    print(f"\nstable routings found by brute force: {len(solutions)}")
    decoded = {
        tuple(sorted(assignment_from_solution(formula, s).items()))
        for s in solutions
    }
    print(f"distinct boolean assignments they decode to: {len(decoded)}")

    unsat = ((1,), (-1,))
    print(f"\nunsatisfiable core {unsat}:")
    core = formula_to_spp(unsat)
    print(f"  stable routings: {len(list(enumerate_stable_solutions(core)))}")
    for name in ("R1O", "REA"):
        verdict = can_oscillate(core, model(name), queue_bound=2)
        print(
            f"  {name}: oscillation witness found={verdict.oscillates} "
            f"({verdict.states_explored} states)"
        )
    print(
        "\nPolicy autonomy is expressive enough to encode boolean\n"
        "satisfiability — which is exactly why convergence analysis\n"
        "needs sufficient conditions (dispute wheels) and why the\n"
        "communication model's role matters for the residual cases."
    )


if __name__ == "__main__":
    main()
