"""Regenerate Figures 3 and 4 from the foundational results.

Run with::

    python examples/taxonomy_matrix.py

Encodes the paper's foundational propositions and theorems, runs the
Sec. 3.4 transitivity rules to fixpoint, prints both realization
matrices in the paper's notation, and diffs every cell against the
published tables.
"""

from repro.analysis import reporting
from repro.realization.closure import derive_matrix
from repro.realization.facts import foundational_facts
from repro.realization.paper_tables import (
    FIGURE3_COLUMNS,
    FIGURE4_COLUMNS,
    compare_with_derived,
)


def main() -> None:
    facts = foundational_facts()
    print(f"foundational facts encoded: {len(facts)}")
    for fact in facts[:5]:
        print(f"  e.g. {fact}")
    print("  ...")
    print()

    matrix = derive_matrix()

    print("Derived Figure 3 — realization by reliable-channel models")
    print("(rows: the realized model A; columns: the realizing model B;")
    print(" 4 exact, 3 with repetition, 2 subsequence, -1 oscillations lost)")
    print()
    print(reporting.render_figure3(matrix))
    print()
    print("Derived Figure 4 — realization by unreliable-channel models")
    print()
    print(reporting.render_figure4(matrix))
    print()

    for figure, columns in (
        ("Figure 3", FIGURE3_COLUMNS),
        ("Figure 4", FIGURE4_COLUMNS),
    ):
        comparisons = compare_with_derived(matrix, columns=columns)
        print(f"{figure} vs the paper:")
        print(reporting.render_comparison_summary(comparisons))
        print()

    universal = ", ".join(m.name for m in matrix.universal_realizers())
    lost = ", ".join(m.name for m in matrix.non_preservers())
    print(f"models capturing ALL oscillations: {universal}")
    print(f"models provably losing some oscillations: {lost}")


if __name__ == "__main__":
    main()
