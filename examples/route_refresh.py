"""Route Refresh (RFC 2918) as a communication-model switch.

Run with::

    python examples/route_refresh.py

Sec. 4 of the paper observes that BGP's optional *Route Refresh
Capability* lets a router learn a neighbor's **current** route choice
on demand — which is exactly what the polling models (count A) capture:
an activation discards the queued backlog and acts on the newest
announcement only.

This example makes the observation concrete on the Fig. 6 gadget,
whose fate differs between the two deployment styles:

* plain event-driven BGP (model REO: act on one queued update per
  neighbor) — the gadget can oscillate forever;
* BGP with route refresh (model REA: always act on the neighbor's
  current state) — the gadget provably cannot oscillate.
"""

from repro.analysis.experiments import (
    FIG6_REO_EXPECTED,
    FIG6_REO_SCHEDULE,
    run_fig6_reo_trace,
)
from repro.core.instances import fig6_gadget
from repro.engine.convergence import simulate
from repro.engine.explorer import can_oscillate
from repro.models.taxonomy import model


def main() -> None:
    instance = fig6_gadget()
    print(instance.describe())

    # --- Without route refresh: the REO oscillation of Ex. A.2. --------
    _, matched, recurrence = run_fig6_reo_trace()
    print("\nPlain message-queue processing (REO):")
    print(f"  paper's 13-step schedule reproduced exactly: {matched}")
    print(f"  oscillation certified (state recurrence): {recurrence}")
    print(f"  schedule: {' '.join(FIG6_REO_SCHEDULE)}")
    print(f"  choices:  {' '.join(FIG6_REO_EXPECTED)}")

    # --- With route refresh: polling semantics. -------------------------
    print("\nWith Route Refresh (REA semantics):")
    verdict = can_oscillate(instance, model("REA"), queue_bound=2)
    print(
        f"  oscillation possible: {verdict.oscillates} "
        f"(complete search over {verdict.states_explored} states)"
    )
    for seed in range(3):
        result = simulate(instance, model("REA"), seed=seed)
        print(
            f"  fair run (seed {seed}): converged={result.converged} "
            f"in {result.steps} steps"
        )

    print(
        "\nEnabling refresh turns the same router code from 'may diverge'\n"
        "into 'provably converges' on this topology — the operational\n"
        "reading of the paper's polling-model results."
    )


if __name__ == "__main__":
    main()
