"""Convergence-rate survey across the taxonomy (experiment E10).

Run with::

    python examples/convergence_survey.py [n_instances] [seeds]

Generates random policy instances, runs fair random executions of each
under a spread of communication models, and tabulates how often each
model reaches a fixed point — the quantitative counterpart of the
paper's qualitative ordering (polling ≥ everything; reliability alone
changes little).
"""

import sys

from repro.analysis.stats import survey_convergence
from repro.core.dispute import has_dispute_wheel
from repro.core.generators import instance_family
from repro.models.taxonomy import model

MODELS = ("R1O", "REO", "R1S", "RMS", "REA", "RMA", "U1O", "UMS", "UEA")


def main() -> None:
    n_instances = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    seeds = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    from repro.core.instances import bad_gadget, disagree

    instances = list(
        instance_family(n_instances, base_seed=100, n_nodes=4, policy="random")
    )
    # Mix in the paper's gadgets so the model separation is visible even
    # when the random draw happens to be benign.
    instances += [disagree(), bad_gadget()]
    wheels = sum(has_dispute_wheel(instance) for instance in instances)
    print(
        f"{len(instances)} instances ({wheels} contain dispute wheels, "
        "including DISAGREE and BAD-GADGET), "
        f"{seeds} fair executions per (instance, model), "
        f"{len(MODELS)} models\n"
    )

    survey = survey_convergence(
        instances,
        [model(name) for name in MODELS],
        seeds_per_instance=seeds,
        max_steps=250,
    )
    print(survey.format_table())
    print()

    print(
        f"poll-all (REA): {survey.rate('REA'):.0%} vs event-driven "
        f"message passing (R1O): {survey.rate('R1O'):.0%}.\n"
        "Polling discards stale queue contents, which removes entire\n"
        "classes of oscillations (Figure 3's -1 columns); the residual\n"
        "failures on both sides are BAD-GADGET, which no model can save."
    )


if __name__ == "__main__":
    main()
