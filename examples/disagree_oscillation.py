"""Example A.1, mechanized: drive DISAGREE into its R1O oscillation.

Run with::

    python examples/disagree_oscillation.py

Replays the paper's oscillation schedule step by step (d announces,
x and y each learn the direct route, then alternate reading each
other's channel), prints the paper-style trace table, and certifies
the oscillation with the bounded model checker's witness.
"""

from repro.analysis.traces import format_trace_table
from repro.core.instances import disagree
from repro.engine.activation import ActivationEntry
from repro.engine.convergence import find_oscillation_evidence
from repro.engine.execution import Execution
from repro.engine.explorer import can_oscillate
from repro.models.taxonomy import model


def main() -> None:
    instance = disagree()
    print(instance.describe())
    print()

    # The hand-built Ex. A.1 schedule (R1O: one channel, one message).
    execution = Execution(instance)
    execution.step(ActivationEntry.single("d", ("x", "d")))   # d announces
    execution.step(ActivationEntry.single("x", ("d", "x")))   # x -> xd
    execution.step(ActivationEntry.single("y", ("d", "y")))   # y -> yd
    for _ in range(3):
        execution.step(ActivationEntry.single("x", ("y", "x")))
        execution.step(ActivationEntry.single("y", ("x", "y")))
        # Fairness housekeeping: d drains its channels (no effect on π).
        execution.step(ActivationEntry.single("d", ("x", "d"), count=4))
        execution.step(ActivationEntry.single("d", ("y", "d"), count=4))

    print(format_trace_table(execution.trace))
    evidence = find_oscillation_evidence(execution.trace)
    print(f"\nfull-state recurrence with changing π: steps {evidence}")

    # Independent certification by exhaustive search.
    print("\nExhaustive verdicts (queue bound 3):")
    for name in ("R1O", "RMO", "R1S", "REO", "REF", "R1A", "RMA", "REA"):
        verdict = can_oscillate(instance, model(name), queue_bound=3)
        print(
            f"  {name}: oscillates={verdict.oscillates} "
            f"complete={verdict.complete}"
        )

    witness = can_oscillate(instance, model("R1O"), queue_bound=3).witness
    print(
        f"\nwitness lasso: {len(witness.prefix)}-step prefix, "
        f"period-{witness.period()} cycle through "
        f"{len(witness.assignments)} distinct assignments"
    )


if __name__ == "__main__":
    main()
