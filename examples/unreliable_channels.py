"""Routing over lossy channels — the unreliable half of the taxonomy.

Run with::

    python examples/unreliable_channels.py

Demonstrates, on the Fig. 7 gadget:

* a fair random U1O execution (every read may drop its message) still
  converges to the unique stable solution;
* Thm. 3.7's construction — an unreliable U1O schedule transformed into
  a *reliable* R1S schedule that induces the exact same assignment
  sequence ("drops are just deferred batched reads"); and
* heavy-loss soak testing: convergence survives 70% message loss.
"""

from repro.core.instances import fig7_gadget
from repro.core.paths import format_path
from repro.core.solutions import enumerate_stable_solutions
from repro.engine.convergence import simulate
from repro.engine.execution import Execution
from repro.engine.schedulers import RandomScheduler
from repro.models.taxonomy import model
from repro.realization.transforms import batch_u1o_to_r1s
from repro.realization.verify import is_exact


def main() -> None:
    instance = fig7_gadget()
    print(instance.describe())
    (solution,) = enumerate_stable_solutions(instance)
    print("\nunique stable solution:")
    for node, path in sorted(solution.items()):
        print(f"  {node}: {format_path(path)}")

    # --- lossy execution ------------------------------------------------
    result = simulate(
        instance,
        model("U1O"),
        scheduler=RandomScheduler(instance, model("U1O"), seed=4, drop_prob=0.3),
        max_steps=3000,
    )
    print(
        f"\nU1O with 30% drops: converged={result.converged} "
        f"in {result.steps} steps"
    )
    assert result.final_assignment == solution

    # --- Thm. 3.7: drops as deferred reads ------------------------------
    # DISAGREE keeps its channels busy (two messages queue up during the
    # oscillation), so drops genuinely occur in the recorded run.
    from repro.core.instances import disagree

    gadget = disagree()
    execution = Execution(gadget)
    scheduler = RandomScheduler(gadget, model("U1O"), seed=7, drop_prob=0.5)
    schedule = []
    for _ in range(200):
        entry = scheduler.next_entry(execution.state)
        schedule.append(entry)
        execution.step(entry)
    lossy_pi = execution.trace.pi_sequence

    reliable_schedule = batch_u1o_to_r1s(gadget, schedule)
    reliable_pi = Execution(gadget).run(reliable_schedule).pi_sequence
    print(
        "\nThm. 3.7: R1S replays the lossy run exactly: "
        f"{is_exact(lossy_pi, reliable_pi)}"
    )
    drops = sum(1 for entry in schedule if entry.drops)
    batched = sum(
        1 for entry in reliable_schedule if entry.reads and max(entry.reads.values()) > 1
    )
    print(f"  {drops} lossy reads became f=0 no-ops; {batched} reads batched up")

    # --- soak: heavy loss ------------------------------------------------
    print("\nheavy-loss soak (70% drops, 10 seeds):")
    converged = 0
    for seed in range(10):
        outcome = simulate(
            instance,
            model("UMS"),
            scheduler=RandomScheduler(
                instance, model("UMS"), seed=seed, drop_prob=0.7
            ),
            max_steps=5000,
        )
        converged += outcome.converged
    print(f"  {converged}/10 runs reached the stable solution")


if __name__ == "__main__":
    main()
