"""Gao–Rexford commercial policies: convergence without coordination.

Run with::

    python examples/bgp_commercial_policies.py [seed]

The paper's related work (reference [6], Gao & Rexford) shows that the
Internet's commercial structure guarantees BGP convergence: customer
routes beat peer routes beat provider routes, and peer/provider-learned
routes are exported to customers only.  In this package's vocabulary:
Gao–Rexford instances contain **no dispute wheel**, so they converge
under *every* communication model of the taxonomy — including fully
unreliable ones.

This example builds a random AS hierarchy, derives its SPP instance,
verifies wheel-freedom, solves it constructively, and then runs it to a
fixed point under several models with the genuine Gao–Rexford export
rule plugged into the engine (the only experiment where Def. 2.3
step 4's "if prescribed by export policy" clause changes behaviour).
"""

import sys

from repro.core.dispute import has_dispute_wheel
from repro.core.gao_rexford import (
    classify_route,
    gao_rexford_export_policy,
    gao_rexford_instance,
    random_as_graph,
)
from repro.core.paths import format_path
from repro.core.solutions import greedy_solve
from repro.engine.convergence import is_fixed_point
from repro.engine.execution import Execution
from repro.engine.schedulers import RandomScheduler
from repro.models.taxonomy import model


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    graph = random_as_graph(seed, n_nodes=6, tiers=3)
    instance = gao_rexford_instance(graph, name=f"GAO-REXFORD-{seed}")
    print(instance.describe())
    print(f"\ndispute wheel present: {has_dispute_wheel(instance)}")

    solution = greedy_solve(instance)
    print("\ngreedy (coordination-free) solution:")
    for node, path in sorted(solution.items()):
        if node == instance.dest:
            continue
        kind = (
            classify_route(graph, node, path).value if len(path) > 1 else "—"
        )
        print(f"  {node}: {format_path(path):<10} ({kind} route)")

    print("\nprotocol runs with the real Gao–Rexford export rule:")
    export = gao_rexford_export_policy(graph)
    for name in ("R1O", "REO", "RMS", "REA", "UMS"):
        execution = Execution(instance, export_policy=export)
        scheduler = RandomScheduler(
            instance, model(name), seed=seed, drop_prob=0.3
        )
        steps = 0
        for steps in range(1, 4001):
            execution.step(scheduler.next_entry(execution.state))
            if is_fixed_point(instance, execution.state):
                break
        fixed = is_fixed_point(instance, execution.state)
        print(f"  {name}: fixed point={fixed} after {steps} steps")

    print(
        "\nEvery model converges — wheel-freedom makes the communication\n"
        "model irrelevant to *whether* BGP converges (only to how fast)."
    )


if __name__ == "__main__":
    main()
