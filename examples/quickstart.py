"""Quickstart: build an SPP instance and watch model-dependent convergence.

Run with::

    python examples/quickstart.py

Builds the paper's DISAGREE gadget (Fig. 5), runs it under two
communication models — the event-driven message-passing model R1O and
the "poll some" model RMA — and shows that the *same* network with the
*same* policies converges under one model and can oscillate under the
other.  That is the paper's headline phenomenon.
"""

from repro import SPPBuilder, can_oscillate, model, simulate
from repro.core.paths import format_path
from repro.core.solutions import enumerate_stable_solutions


def main() -> None:
    # DISAGREE: x prefers routing through y, y prefers routing through x.
    instance = (
        SPPBuilder("d")
        .node("x", "xyd", "xd")   # most preferred first
        .node("y", "yxd", "yd")
        .build("DISAGREE")
    )
    print(instance.describe())
    print()

    solutions = list(enumerate_stable_solutions(instance))
    print(f"The instance has {len(solutions)} stable solutions:")
    for solution in solutions:
        rendered = ", ".join(
            f"{node}={format_path(path)}" for node, path in sorted(solution.items())
        )
        print(f"  {rendered}")
    print()

    # Fair random execution under the polling model RMA: always converges.
    result = simulate(instance, model("RMA"), seed=0)
    print(
        f"RMA (poll some): converged={result.converged} "
        f"after {result.steps} steps"
    )

    # Exhaustive model checking per model: can the instance oscillate?
    for name in ("R1O", "RMS", "REO", "RMA", "REA"):
        verdict = can_oscillate(instance, model(name), queue_bound=3)
        certificate = "complete search" if verdict.complete else "witness"
        print(
            f"{name}: oscillation possible = {verdict.oscillates} "
            f"({certificate}, {verdict.states_explored} states)"
        )

    print()
    print(
        "Same network, same policies — whether BGP-style routing can\n"
        "diverge here depends only on how updates are communicated."
    )


if __name__ == "__main__":
    main()
