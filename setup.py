"""Setuptools shim.

The sandboxed evaluation environment has no `wheel` package, so PEP-660
editable installs (which build a wheel) fail; this shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` code path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
