"""The hardened-client retry layer: deterministic backoff, defensive
Retry-After parsing, the circuit breaker, and deadline propagation."""

import time

import pytest

from repro.serve import ReproServer, ServeConfig, VerdictService
from repro.serve.client import ServeClient
from repro.serve.protocol import DEADLINE_HEADER
from repro.serve.retry import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerOpen,
    CircuitBreaker,
    RetryPolicy,
    TransientError,
    call_with_retry,
    parse_retry_after,
)


# ----------------------------------------------------------------------
# parse_retry_after — the satellite fix: malformed headers must parse
# to None, never crash the client.
# ----------------------------------------------------------------------

def test_parse_retry_after_seconds():
    assert parse_retry_after("3") == 3.0
    assert parse_retry_after("0.25") == 0.25
    assert parse_retry_after(" 2 ") == 2.0


def test_parse_retry_after_clamps_negative():
    assert parse_retry_after("-5") == 0.0


def test_parse_retry_after_http_date():
    from email.utils import format_datetime
    from datetime import datetime, timedelta, timezone

    future = datetime.now(timezone.utc) + timedelta(seconds=30)
    value = parse_retry_after(format_datetime(future, usegmt=True))
    assert value is not None
    assert 25.0 < value <= 31.0


def test_parse_retry_after_past_date_clamps_to_zero():
    assert parse_retry_after("Mon, 01 Jan 2001 00:00:00 GMT") == 0.0


@pytest.mark.parametrize(
    "value",
    [None, "", "soon", "3 seconds", "NaN-ish garbage", "Mon, 99 Foo"],
)
def test_parse_retry_after_malformed_is_none(value):
    assert parse_retry_after(value) is None


# ----------------------------------------------------------------------
# RetryPolicy — deterministic, seeded backoff.
# ----------------------------------------------------------------------

def test_policy_delays_deterministic_under_fixed_seed():
    a = RetryPolicy(seed=42)
    b = RetryPolicy(seed=42)
    delays_a = [a.delay(i, "/v1/query") for i in range(5)]
    delays_b = [b.delay(i, "/v1/query") for i in range(5)]
    assert delays_a == delays_b


def test_policy_delays_vary_by_seed_and_endpoint():
    policy = RetryPolicy(seed=1)
    other = RetryPolicy(seed=2)
    assert [policy.delay(i, "/a") for i in range(4)] != [
        other.delay(i, "/a") for i in range(4)
    ]
    assert [policy.delay(i, "/a") for i in range(4)] != [
        policy.delay(i, "/b") for i in range(4)
    ]


def test_policy_delays_grow_and_cap():
    policy = RetryPolicy(
        seed=7, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.4, jitter=0.0
    )
    assert [policy.delay(i, "x") for i in range(4)] == [0.1, 0.2, 0.4, 0.4]


def test_policy_jitter_stays_in_band():
    policy = RetryPolicy(seed=3, base_delay_s=1.0, jitter=0.5, multiplier=1.0)
    for attempt in range(20):
        delay = policy.delay(attempt, "endpoint")
        assert 0.5 <= delay < 1.0


def test_policy_env_seed(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY_SEED", "99")
    assert RetryPolicy().effective_seed() == 99
    assert RetryPolicy(seed=5).effective_seed() == 5


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)


# ----------------------------------------------------------------------
# call_with_retry — budget, Retry-After, deadline, cause unwrapping.
# ----------------------------------------------------------------------

def _no_sleep(_):
    pass


def test_retry_succeeds_after_transients():
    calls = []

    def send():
        calls.append(1)
        if len(calls) < 3:
            raise TransientError("flaky")
        return "ok"

    result = call_with_retry(
        send, policy=RetryPolicy(retries=4, seed=0), sleep=_no_sleep
    )
    assert result == "ok"
    assert len(calls) == 3


def test_retry_budget_exhaustion_raises_cause():
    cause = ConnectionResetError("peer reset")

    def send():
        raise TransientError("wire", cause=cause)

    with pytest.raises(ConnectionResetError):
        call_with_retry(
            send, policy=RetryPolicy(retries=2, seed=0), sleep=_no_sleep
        )


def test_retry_honors_retry_after_hint():
    slept = []
    calls = []

    def send():
        calls.append(1)
        if len(calls) == 1:
            raise TransientError("shed", retry_after=0.123)
        return "done"

    assert (
        call_with_retry(
            send, policy=RetryPolicy(retries=2, seed=0), sleep=slept.append
        )
        == "done"
    )
    assert slept == [0.123]


def test_retry_deadline_stops_early():
    clock = [0.0]

    def send():
        clock[0] += 10.0
        raise TransientError("slow", cause=TimeoutError("deadline"))

    with pytest.raises(TimeoutError):
        call_with_retry(
            send,
            policy=RetryPolicy(retries=50, seed=0),
            deadline=5.0,
            sleep=_no_sleep,
            clock=lambda: clock[0],
        )


# ----------------------------------------------------------------------
# CircuitBreaker.
# ----------------------------------------------------------------------

def test_breaker_opens_after_threshold_and_recovers():
    clock = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=3, cooldown_s=10.0, clock=lambda: clock[0]
    )
    assert breaker.state == CLOSED
    for _ in range(3):
        assert breaker.acquire() == 0.0
        breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.acquire() == pytest.approx(10.0)
    # After the cooldown one probe is allowed through (half-open).
    clock[0] = 11.0
    assert breaker.acquire() == 0.0
    assert breaker.state == HALF_OPEN
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.acquire() == 0.0


def test_breaker_reopens_on_half_open_failure():
    clock = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=1, cooldown_s=5.0, clock=lambda: clock[0]
    )
    breaker.acquire()
    breaker.record_failure()
    assert breaker.state == OPEN
    clock[0] = 6.0
    assert breaker.acquire() == 0.0  # the half-open probe
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.acquire() == pytest.approx(5.0)


def test_retry_with_open_breaker_raises_breaker_open():
    clock = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=1, cooldown_s=60.0, clock=lambda: clock[0]
    )
    breaker.acquire()
    breaker.record_failure()  # breaker now OPEN for 60s

    def send():
        raise AssertionError("must not be called through an open breaker")

    with pytest.raises(BreakerOpen):
        call_with_retry(
            send,
            policy=RetryPolicy(retries=1, seed=0),
            breaker=breaker,
            deadline=1.0,  # cannot cover the 60s cooldown
            sleep=_no_sleep,
            clock=lambda: clock[0],
        )


# ----------------------------------------------------------------------
# Deadline propagation end-to-end: the client stamps X-Repro-Deadline,
# the server clamps its per-request budget to it.
# ----------------------------------------------------------------------

def test_deadline_header_constant():
    assert DEADLINE_HEADER == "X-Repro-Deadline"


def test_server_clamps_deadline_to_header(tmp_path, disagree):
    service = VerdictService(
        ServeConfig(cache_dir=str(tmp_path / "cache"), deadline_s=30.0)
    )
    seen = {}
    original = service._resolve

    def spy(request, tel, deadline_s=None):
        seen["deadline_s"] = deadline_s
        return original(request, tel, deadline_s=deadline_s)

    service._resolve = spy
    with ReproServer(service) as server:
        with ServeClient(server.url, timeout=7.5) as client:
            client.query(disagree, ["R1O"], queue_bound=2)
    assert seen["deadline_s"] is not None
    assert 0.0 < seen["deadline_s"] <= 7.5


def test_client_retries_wire_failures(tmp_path, disagree):
    """The request layer rides out transient wire failures without
    surfacing them to the caller."""
    service = VerdictService(ServeConfig(cache_dir=str(tmp_path / "cache")))
    with ReproServer(service) as server:
        client = ServeClient(
            server.url,
            timeout=10.0,
            retry_policy=RetryPolicy(retries=3, seed=11, base_delay_s=0.01),
        )
        try:
            flaky = {"left": 2}
            original = client._send_once

            def send(method, path, body, headers, deadline):
                if flaky["left"] > 0:
                    flaky["left"] -= 1
                    raise TransientError(
                        "injected", cause=ConnectionResetError("reset")
                    )
                return original(method, path, body, headers, deadline)

            client._send_once = send
            response = client.query(disagree, ["R1O"], queue_bound=2)
            assert response.results(disagree)["R1O"].oscillates
            assert flaky["left"] == 0
        finally:
            client.close()
